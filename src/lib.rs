//! # dht-rcm — the Reachable Component Method for DHT routing analysis
//!
//! A reproduction of *"A General Framework for Scalability and Performance
//! Analysis of DHT Routing Systems"* (Kong, Bridgewater, Roychowdhury — DSN
//! 2006) as a Rust workspace. This facade crate re-exports the public API of
//! the member crates so applications can depend on a single crate:
//!
//! * [`analysis`] (`dht-rcm-core`) — the analytical framework: routability
//!   `r(N, q)`, phase success probabilities, scalability classification, and
//!   the closed forms for the tree (Plaxton), hypercube (CAN), XOR
//!   (Kademlia), ring (Chord) and small-world (Symphony) geometries.
//! * [`overlay`] (`dht-overlay`) — executable overlays of the same five
//!   geometries with static-resilience routing and structured failure
//!   plans (correlated, adaptive, cascading).
//! * [`sim`] (`dht-sim`) — the measurement harness (failure patterns, pair
//!   sampling, sweeps, snapshot churn, and the live-churn discrete-event
//!   simulator).
//! * [`markov`] (`dht-markov`) — the routing Markov chains the closed forms
//!   are derived from.
//! * [`percolation`] (`dht-percolation`) — connectivity and percolation
//!   thresholds, for the connectivity-vs-routability contrast.
//! * [`mathkit`] (`dht-mathkit`) and [`id`] (`dht-id`) — numerical and
//!   identifier-space substrates.
//! * [`experiments`] (`dht-experiments`) — the harnesses that regenerate
//!   every figure and table of the paper, behind the declarative
//!   [`experiments::spec::ScenarioSpec`] front door.
//! * [`scenario`] (`dht-scenario`) — the batch runner over directories of
//!   spec files and the memoizing report server.
//!
//! # Quickstart
//!
//! ```rust
//! use dht_rcm::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! // Analytical prediction: Kademlia-style XOR routing at 2^16 nodes with
//! // 30% of nodes failed.
//! let size = SystemSize::power_of_two(16)?;
//! let prediction = Geometry::xor().routability(size, 0.3)?;
//!
//! // Measurement on an executable overlay (smaller for test speed).
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let overlay = KademliaOverlay::build(10, &mut rng)?;
//! let config = StaticResilienceConfig::new(0.3)?.with_pairs(5_000).with_seed(7);
//! let measured = StaticResilienceExperiment::new(config).run(&overlay);
//!
//! // The analysis tracks the measurement to within a few percentage points.
//! assert!((prediction.routability - measured.routability).abs() < 0.1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use dht_experiments as experiments;
pub use dht_id as id;
pub use dht_markov as markov;
pub use dht_mathkit as mathkit;
pub use dht_overlay as overlay;
pub use dht_percolation as percolation;
pub use dht_rcm_core as analysis;
pub use dht_scenario as scenario;
pub use dht_sim as sim;

/// The most commonly used items across the workspace, re-exported for glob
/// import in applications, examples and tests.
pub mod prelude {
    pub use dht_experiments::spec::{
        run_spec, Backend, ExecutionSpec, ExperimentSpec, Family, ScenarioReport, ScenarioSpec,
    };
    pub use dht_id::{KeySpace, NodeId, Population};
    pub use dht_overlay::{
        route, CanOverlay, ChordOverlay, ChordVariant, FailureMask, FailurePlan, GeometryOverlay,
        ImplicitKernel, ImplicitOverlay, ImplicitRowCache, KademliaOverlay, LiveOverlay, Overlay,
        PlaxtonOverlay, RouteBatch, RouteOutcome, RoutingArena, RoutingKernel, SymphonyOverlay,
        DEFAULT_BATCH_WIDTH, MAX_IMPLICIT_OVERLAY_BITS, MAX_OVERLAY_BITS,
    };
    pub use dht_percolation::{connected_components, percolation_threshold, reachable_component};
    pub use dht_rcm_core::prelude::*;
    pub use dht_scenario::{run_directory, BatchOptions, ReportServer};
    pub use dht_sim::{
        sweep_failure_grid, CampaignTally, ChurnConfig, ChurnExperiment, LifetimeDistribution,
        LiveChurnConfig, LiveChurnExperiment, LiveChurnTally, StaticResilienceConfig,
        StaticResilienceExperiment, TrialEngine, TrialTally,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        let size = SystemSize::power_of_two(12).unwrap();
        let report = Geometry::hypercube().routability(size, 0.2).unwrap();
        assert!(report.routability > 0.9);
        let overlay = CanOverlay::build(6).unwrap();
        let mask = FailureMask::none(overlay.key_space());
        let space = overlay.key_space();
        assert!(route(&overlay, space.wrap(1), space.wrap(5), &mask).is_delivered());
    }
}
