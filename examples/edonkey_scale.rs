//! The paper's motivating deployment: eDonkey/Kad, a Kademlia-based network
//! with millions of transient users.
//!
//! This example asks the question a deployment engineer would ask: *how much
//! of the network remains mutually routable as the user population churns in
//! and out?* It answers it twice — analytically at true eDonkey scale
//! (millions to billions of nodes, where only the RCM closed forms can go)
//! and by measurement on the largest overlay that fits in memory — and shows
//! why Kademlia's XOR geometry was the right choice compared to a tree or a
//! minimal small-world network.
//!
//! Run with: `cargo run --release --example edonkey_scale`

use dht_rcm::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Transient P2P users: a sizeable fraction is unreachable at any moment.
    let failure_probability = 0.25;

    println!("== eDonkey-scale analysis (Kademlia / XOR geometry) ==\n");

    // 1. Analytical routability from 10^3 up to 10^9 nodes.
    println!("Analytical routability at q = {failure_probability} as the network grows:");
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "nodes", "xor", "tree", "symphony"
    );
    for bits in [10u32, 14, 18, 22, 26, 30] {
        let size = SystemSize::power_of_two(bits)?;
        let xor = Geometry::xor().routability(size, failure_probability)?;
        let tree = Geometry::tree().routability(size, failure_probability)?;
        let symphony = Geometry::symphony(1, 1)?.routability(size, failure_probability)?;
        println!(
            "{:>14} {:>12.4} {:>12.4} {:>12.4}",
            format!("2^{bits}"),
            xor.routability,
            tree.routability,
            symphony.routability
        );
    }
    println!(
        "\nThe XOR column barely moves while tree and Symphony collapse — the\n\
         scalable/unscalable split that lets eDonkey operate at global scale.\n"
    );

    // 2. Measure a large Kademlia overlay (2^18 = 262 144 nodes).
    let bits = 18;
    println!("Measuring an executable Kademlia overlay with 2^{bits} nodes...");
    let mut rng = ChaCha8Rng::seed_from_u64(2006);
    let overlay = KademliaOverlay::build(bits, &mut rng)?;
    let config = StaticResilienceConfig::new(failure_probability)?
        .with_pairs(50_000)
        .with_threads(8)
        .with_seed(11);
    let measured = StaticResilienceExperiment::new(config).run(&overlay);
    let predicted =
        Geometry::xor().routability(SystemSize::power_of_two(bits)?, failure_probability)?;
    println!(
        "  predicted routability {:.4}, measured {:.4} (±{:.4}), mean path length {:.2} hops",
        predicted.routability,
        measured.routability,
        measured.confidence.half_width(),
        measured.mean_hops
    );

    // 3. What would it take for Symphony to serve the same population?
    println!("\nSymphony connections needed for 95% routability at q = {failure_probability}:");
    for bits in [16u32, 20, 24] {
        let size = SystemSize::power_of_two(bits)?;
        let mut found = None;
        'search: for total in 2..=24u32 {
            for shortcuts in 1..total {
                let near = total - shortcuts;
                let geometry = Geometry::symphony(near, shortcuts)?;
                if geometry.routability(size, failure_probability)?.routability >= 0.95 {
                    found = Some((near, shortcuts));
                    break 'search;
                }
            }
        }
        match found {
            Some((near, shortcuts)) => println!(
                "  2^{bits} nodes: k_n = {near}, k_s = {shortcuts} (degree {})",
                near + shortcuts
            ),
            None => println!("  2^{bits} nodes: not reachable with 24 connections"),
        }
    }
    println!(
        "\nThe required degree keeps growing with the population — Symphony can be\n\
         provisioned for a target size but not for unbounded growth, which is\n\
         exactly Definition 2's notion of unscalability."
    );
    Ok(())
}
