//! The paper's motivating deployment: eDonkey/Kad, a Kademlia-based network
//! with millions of transient users.
//!
//! This example asks the question a deployment engineer would ask: *how much
//! of the network remains mutually routable as the user population churns in
//! and out?* It answers it twice — analytically from 10^3 up to 10^9 nodes
//! via the RCM closed forms, and **by measurement at true eDonkey scale**:
//! the implicit routing backend regenerates each table row from the seed on
//! demand, so full XOR overlays with `2^26`–`2^30` nodes route end to end
//! from a resident set of little more than the failure-mask bitset, where
//! materialized tables would need hundreds of gigabytes.
//!
//! Run with: `cargo run --release --example edonkey_scale`

use dht_rcm::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Transient P2P users: a sizeable fraction is unreachable at any moment.
    let failure_probability = 0.25;

    println!("== eDonkey-scale analysis (Kademlia / XOR geometry) ==\n");

    // 1. Analytical routability from 10^3 up to 10^9 nodes.
    println!("Analytical routability at q = {failure_probability} as the network grows:");
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "nodes", "xor", "tree", "symphony"
    );
    for bits in [10u32, 14, 18, 22, 26, 30] {
        let size = SystemSize::power_of_two(bits)?;
        let xor = Geometry::xor().routability(size, failure_probability)?;
        let tree = Geometry::tree().routability(size, failure_probability)?;
        let symphony = Geometry::symphony(1, 1)?.routability(size, failure_probability)?;
        println!(
            "{:>14} {:>12.4} {:>12.4} {:>12.4}",
            format!("2^{bits}"),
            xor.routability,
            tree.routability,
            symphony.routability
        );
    }
    println!(
        "\nThe XOR column barely moves while tree and Symphony collapse — the\n\
         scalable/unscalable split that lets eDonkey operate at global scale.\n"
    );

    // 2. Measure executable Kademlia overlays at eDonkey scale — 2^26 up to
    //    2^30 nodes — through the implicit backend. The materialized ceiling
    //    is 2^24; these tables are never stored, only replayed.
    println!(
        "Measuring full XOR overlays through the implicit backend (2^26-2^{MAX_IMPLICIT_OVERLAY_BITS}):"
    );
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>12} {:>14} {:>16}",
        "bits", "predicted", "measured", "hops", "resident", "mask", "if materialized"
    );
    let pairs = 20_000u64;
    for bits in [26u32, 28, 30] {
        let overlay = ImplicitOverlay::xor(bits, 2006)?;
        let mask = FailureMask::sample(
            overlay.key_space(),
            failure_probability,
            &mut ChaCha8Rng::seed_from_u64(u64::from(bits)),
        );
        let tally = TrialEngine::new(8)
            .run_trial(&overlay, &mask, pairs, 11)
            .expect("2^bits nodes at q = 0.25 leave ample survivors");
        let predicted =
            Geometry::xor().routability(SystemSize::power_of_two(bits)?, failure_probability)?;
        let resident =
            overlay.resident_bytes() + overlay.routing_kernel().row_cache().resident_bytes();
        let mask_bytes = std::mem::size_of_val(mask.words());
        let edge_bytes = overlay.edge_count() * std::mem::size_of::<u64>() as u64;
        println!(
            "{:>6} {:>12.4} {:>10.4} {:>10.2} {:>10} KiB {:>10} MiB {:>12} GiB",
            format!("2^{bits}"),
            predicted.routability,
            tally.routability(),
            tally.hop_stats.mean(),
            resident / 1024,
            mask_bytes >> 20,
            edge_bytes >> 30,
        );
    }
    println!(
        "\nThe \"resident\" column is all the routing state the implicit backend\n\
         keeps (generator + row cache); the failure mask dominates the footprint\n\
         at 128 MiB for 2^30 nodes, while materialized tables would need the\n\
         \"if materialized\" column. Measurement now reaches the population the\n\
         paper could only treat analytically.\n"
    );

    // 3. What would it take for Symphony to serve the same population?
    println!("Symphony connections needed for 95% routability at q = {failure_probability}:");
    for bits in [16u32, 20, 24] {
        let size = SystemSize::power_of_two(bits)?;
        let mut found = None;
        'search: for total in 2..=24u32 {
            for shortcuts in 1..total {
                let near = total - shortcuts;
                let geometry = Geometry::symphony(near, shortcuts)?;
                if geometry.routability(size, failure_probability)?.routability >= 0.95 {
                    found = Some((near, shortcuts));
                    break 'search;
                }
            }
        }
        match found {
            Some((near, shortcuts)) => println!(
                "  2^{bits} nodes: k_n = {near}, k_s = {shortcuts} (degree {})",
                near + shortcuts
            ),
            None => println!("  2^{bits} nodes: not reachable with 24 connections"),
        }
    }
    println!(
        "\nThe required degree keeps growing with the population — Symphony can be\n\
         provisioned for a target size but not for unbounded growth, which is\n\
         exactly Definition 2's notion of unscalability."
    );
    Ok(())
}
