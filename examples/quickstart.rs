//! Quickstart: predict routability analytically, then measure it on an
//! executable overlay and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use dht_rcm::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 14; // 16 384 nodes — large enough to be interesting, fast to build
    let failure_probability = 0.3;

    println!("== Reachable Component Method quickstart ==");
    println!("system size: 2^{bits} nodes, node failure probability: {failure_probability}\n");

    // 1. Analytical prediction for every geometry the paper studies.
    let size = SystemSize::power_of_two(bits)?;
    println!(
        "{:<12} {:>22} {:>14}",
        "geometry", "analytical routability", "failed paths %"
    );
    for geometry in Geometry::all_with_default_parameters() {
        let report = geometry.routability(size, failure_probability)?;
        println!(
            "{:<12} {:>22.4} {:>14.2}",
            geometry.to_string(),
            report.routability,
            report.failed_path_percent
        );
    }

    // 2. Measure the XOR (Kademlia) overlay under the same conditions.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let overlay = KademliaOverlay::build(bits, &mut rng)?;
    let config = StaticResilienceConfig::new(failure_probability)?
        .with_pairs(20_000)
        .with_trials(2)
        .with_threads(4)
        .with_seed(7);
    let measured = StaticResilienceExperiment::new(config).run(&overlay);
    let predicted = Geometry::xor().routability(size, failure_probability)?;

    println!("\nXOR (Kademlia) routing, analysis vs measurement:");
    println!("  predicted routability: {:.4}", predicted.routability);
    println!(
        "  measured  routability: {:.4}  (95% CI ±{:.4}, {} pairs, mean {:.1} hops)",
        measured.routability,
        measured.confidence.half_width(),
        measured.pairs_attempted,
        measured.mean_hops
    );

    // 3. The scalability verdict of Section 5.
    println!("\nScalability classification at q = {failure_probability}:");
    for geometry in Geometry::all_with_default_parameters() {
        let verdict = geometry.scalability(failure_probability)?;
        println!(
            "  {:<12} analytic: {:<12} numeric probe: {:?}",
            geometry.name(),
            verdict.analytic.to_string(),
            verdict.numeric
        );
    }
    Ok(())
}
