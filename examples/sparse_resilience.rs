//! Static resilience over a sparsely occupied identifier space: build the
//! ring, XOR and hypercube overlays at several occupancies of the same
//! `d`-bit space and watch which geometries survive sparseness.
//!
//! The ring and XOR tables *resolve* against the occupied set (successors,
//! bucket members), so their intact routability stays at 100% no matter how
//! sparse the space; the hypercube has no resolution rule and collapses.
//!
//! Run with: `cargo run --release --example sparse_resilience [bits]`
//! (the paper-scale `2^20` space with `2^18` occupied nodes: pass `20`).

use dht_rcm::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits: u32 = std::env::args()
        .nth(1)
        .map(|arg| arg.parse())
        .transpose()?
        .unwrap_or(14);
    let space = KeySpace::new(bits)?;
    let q = 0.3;
    println!(
        "Routability at q = {q} in a 2^{bits} identifier space, by occupancy\n\
         (pairs are sampled among surviving occupied nodes)\n"
    );
    println!(
        "{:<12} {:>12} {:>10} {:>14} {:>14}",
        "geometry", "occupied", "occupancy", "intact %", "q=0.3 %"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(2006);
    for occupied_shift in [0u32, 2, 4] {
        if occupied_shift >= bits {
            // A 2^{bits - shift} population needs at least one bit left;
            // small spaces simply show fewer occupancy rows.
            continue;
        }
        let occupied = 1u64 << (bits - occupied_shift);
        let population = if occupied_shift == 0 {
            Population::full(space)
        } else {
            Population::sample_uniform(space, occupied, &mut rng)?
        };
        let overlays: Vec<Box<dyn Overlay + Sync>> = vec![
            Box::new(ChordOverlay::build_over(
                population.clone(),
                ChordVariant::Deterministic,
                &mut rng,
            )?),
            Box::new(KademliaOverlay::build_over(population.clone(), &mut rng)?),
            Box::new(CanOverlay::build_over(population.clone())?),
        ];
        for overlay in &overlays {
            let config = StaticResilienceConfig::new(0.0)?
                .with_pairs(5_000)
                .with_threads(2)
                .with_seed(42);
            let points = sweep_failure_grid(overlay.as_ref(), &config, &[0.0, q])?;
            println!(
                "{:<12} {:>12} {:>9.1}% {:>13.2}% {:>13.2}%",
                overlay.geometry_name(),
                overlay.node_count(),
                100.0 * overlay.population().occupancy(),
                100.0 * points[0].result.routability,
                100.0 * points[1].result.routability,
            );
        }
        println!();
    }

    println!(
        "Reading the table: ring and XOR overlays resolve their tables against\n\
         the occupied set, so occupancy costs them nothing when intact and\n\
         little under failure. The hypercube's degree shrinks with occupancy —\n\
         sparseness alone strands its messages, failures only add to it."
    );
    Ok(())
}
