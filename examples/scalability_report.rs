//! Produce a scalability report for a *custom* routing geometry.
//!
//! The RCM framework is not limited to the five geometries of the paper: any
//! type implementing `RoutingGeometry` gets routability, asymptotics and the
//! Knopp-series scalability test for free. This example defines a toy
//! "redundant tree" geometry — a Plaxton tree in which every routing-table
//! level keeps `k` independent candidates — and asks how large `k` must be
//! before the geometry behaves like a scalable one in practice.
//!
//! Run with: `cargo run --release --example scalability_report`

use dht_rcm::analysis::ln_success_probability;
use dht_rcm::prelude::*;

/// A Plaxton-style tree whose routing tables hold `k` candidates per level:
/// a hop fails only if all `k` candidates for the required prefix are down,
/// so `Q(m) = q^k` — constant in `m`, like the tree, but tunably small.
#[derive(Debug, Clone, Copy)]
struct RedundantTree {
    candidates_per_level: u32,
}

impl RoutingGeometry for RedundantTree {
    fn name(&self) -> &'static str {
        "redundant-tree"
    }
    fn system(&self) -> &'static str {
        "Pastry-like"
    }
    fn ln_nodes_at_distance(&self, d: u32, h: u32) -> f64 {
        dht_rcm::mathkit::ln_binomial(u64::from(d), u64::from(h))
    }
    fn phase_failure_probability(&self, _m: u32, q: f64, _d: u32) -> f64 {
        q.powi(self.candidates_per_level as i32)
    }
    fn analytic_scalability(&self) -> ScalabilityClass {
        // Q(m) is a positive constant, so Σ Q(m) diverges: still unscalable,
        // however large k is — redundancy buys routability, not scalability.
        ScalabilityClass::Unscalable
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let q = 0.2;
    println!("== Scalability report for a custom geometry (k-redundant tree) ==");
    println!("node failure probability q = {q}\n");

    println!(
        "{:>3} {:>16} {:>16} {:>16} {:>12}",
        "k", "r at 2^16", "r at 2^24", "r at 2^32", "verdict"
    );
    for k in 1..=5u32 {
        let geometry = RedundantTree {
            candidates_per_level: k,
        };
        let r16 = routability(&geometry, SystemSize::power_of_two(16)?, q)?.routability;
        let r24 = routability(&geometry, SystemSize::power_of_two(24)?, q)?.routability;
        let r32 = routability(&geometry, SystemSize::power_of_two(32)?, q)?.routability;
        let verdict = classify(&geometry, q)?;
        println!(
            "{:>3} {:>16.4} {:>16.4} {:>16.4} {:>12}",
            k,
            r16,
            r24,
            r32,
            format!("{:?}", verdict.numeric)
        );
    }

    println!(
        "\nEvery row eventually decays (the series Σ q^k diverges for any fixed k),\n\
         but the decay rate falls exponentially with k: redundancy is a budget for\n\
         a target maximum size, not a substitute for a scalable geometry."
    );

    // How deep can a k = 3 redundant tree go before p(h, q) drops below 50%?
    let geometry = RedundantTree {
        candidates_per_level: 3,
    };
    let mut depth = 1u32;
    while ln_success_probability(&geometry, 4096, depth, q)?.exp() > 0.5 && depth < 4096 {
        depth += 1;
    }
    println!(
        "\nWith k = 3 and q = {q}, routes stay above 50% success out to h = {depth} phases\n\
         (≈ 2^{depth} nodes) — plenty for any deployed system, which is the paper's point\n\
         about practical provisioning versus asymptotic scalability."
    );
    Ok(())
}
