//! Beyond the static model: watch routability evolve under churn.
//!
//! The paper's analysis freezes one failure pattern (static resilience) and
//! leaves dynamic churn to future work. This example uses the workspace's
//! churn extension to show how the static prediction brackets the dynamic
//! behaviour: as nodes leave and join with frozen routing tables, the
//! measured routability tracks the static prediction evaluated at the
//! *current* failed fraction.
//!
//! Run with: `cargo run --release --example churn_timeline`

use dht_rcm::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 12;
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let overlay = KademliaOverlay::build(bits, &mut rng)?;
    let size = SystemSize::power_of_two(bits)?;

    // 2% of alive nodes fail per round, 10% of failed nodes recover:
    // the stationary failed fraction is 2 / (2 + 10) ≈ 17%.
    let config = ChurnConfig::new(0.02, 0.10, 40)?
        .with_pairs_per_round(4_000)
        .with_seed(17);
    let stationary = config.stationary_failure_fraction();
    println!(
        "Kademlia overlay, 2^{bits} nodes, churn with stationary failed fraction {:.1}%\n",
        100.0 * stationary
    );
    println!(
        "{:>6} {:>14} {:>18} {:>22}",
        "round", "failed %", "measured r", "static prediction r"
    );

    let rounds = ChurnExperiment::new(config).run(&overlay);
    for round in rounds.iter().step_by(4) {
        let prediction = if round.failed_fraction > 0.0 {
            Geometry::xor()
                .routability(size, round.failed_fraction)
                .map(|r| r.routability)
                .unwrap_or(f64::NAN)
        } else {
            1.0
        };
        println!(
            "{:>6} {:>14.2} {:>18.4} {:>22.4}",
            round.round,
            100.0 * round.failed_fraction,
            round.routability,
            prediction
        );
    }

    let last = rounds.last().expect("at least one round");
    let static_prediction = Geometry::xor().routability(size, stationary)?;
    println!(
        "\nAfter {} rounds the failed fraction settles near {:.1}% and measured\n\
         routability {:.4} sits next to the static-model prediction {:.4} —\n\
         evidence that the static analysis remains a useful short-time-scale\n\
         proxy under churn, as the paper conjectures in its introduction.",
        rounds.len(),
        100.0 * last.failed_fraction,
        last.routability,
        static_prediction.routability
    );
    Ok(())
}
