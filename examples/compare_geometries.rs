//! Compare all five DHT routing geometries head-to-head, analytically and in
//! simulation, across a failure-probability sweep — a miniature Fig. 6 that
//! also covers Symphony and prints the result as an ASCII table.
//!
//! Run with: `cargo run --release --example compare_geometries [bits]`

use dht_rcm::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits: u32 = std::env::args()
        .nth(1)
        .map(|arg| arg.parse())
        .transpose()?
        .unwrap_or(12);
    let grid = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let size = SystemSize::power_of_two(bits)?;
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    // Build one executable overlay per geometry.
    let overlays: Vec<(Geometry, Box<dyn Overlay + Sync>)> = vec![
        (
            Geometry::tree(),
            Box::new(PlaxtonOverlay::build(bits, &mut rng)?),
        ),
        (Geometry::hypercube(), Box::new(CanOverlay::build(bits)?)),
        (
            Geometry::xor(),
            Box::new(KademliaOverlay::build(bits, &mut rng)?),
        ),
        (
            Geometry::ring(),
            Box::new(ChordOverlay::build(bits, ChordVariant::Deterministic)?),
        ),
        (
            Geometry::symphony(1, 1)?,
            Box::new(SymphonyOverlay::build(bits, 1, 1, &mut rng)?),
        ),
    ];

    println!("Failed paths (%) at N = 2^{bits}: analytical / simulated");
    print!("{:<12}", "geometry");
    for q in grid {
        print!("{:>16}", format!("q = {q:.1}"));
    }
    println!();

    for (geometry, overlay) in &overlays {
        print!("{:<12}", geometry.name());
        for &q in &grid {
            let analytical = geometry
                .routability(size, q)
                .map(|r| r.failed_path_percent)
                .unwrap_or(f64::NAN);
            let config = StaticResilienceConfig::new(q)?
                .with_pairs(5_000)
                .with_threads(2)
                .with_seed(2006 + (q * 100.0) as u64);
            let simulated = StaticResilienceExperiment::new(config).run(overlay.as_ref());
            print!(
                "{:>16}",
                format!("{analytical:>5.1} / {:>5.1}", simulated.failed_path_percent)
            );
        }
        println!();
    }

    println!(
        "\nReading the table: the tree and Symphony columns blow up quickly — the\n\
         unscalable class of Section 5 — while hypercube, XOR and ring degrade\n\
         gracefully, exactly the ordering of Fig. 6/7 of the paper."
    );
    Ok(())
}
