//! Integration tests over the experiment harnesses: the qualitative *shapes*
//! the paper reports must come out of the full pipeline, end to end.

use dht_rcm::experiments::{fig3, fig7, markov_validation, scalability_table, symphony_ablation};
use dht_rcm::prelude::*;

#[test]
fn figure_7a_reproduces_the_scalable_unscalable_split() {
    let config = fig7::Fig7Config::smoke();
    let records = fig7::fig7a(&config).unwrap();
    // Pick the q = 40% column and check the two classes are separated by a
    // wide margin at N = 2^100.
    let failed = |name: &str| {
        records
            .iter()
            .find(|r| r.geometry == name && (r.failure_probability - 0.4).abs() < 1e-9)
            .and_then(|r| r.analytical_failed_percent)
            .unwrap()
    };
    for unscalable in ["tree", "symphony"] {
        assert!(
            failed(unscalable) > 99.9,
            "{unscalable}: {}",
            failed(unscalable)
        );
    }
    for scalable in ["hypercube", "xor", "ring"] {
        assert!(failed(scalable) < 60.0, "{scalable}: {}", failed(scalable));
    }
}

#[test]
fn figure_7b_crossover_shapes_match_the_paper() {
    let config = fig7::Fig7Config::smoke();
    let points = fig7::fig7b(&config).unwrap();
    // Tree starts usable at small N and ends near zero at large N, while XOR
    // stays flat — the crossing of the two curves is the figure's message.
    let tree_small = points
        .iter()
        .find(|p| p.geometry == "tree" && p.bits == 10)
        .unwrap()
        .routability_percent;
    let tree_large = points
        .iter()
        .find(|p| p.geometry == "tree" && p.bits == 34)
        .unwrap()
        .routability_percent;
    let xor_large = points
        .iter()
        .find(|p| p.geometry == "xor" && p.bits == 34)
        .unwrap()
        .routability_percent;
    assert!(tree_small > 50.0);
    assert!(tree_large < 25.0);
    assert!(xor_large > 95.0);
    assert!(xor_large > tree_large + 50.0);
}

#[test]
fn scalability_table_is_internally_consistent() {
    let rows = scalability_table::run(&[0.05, 0.2]).unwrap();
    assert_eq!(rows.len(), 5);
    for row in &rows {
        assert!(row.consistent, "{} verdicts disagree", row.geometry);
        match row.analytic {
            ScalabilityClass::Scalable => assert!(row.limiting_success_probability > 0.0),
            ScalabilityClass::Unscalable => {
                assert_eq!(row.limiting_success_probability, 0.0);
            }
        }
    }
}

#[test]
fn closed_forms_survive_an_independent_markov_check() {
    let rows = markov_validation::run(10, &[0.1, 0.5, 0.9]).unwrap();
    for row in &rows {
        assert!(
            row.max_absolute_error < 1e-8,
            "{} disagrees with its chain by {}",
            row.geometry,
            row.max_absolute_error
        );
    }
}

#[test]
fn fig3_worked_example_is_self_consistent() {
    let result = fig3::run(0.25, 30_000, 11).unwrap();
    // The cumulative probability of the last row is p(3, q) by construction.
    assert!((result.rows[2].cumulative_success - result.analytical_p3).abs() < 1e-12);
    assert!((result.simulated_p3 - result.analytical_p3).abs() < 0.02);
}

#[test]
fn symphony_ablation_offers_a_route_to_any_target_routability() {
    let cells = symphony_ablation::run(&[16], 0.3, 8).unwrap();
    let minimum = symphony_ablation::minimum_configuration(&cells, 16, 99.0);
    assert!(
        minimum.is_some(),
        "eight connections should be plenty for 99% routability at 2^16"
    );
    let (near, shortcuts) = minimum.unwrap();
    assert!(near + shortcuts <= 16);
    assert!(near >= 1 && shortcuts >= 1);
}
