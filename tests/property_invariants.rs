//! Property-based tests of the workspace's core invariants, spanning the
//! analytical crates and the executable overlays.

use dht_rcm::analysis::{ln_success_probability, success_probability};
use dht_rcm::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn any_geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        Just(Geometry::tree()),
        Just(Geometry::hypercube()),
        Just(Geometry::xor()),
        Just(Geometry::ring()),
        (1u32..4, 1u32..4).prop_map(|(kn, ks)| Geometry::symphony(kn, ks).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routability is always a probability.
    #[test]
    fn routability_is_a_probability(
        geometry in any_geometry(),
        bits in 4u32..40,
        q in 0.0f64..0.85,
    ) {
        let size = SystemSize::power_of_two(bits).unwrap();
        match geometry.routability(size, q) {
            Ok(report) => {
                prop_assert!((0.0..=1.0).contains(&report.routability));
                prop_assert!((0.0..=100.0).contains(&report.failed_path_percent));
            }
            Err(RcmError::DegenerateSystem { .. }) => {}
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }

    /// Routability never increases when the failure probability increases.
    #[test]
    fn routability_is_monotone_in_failure_probability(
        geometry in any_geometry(),
        bits in 8u32..32,
        q in 0.0f64..0.7,
        delta in 0.01f64..0.2,
    ) {
        let size = SystemSize::power_of_two(bits).unwrap();
        let lower = geometry.routability(size, q);
        let higher = geometry.routability(size, (q + delta).min(0.89));
        if let (Ok(lower), Ok(higher)) = (lower, higher) {
            prop_assert!(higher.routability <= lower.routability + 1e-9);
        }
    }

    /// p(h, q) is non-increasing in the distance h.
    #[test]
    fn phase_success_is_monotone_in_distance(
        geometry in any_geometry(),
        q in 0.0f64..0.95,
        d in 4u32..48,
    ) {
        let mut previous = 1.0f64;
        for h in 1..=d {
            let p = success_probability(&geometry, d, h, q).unwrap();
            prop_assert!(p <= previous + 1e-12, "h={h}: {p} > {previous}");
            previous = p;
        }
    }

    /// The log-space and linear-space evaluations agree.
    #[test]
    fn log_and_linear_phase_success_agree(
        geometry in any_geometry(),
        q in 0.0f64..0.9,
        h in 1u32..24,
    ) {
        let ln_p = ln_success_probability(&geometry, 24, h, q).unwrap();
        let p = success_probability(&geometry, 24, h, q).unwrap();
        prop_assert!((ln_p.exp() - p).abs() < 1e-12);
    }

    /// Without failures every overlay delivers every message.
    #[test]
    fn overlays_always_deliver_without_failures(
        seed in 0u64..1000,
        bits in 4u32..9,
        source in 0u64..512,
        target in 0u64..512,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let overlays: Vec<Box<dyn Overlay>> = vec![
            Box::new(CanOverlay::build(bits).unwrap()),
            Box::new(PlaxtonOverlay::build(bits, &mut rng).unwrap()),
            Box::new(KademliaOverlay::build(bits, &mut rng).unwrap()),
            Box::new(ChordOverlay::build(bits, ChordVariant::Deterministic).unwrap()),
            Box::new(SymphonyOverlay::build(bits, 1, 1, &mut rng).unwrap()),
        ];
        for overlay in &overlays {
            let space = overlay.key_space();
            let mask = FailureMask::none(space);
            let outcome = route(
                overlay.as_ref(),
                space.wrap(source),
                space.wrap(target),
                &mask,
            );
            prop_assert!(
                outcome.is_delivered(),
                "{} failed to deliver {source} -> {target} without failures: {outcome:?}",
                overlay.geometry_name()
            );
        }
    }

    /// The reachable component is a subset of the connected component, for
    /// every geometry and failure pattern.
    #[test]
    fn reachable_is_subset_of_connected(
        seed in 0u64..200,
        q in 0.0f64..0.6,
        root in 0u64..256,
    ) {
        let bits = 8u32;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let overlay = KademliaOverlay::build(bits, &mut rng).unwrap();
        let mask = FailureMask::sample(overlay.key_space(), q, &mut rng);
        let root = overlay.key_space().wrap(root);
        prop_assume!(mask.is_alive(root));
        let components = connected_components(&overlay, &mask);
        let reachable = reachable_component(&overlay, root, &mask);
        let component_size = components.component_size(root).unwrap();
        prop_assert!((reachable.len() as u64) < component_size.max(1) + 1);
        for destination in reachable {
            prop_assert!(components.same_component(root, destination));
        }
    }

    /// Failure masks never report more failures than nodes and keep counts
    /// consistent.
    #[test]
    fn failure_mask_counts_are_consistent(
        seed in 0u64..500,
        bits in 2u32..12,
        q in 0.0f64..1.0,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mask = FailureMask::sample(space, q, &mut rng);
        prop_assert_eq!(mask.alive_count() + mask.failed_count(), space.population());
        prop_assert_eq!(mask.alive_nodes().count() as u64, mask.alive_count());
    }
}
