//! Smoke test of the `dht_rcm::prelude` facade: every re-exported family —
//! analytical core, executable overlays, simulation harness, and percolation
//! — must be importable from the single glob and compose end to end, the way
//! the crate-level quickstart documents.

use dht_rcm::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The lib.rs quickstart, as a real test: an analytical prediction and an
/// overlay measurement reached purely through the prelude must agree.
#[test]
fn prelude_analysis_and_measurement_compose() {
    let size = SystemSize::power_of_two(16).unwrap();
    let prediction = Geometry::xor().routability(size, 0.3).unwrap();

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let overlay = KademliaOverlay::build(10, &mut rng).unwrap();
    let config = StaticResilienceConfig::new(0.3)
        .unwrap()
        .with_pairs(5_000)
        .with_seed(7);
    let measured = StaticResilienceExperiment::new(config).run(&overlay);

    assert!(
        (prediction.routability - measured.routability).abs() < 0.1,
        "prediction {} vs measurement {}",
        prediction.routability,
        measured.routability
    );
}

/// Every geometry in the catalogue pairs with an overlay built through the
/// prelude, and routing without failures always delivers.
#[test]
fn prelude_overlays_cover_all_five_geometries() {
    let bits = 6;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let overlays: Vec<Box<dyn Overlay>> = vec![
        Box::new(PlaxtonOverlay::build(bits, &mut rng).unwrap()),
        Box::new(CanOverlay::build(bits).unwrap()),
        Box::new(KademliaOverlay::build(bits, &mut rng).unwrap()),
        Box::new(ChordOverlay::build(bits, ChordVariant::Deterministic).unwrap()),
        Box::new(SymphonyOverlay::build(bits, 1, 1, &mut rng).unwrap()),
    ];
    assert_eq!(
        overlays.len(),
        Geometry::all_with_default_parameters().len()
    );
    for overlay in &overlays {
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let outcome = route(overlay.as_ref(), space.wrap(3), space.wrap(42), &mask);
        assert!(outcome.is_delivered(), "{}", overlay.geometry_name());
    }
}

/// The percolation re-exports interoperate with overlays and failure masks
/// from the other crates: the reachable component lies inside the connected
/// component, and the threshold estimator returns a probability.
#[test]
fn prelude_percolation_interoperates() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let overlay = KademliaOverlay::build(8, &mut rng).unwrap();
    let mask = FailureMask::sample(overlay.key_space(), 0.3, &mut rng);
    let root = mask.alive_nodes().next().expect("some node survives");

    let components = connected_components(&overlay, &mask);
    let reachable = reachable_component(&overlay, root, &mask);
    for node in &reachable {
        assert!(components.same_component(root, *node));
    }

    let threshold = percolation_threshold(&overlay, 0.5, 8, 3, 99);
    assert!(
        (0.0..=1.0).contains(&threshold.critical_failure_probability),
        "critical q {} must be a probability",
        threshold.critical_failure_probability
    );
}

/// The sweep helper runs a grid through the same prelude types.
#[test]
fn prelude_sweep_produces_a_grid_of_records() {
    let overlay = CanOverlay::build(6).unwrap();
    let grid = [0.0, 0.2, 0.4];
    let base_config = StaticResilienceConfig::new(0.0)
        .unwrap()
        .with_pairs(500)
        .with_seed(13);
    let points = sweep_failure_grid(&overlay, &base_config, &grid).unwrap();
    assert_eq!(points.len(), grid.len());
    let mut previous = 1.1f64;
    for point in &points {
        let routability = point.result.routability;
        assert!((0.0..=1.0).contains(&routability));
        assert!(routability <= previous + 0.05, "roughly monotone");
        previous = routability;
    }
}
