//! Property tests of the scenario-spec front door: serde round-trips and
//! content-hash stability.

use dht_rcm::experiments::spec::{
    Backend, ExecutionSpec, ExperimentSpec, ScenarioSpec, SPEC_SCHEMA,
};
use proptest::prelude::*;

/// A failure-probability grid of 1..=4 points (the vendored proptest has no
/// Vec strategy, so grids are carved from a fixed-width tuple).
fn any_grid() -> impl Strategy<Value = Vec<f64>> {
    (
        0.0f64..0.9,
        0.0f64..0.9,
        0.0f64..0.9,
        0.0f64..0.9,
        1usize..=4,
    )
        .prop_map(|(a, b, c, d, len)| [a, b, c, d][..len].to_vec())
}

fn any_experiment() -> impl Strategy<Value = ExperimentSpec> {
    prop_oneof![
        (0.0f64..0.9, 1u64..100_000).prop_map(|(failure_probability, trials)| {
            ExperimentSpec::Fig3 {
                failure_probability,
                trials,
            }
        }),
        (4u32..20, 4u32..12, 1u64..10_000, any_grid()).prop_map(
            |(analytical_bits, simulation_bits, pairs, grid)| ExperimentSpec::Fig6a {
                analytical_bits,
                simulation_bits,
                pairs,
                grid,
            }
        ),
        (any_grid(),).prop_map(
            |(failure_probabilities,)| ExperimentSpec::ScalabilityTable {
                failure_probabilities,
            }
        ),
        (4u32..16, 1u64..4_000, any_grid(), 0u32..2, 1u64..65_536).prop_map(
            |(bits, pairs, grid, baseline, occupied)| {
                ExperimentSpec::SparsePopulation {
                    bits,
                    occupied,
                    include_full_baseline: baseline == 1,
                    pairs,
                    grid,
                }
            }
        ),
        (0usize..5, 4u32..16, any_grid(), 1u64..5_000, 1u32..4).prop_map(
            |(geometry, bits, grid, pairs, trials)| {
                const GEOMETRIES: [&str; 5] = ["ring", "xor", "tree", "hypercube", "symphony"];
                ExperimentSpec::StaticResilience {
                    geometry: GEOMETRIES[geometry].to_owned(),
                    bits,
                    grid,
                    pairs,
                    trials,
                }
            }
        ),
    ]
}

fn any_spec() -> impl Strategy<Value = ScenarioSpec> {
    (0u32..1_000, 0u64..u64::MAX, any_experiment(), 0usize..33).prop_map(
        |(label, seed, experiment, threads)| {
            let mut spec = ScenarioSpec::new(format!("spec-{label}"), seed, experiment);
            // Odd thread budgets ride the implicit backend, so the serde and
            // hash properties cover both variants of the execution block.
            spec.execution = (threads > 0).then_some(ExecutionSpec {
                threads,
                backend: if threads % 2 == 0 {
                    Backend::Materialized
                } else {
                    Backend::Implicit
                },
            });
            spec
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any spec survives a JSON round-trip exactly, in both modes.
    #[test]
    fn spec_round_trips_through_json(spec in any_spec()) {
        let pretty = ScenarioSpec::from_json(&spec.to_json_pretty()).unwrap();
        prop_assert_eq!(&pretty, &spec);
        let compact = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        prop_assert_eq!(&compact, &spec);
    }

    /// The content hash survives a round-trip and ignores exactly the
    /// presentation fields: the name label and the execution block.
    #[test]
    fn content_hash_is_stable_and_ignores_presentation(spec in any_spec()) {
        let hash = spec.content_hash();
        let round_tripped = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        prop_assert_eq!(round_tripped.content_hash(), hash);

        let mut relabeled = spec.clone();
        relabeled.name = format!("{}-x", relabeled.name);
        relabeled.execution = Some(ExecutionSpec {
            threads: 61,
            backend: Backend::Implicit,
        });
        prop_assert_eq!(relabeled.content_hash(), hash);

        prop_assert_eq!(spec.content_hash_hex(), format!("{hash:016x}"));
        prop_assert_eq!(spec.schema.as_str(), SPEC_SCHEMA);
    }

    /// Hashing is field-order independent: feeding the serializer a spec
    /// whose JSON object keys come back in a different order (built by
    /// splicing the serialized text) yields the same hash.
    #[test]
    fn content_hash_survives_field_reordering(spec in any_spec()) {
        // Round-trip through compact JSON with the top-level keys reversed.
        let json = spec.to_json();
        prop_assume!(json.starts_with('{') && json.ends_with('}'));
        // Parse and re-emit via the generic Value path: from_json validates,
        // and parsing is order-insensitive, so a reordered document must
        // reach the same canonical hash.
        let reordered = reorder_top_level(&json);
        let parsed = ScenarioSpec::from_json(&reordered).unwrap();
        prop_assert_eq!(parsed.content_hash(), spec.content_hash());
    }
}

/// Reverses the order of the top-level `"key": value` entries of a compact
/// JSON object by splitting on top-level commas.
fn reorder_top_level(json: &str) -> String {
    let inner = &json[1..json.len() - 1];
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut parts = Vec::new();
    let mut start = 0usize;
    for (index, ch) in inner.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match ch {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '{' | '[' if !in_string => depth += 1,
            '}' | ']' if !in_string => depth -= 1,
            ',' if !in_string && depth == 0 => {
                parts.push(&inner[start..index]);
                start = index + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    parts.reverse();
    format!("{{{}}}", parts.join(","))
}
