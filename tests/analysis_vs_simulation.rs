//! Cross-crate integration test: the analytical RCM predictions of
//! `dht-rcm-core` must track the measurements taken on the executable
//! overlays of `dht-overlay` via `dht-sim`, for every geometry the paper
//! analyses — this is the substance of Fig. 6.

use dht_rcm::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const BITS: u32 = 11;
const PAIRS: u64 = 8_000;

fn measure<O: Overlay + Sync + ?Sized>(overlay: &O, q: f64, seed: u64) -> f64 {
    let config = StaticResilienceConfig::new(q)
        .expect("valid failure probability")
        .with_pairs(PAIRS)
        .with_seed(seed)
        .with_threads(2);
    StaticResilienceExperiment::new(config)
        .run(overlay)
        .routability
}

fn predict(geometry: &Geometry, q: f64) -> f64 {
    geometry
        .routability(SystemSize::power_of_two(BITS).unwrap(), q)
        .unwrap()
        .routability
}

#[test]
fn tree_prediction_tracks_simulation() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let overlay = PlaxtonOverlay::build(BITS, &mut rng).unwrap();
    for &q in &[0.1, 0.3, 0.5] {
        let predicted = predict(&Geometry::tree(), q);
        let measured = measure(&overlay, q, 100);
        assert!(
            (predicted - measured).abs() < 0.08,
            "tree at q={q}: predicted {predicted}, measured {measured}"
        );
    }
}

#[test]
fn hypercube_prediction_tracks_simulation() {
    let overlay = CanOverlay::build(BITS).unwrap();
    for &q in &[0.1, 0.3, 0.5] {
        let predicted = predict(&Geometry::hypercube(), q);
        let measured = measure(&overlay, q, 200);
        assert!(
            (predicted - measured).abs() < 0.08,
            "hypercube at q={q}: predicted {predicted}, measured {measured}"
        );
    }
}

#[test]
fn xor_prediction_tracks_simulation() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let overlay = KademliaOverlay::build(BITS, &mut rng).unwrap();
    for &q in &[0.1, 0.3, 0.5] {
        let predicted = predict(&Geometry::xor(), q);
        let measured = measure(&overlay, q, 300);
        assert!(
            (predicted - measured).abs() < 0.12,
            "xor at q={q}: predicted {predicted}, measured {measured}"
        );
    }
}

#[test]
fn ring_prediction_is_a_lower_bound_on_simulation() {
    // §4.3.3: the analysis under-counts Chord's options, so the prediction
    // must sit at or below the measurement (within sampling noise), and close
    // to it for small q.
    let overlay = ChordOverlay::build(BITS, ChordVariant::Deterministic).unwrap();
    for &q in &[0.1, 0.2, 0.4, 0.6] {
        let predicted = predict(&Geometry::ring(), q);
        let measured = measure(&overlay, q, 400);
        assert!(
            predicted <= measured + 0.03,
            "ring at q={q}: predicted {predicted} should lower-bound measured {measured}"
        );
    }
    let predicted = predict(&Geometry::ring(), 0.1);
    let measured = measure(&overlay, 0.1, 401);
    assert!((predicted - measured).abs() < 0.05);
}

#[test]
fn symphony_prediction_and_simulation_agree_qualitatively() {
    // The paper never validates Symphony against simulation (Fig. 6 covers
    // only the other four geometries); its per-phase model counts an
    // overshooting shortcut as a usable detour, which a strict greedy
    // simulation does not. The integration requirement is therefore
    // qualitative: both prediction and measurement must degrade steeply with
    // q, and the prediction must not be *more* pessimistic than the greedy
    // measurement by a wide margin.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let overlay = SymphonyOverlay::build(BITS, 1, 1, &mut rng).unwrap();
    let mut previous_measured = 1.1f64;
    for &q in &[0.05, 0.2, 0.4] {
        let predicted = predict(&Geometry::symphony(1, 1).unwrap(), q);
        let measured = measure(&overlay, q, 500);
        assert!(
            measured <= previous_measured + 0.02,
            "symphony measured routability must degrade with q"
        );
        assert!(
            measured <= predicted + 0.15,
            "symphony at q={q}: measured {measured} unexpectedly above the optimistic model {predicted}"
        );
        previous_measured = measured;
    }
}

#[test]
fn simulated_ordering_matches_the_papers_ranking() {
    // Under identical failures: hypercube >= ring >= xor >= tree, and tree >=
    // symphony is not guaranteed at small N, but the scalable three must all
    // beat the tree.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let q = 0.3;
    let tree = measure(&PlaxtonOverlay::build(BITS, &mut rng).unwrap(), q, 600);
    let cube = measure(&CanOverlay::build(BITS).unwrap(), q, 600);
    let xor = measure(&KademliaOverlay::build(BITS, &mut rng).unwrap(), q, 600);
    let ring = measure(
        &ChordOverlay::build(BITS, ChordVariant::Deterministic).unwrap(),
        q,
        600,
    );
    assert!(cube > tree + 0.1);
    assert!(xor > tree + 0.1);
    assert!(ring > tree + 0.1);
}
