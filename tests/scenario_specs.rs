//! Golden scenario specs: every file under `tests/specs/` must parse, run
//! deterministically at smoke size, and memoize through the report server.

use dht_rcm::prelude::*;
use dht_rcm::scenario::{Request, RequestEnvelope};
use std::fs;
use std::path::PathBuf;

fn golden_specs() -> Vec<(String, ScenarioSpec)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/specs");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/specs exists")
        .filter_map(|entry| entry.ok().map(|entry| entry.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "golden spec directory must not be empty");
    files
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path).unwrap();
            let spec = ScenarioSpec::from_json(&text)
                .unwrap_or_else(|err| panic!("{}: {err}", path.display()));
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                spec,
            )
        })
        .collect()
}

#[test]
fn golden_specs_parse_and_cover_distinct_families() {
    let specs = golden_specs();
    let mut families: Vec<&str> = specs.iter().map(|(_, spec)| spec.family().name()).collect();
    families.sort_unstable();
    families.dedup();
    assert!(
        families.len() >= 4,
        "goldens should span several experiment families, got {families:?}"
    );
    for (file, spec) in &specs {
        assert_eq!(spec.content_hash_hex().len(), 16, "{file}");
    }
}

#[test]
fn golden_specs_run_deterministically() {
    for (file, spec) in golden_specs() {
        let first = run_spec(&spec, None).unwrap_or_else(|err| panic!("{file}: {err}"));
        let second = run_spec(&spec, Some(3)).unwrap();
        assert_eq!(
            first.report, second.report,
            "{file}: reports must not depend on the thread budget"
        );
        assert_eq!(first.report.spec_hash, spec.content_hash_hex());
        assert_eq!(first.report.family, spec.family().name());
        assert!(!first.headline.is_empty());
        assert!(!first.table.is_empty());
    }
}

#[test]
fn golden_specs_memoize_through_the_report_server() {
    let mut server = ReportServer::new(2);
    let mut lines = Vec::new();
    for (index, (_, spec)) in golden_specs().into_iter().enumerate() {
        let line = serde_json::to_string(&RequestEnvelope {
            id: index as u64 + 1,
            request: Request::Report { spec },
        })
        .unwrap();
        lines.push(server.handle_line(&line));
    }
    let misses = server.stats().report_misses;
    assert_eq!(misses as usize, lines.len());

    // Replaying the whole batch answers every line from cache, verbatim.
    for (index, (_, spec)) in golden_specs().into_iter().enumerate() {
        let line = serde_json::to_string(&RequestEnvelope {
            id: index as u64 + 1,
            request: Request::Report { spec },
        })
        .unwrap();
        assert_eq!(server.handle_line(&line), lines[index]);
    }
    let stats = server.stats();
    assert_eq!(stats.report_misses, misses, "no re-execution on replay");
    assert_eq!(stats.report_hits as usize, lines.len());
}
