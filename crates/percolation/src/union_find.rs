//! Disjoint-set (union–find) structure with path compression and union by
//! size.

/// A disjoint-set forest over `n` elements identified by index.
///
/// # Example
///
/// ```rust
/// use dht_percolation::UnionFind;
///
/// let mut uf = UnionFind::new(5);
/// uf.union(0, 1);
/// uf.union(3, 4);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 3));
/// assert_eq!(uf.component_size(4), 2);
/// assert_eq!(uf.component_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton components.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of distinct components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x`'s component (with path compression).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut current = x;
        while self.parent[current] != root {
            let next = self.parent[current];
            self.parent[current] = root;
            current = next;
        }
        root
    }

    /// Merges the components of `a` and `b`; returns `true` if they were
    /// previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let mut root_a = self.find(a);
        let mut root_b = self.find(b);
        if root_a == root_b {
            return false;
        }
        if self.size[root_a] < self.size[root_b] {
            std::mem::swap(&mut root_a, &mut root_b);
        }
        self.parent[root_b] = root_a;
        self.size[root_a] += self.size[root_b];
        self.components -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same component.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the component containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root]
    }

    /// Size of the largest component (0 for an empty structure).
    #[must_use]
    pub fn largest_component_size(&self) -> usize {
        self.parent
            .iter()
            .enumerate()
            .filter(|&(index, &parent)| index == parent)
            .map(|(index, _)| self.size[index])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_construction() {
        let uf = UnionFind::new(4);
        assert_eq!(uf.len(), 4);
        assert_eq!(uf.component_count(), 4);
        assert_eq!(uf.largest_component_size(), 1);
        assert!(!uf.is_empty());
        assert!(UnionFind::new(0).is_empty());
    }

    #[test]
    fn unions_merge_components() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert_eq!(uf.component_count(), 4);
        assert_eq!(uf.component_size(2), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 5));
    }

    #[test]
    fn largest_component_tracks_merges() {
        let mut uf = UnionFind::new(10);
        for i in 0..4 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.largest_component_size(), 5);
        for i in 6..9 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.largest_component_size(), 5);
        uf.union(4, 6);
        assert_eq!(uf.largest_component_size(), 9);
    }

    #[test]
    fn find_is_idempotent_and_consistent() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), root);
        }
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.component_size(42), 100);
    }
}
