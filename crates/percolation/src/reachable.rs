//! Reachable components: the set of destinations a root can actually route
//! to, as opposed to the set it is merely connected to.

use dht_id::NodeId;
use dht_overlay::{route, FailureMask, Overlay};

/// Computes the reachable component of `root`: every surviving node that the
/// routing protocol actually delivers to from `root` under the frozen failure
/// pattern (§4.1, step 1 of the paper).
///
/// The root itself is not included (matching `E[S]`, which counts *other*
/// reachable nodes). The result is always a subset of the root's connected
/// component.
///
/// # Panics
///
/// Panics if `root` does not belong to the overlay's key space.
#[must_use]
pub fn reachable_component<O>(overlay: &O, root: NodeId, mask: &FailureMask) -> Vec<NodeId>
where
    O: Overlay + ?Sized,
{
    if mask.is_failed(root) {
        return Vec::new();
    }
    mask.alive_nodes()
        .filter(|&destination| destination != root)
        .filter(|&destination| route(overlay, root, destination, mask).is_delivered())
        .collect()
}

/// The size of the root's reachable component divided by the number of other
/// surviving nodes — the per-root analogue of routability.
///
/// Returns 0 when the root failed or no other node survived.
#[must_use]
pub fn reachable_fraction<O>(overlay: &O, root: NodeId, mask: &FailureMask) -> f64
where
    O: Overlay + ?Sized,
{
    let others = mask.alive_count().saturating_sub(1);
    if others == 0 || mask.is_failed(root) {
        return 0.0;
    }
    reachable_component(overlay, root, mask).len() as f64 / others as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use dht_overlay::{CanOverlay, KademliaOverlay, PlaxtonOverlay};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn intact_overlay_reaches_everyone() {
        let overlay = CanOverlay::build(6).unwrap();
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let root = space.wrap(21);
        let reachable = reachable_component(&overlay, root, &mask);
        assert_eq!(reachable.len(), 63);
        assert!((reachable_fraction(&overlay, root, &mask) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failed_root_reaches_nothing() {
        let overlay = CanOverlay::build(5).unwrap();
        let space = overlay.key_space();
        let root = space.wrap(3);
        let mask = FailureMask::from_failed_nodes(space, [root]);
        assert!(reachable_component(&overlay, root, &mask).is_empty());
        assert_eq!(reachable_fraction(&overlay, root, &mask), 0.0);
    }

    #[test]
    fn reachable_component_is_subset_of_connected_component() {
        // The central observation of §1 of the paper, checked on the tree
        // overlay where the gap is widest.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let overlay = PlaxtonOverlay::build(9, &mut rng).unwrap();
        let mask = FailureMask::sample(overlay.key_space(), 0.3, &mut rng);
        let components = connected_components(&overlay, &mask);
        let mut checked = 0;
        for root in mask.alive_nodes().take(20) {
            let reachable = reachable_component(&overlay, root, &mask);
            let component = components.component_size(root).unwrap();
            // +1 because the component size includes the root itself.
            assert!(
                (reachable.len() as u64) < component,
                "reachable {} vs component {component}",
                reachable.len()
            );
            for destination in &reachable {
                assert!(components.same_component(root, *destination));
            }
            checked += 1;
        }
        assert_eq!(checked, 20);
    }

    #[test]
    fn xor_reaches_more_than_tree_under_identical_failures() {
        let seed = 7;
        let tree = PlaxtonOverlay::build(9, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        let xor = KademliaOverlay::build(9, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mask = FailureMask::sample(tree.key_space(), 0.3, &mut rng);
        let mut tree_total = 0usize;
        let mut xor_total = 0usize;
        for root in mask.alive_nodes().take(30) {
            tree_total += reachable_component(&tree, root, &mask).len();
            xor_total += reachable_component(&xor, root, &mask).len();
        }
        assert!(
            xor_total > tree_total,
            "XOR fallback routing should reach more nodes: {xor_total} vs {tree_total}"
        );
    }
}
