//! Connectivity, reachable components and percolation thresholds for DHT
//! overlays.
//!
//! Section 1 of the RCM paper contrasts *routability* with plain graph
//! connectivity: percolation theory predicts when the overlay fragments, but
//! "all pairs belonging to the same connected component need not be reachable
//! under failure" because the routing protocol constrains which edges a
//! message may use. This crate provides the connectivity side of that
//! comparison:
//!
//! * [`UnionFind`] and [`connected_components`] — component structure of the
//!   surviving overlay graph (edges used in either direction);
//! * [`reachable_component`] — the set of destinations a root can actually
//!   route to, which is always a subset of its connected component;
//! * [`percolation_threshold`] — a bisection estimate of the failure
//!   probability at which the giant component collapses, i.e. `1 − p_c`.
//!
//! # Example
//!
//! ```rust
//! use dht_overlay::{CanOverlay, FailureMask, Overlay};
//! use dht_percolation::{connected_components, reachable_component};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let overlay = CanOverlay::build(8)?;
//! let mut rng = ChaCha8Rng::seed_from_u64(3);
//! let mask = FailureMask::sample(overlay.key_space(), 0.3, &mut rng);
//! let components = connected_components(&overlay, &mask);
//! let root = mask.alive_nodes().next().unwrap();
//! let reachable = reachable_component(&overlay, root, &mask);
//! // The reachable component never exceeds the connected component.
//! assert!(reachable.len() as u64 <= components.component_size(root).unwrap());
//! # Ok::<(), dht_overlay::OverlayError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod components;
pub mod reachable;
pub mod threshold;
pub mod union_find;

pub use components::{connected_components, ComponentStructure};
pub use reachable::{reachable_component, reachable_fraction};
pub use threshold::{percolation_threshold, ThresholdEstimate};
pub use union_find::UnionFind;
