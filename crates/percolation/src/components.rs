//! Connected components of the surviving overlay graph.

use crate::union_find::UnionFind;
use dht_id::NodeId;
use dht_overlay::{FailureMask, Overlay};

/// The component structure of an overlay restricted to surviving nodes.
///
/// Routing-table edges are treated as undirected for this analysis: if either
/// endpoint can name the other, the pair is "connected" in the percolation
/// sense, which is the most generous notion of connectivity and therefore the
/// cleanest upper bound on what any routing protocol could reach.
#[derive(Debug, Clone)]
pub struct ComponentStructure {
    /// Component label per node; `None` for failed nodes.
    component_of: Vec<Option<u32>>,
    /// Size of each component, indexed by label.
    component_sizes: Vec<u64>,
    alive_count: u64,
}

impl ComponentStructure {
    /// Size of the component containing `node`, or `None` if the node failed.
    #[must_use]
    pub fn component_size(&self, node: NodeId) -> Option<u64> {
        self.component_of[node.value() as usize].map(|label| self.component_sizes[label as usize])
    }

    /// Returns `true` if both nodes survived and lie in the same component.
    #[must_use]
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        match (
            self.component_of[a.value() as usize],
            self.component_of[b.value() as usize],
        ) {
            (Some(la), Some(lb)) => la == lb,
            _ => false,
        }
    }

    /// Number of distinct surviving components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.component_sizes.len()
    }

    /// Size of the largest surviving component.
    #[must_use]
    pub fn largest_component_size(&self) -> u64 {
        self.component_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Largest component size as a fraction of the surviving nodes
    /// (0 when nothing survived).
    #[must_use]
    pub fn giant_component_fraction(&self) -> f64 {
        if self.alive_count == 0 {
            0.0
        } else {
            self.largest_component_size() as f64 / self.alive_count as f64
        }
    }

    /// Number of surviving nodes.
    #[must_use]
    pub fn alive_count(&self) -> u64 {
        self.alive_count
    }
}

/// Computes the connected components of `overlay` under `mask`.
///
/// # Panics
///
/// Panics if the overlay and mask cover different key spaces.
#[must_use]
pub fn connected_components<O>(overlay: &O, mask: &FailureMask) -> ComponentStructure
where
    O: Overlay + ?Sized,
{
    let space = overlay.key_space();
    assert_eq!(
        space.bits(),
        mask.key_space().bits(),
        "overlay and failure mask cover different key spaces"
    );
    let population = space.population() as usize;
    let mut union_find = UnionFind::new(population);
    let mut alive = vec![false; population];
    for node in mask.alive_nodes() {
        alive[node.value() as usize] = true;
    }
    for node in space.iter_ids() {
        if !alive[node.value() as usize] {
            continue;
        }
        for &neighbor in overlay.neighbors(node) {
            if alive[neighbor.value() as usize] {
                union_find.union(node.value() as usize, neighbor.value() as usize);
            }
        }
    }
    // Finalise the union-find into dense component labels restricted to alive
    // nodes, so later queries are O(1) and immutable.
    let mut component_of = vec![None; population];
    let mut label_of_root: Vec<Option<u32>> = vec![None; population];
    let mut component_sizes = Vec::new();
    for index in 0..population {
        if !alive[index] {
            continue;
        }
        let root = union_find.find(index);
        let label = match label_of_root[root] {
            Some(label) => label,
            None => {
                let label = component_sizes.len() as u32;
                label_of_root[root] = Some(label);
                component_sizes.push(0u64);
                label
            }
        };
        component_of[index] = Some(label);
        component_sizes[label as usize] += 1;
    }
    ComponentStructure {
        component_of,
        component_sizes,
        alive_count: mask.alive_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_overlay::CanOverlay;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn intact_overlay_is_one_component() {
        let overlay = CanOverlay::build(6).unwrap();
        let mask = FailureMask::none(overlay.key_space());
        let components = connected_components(&overlay, &mask);
        assert_eq!(components.largest_component_size(), 64);
        assert_eq!(components.giant_component_fraction(), 1.0);
        assert_eq!(components.component_count(), 1);
        let space = overlay.key_space();
        assert!(components.same_component(space.wrap(0), space.wrap(63)));
        assert_eq!(components.component_size(space.wrap(5)), Some(64));
    }

    #[test]
    fn failed_nodes_are_outside_every_component() {
        let overlay = CanOverlay::build(5).unwrap();
        let space = overlay.key_space();
        let mask = FailureMask::from_failed_nodes(space, [space.wrap(7)]);
        let components = connected_components(&overlay, &mask);
        assert_eq!(components.component_size(space.wrap(7)), None);
        assert!(!components.same_component(space.wrap(7), space.wrap(6)));
        assert_eq!(components.alive_count(), 31);
        assert_eq!(components.largest_component_size(), 31);
    }

    #[test]
    fn moderate_failure_keeps_a_giant_component() {
        // The hypercube's percolation threshold is far above q = 0.3, so the
        // surviving graph should stay essentially fully connected.
        let overlay = CanOverlay::build(10).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mask = FailureMask::sample(overlay.key_space(), 0.3, &mut rng);
        let components = connected_components(&overlay, &mask);
        assert!(components.giant_component_fraction() > 0.95);
    }

    #[test]
    fn extreme_failure_fragments_the_graph() {
        let overlay = CanOverlay::build(10).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mask = FailureMask::sample(overlay.key_space(), 0.95, &mut rng);
        let components = connected_components(&overlay, &mask);
        assert!(
            components.giant_component_fraction() < 0.5,
            "fraction = {}",
            components.giant_component_fraction()
        );
        assert!(components.component_count() > 1);
    }

    #[test]
    fn component_sizes_sum_to_alive_count() {
        let overlay = CanOverlay::build(9).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mask = FailureMask::sample(overlay.key_space(), 0.6, &mut rng);
        let components = connected_components(&overlay, &mask);
        let total: u64 = overlay
            .key_space()
            .iter_ids()
            .filter_map(|node| components.component_size(node))
            .sum();
        // Summing per-node sizes counts each component size times its member
        // count; instead verify via the distinct-label invariant.
        assert!(total >= components.alive_count());
        assert_eq!(
            components.component_sizes.iter().sum::<u64>(),
            components.alive_count()
        );
    }
}
