//! Percolation-threshold estimation.
//!
//! §1 of the paper invokes site percolation: once the failure probability
//! exceeds `1 − p_c` the overlay fragments and routability necessarily goes
//! to zero. This module estimates that critical failure probability for an
//! executable overlay by bisection on the giant-component fraction.

use crate::components::connected_components;
use dht_overlay::{FailureMask, Overlay};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Result of a percolation-threshold estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdEstimate {
    /// Estimated critical failure probability `q_c = 1 − p_c`: below it a
    /// giant component persists, above it the graph fragments.
    pub critical_failure_probability: f64,
    /// Giant-component fraction threshold used as the fragmentation criterion.
    pub fraction_threshold: f64,
    /// Number of bisection iterations performed.
    pub iterations: u32,
    /// Trials averaged per probed point.
    pub trials: u32,
}

/// Estimates the critical failure probability of `overlay` by bisection.
///
/// A point `q` is considered "still percolating" when the average
/// giant-component fraction over `trials` independent failure patterns is at
/// least `fraction_threshold` (0.5 is the customary choice for finite
/// systems). The bisection runs for `iterations` steps, giving a resolution
/// of `2^{-iterations}`.
///
/// # Panics
///
/// Panics if `fraction_threshold` is not in `(0, 1)`, or `trials` or
/// `iterations` is zero.
///
/// # Example
///
/// ```rust
/// use dht_overlay::CanOverlay;
/// use dht_percolation::percolation_threshold;
///
/// let overlay = CanOverlay::build(10)?;
/// let estimate = percolation_threshold(&overlay, 0.5, 12, 3, 42);
/// // A 10-dimensional hypercube stays connected well past 50% failures.
/// assert!(estimate.critical_failure_probability > 0.5);
/// # Ok::<(), dht_overlay::OverlayError>(())
/// ```
#[must_use]
pub fn percolation_threshold<O>(
    overlay: &O,
    fraction_threshold: f64,
    iterations: u32,
    trials: u32,
    seed: u64,
) -> ThresholdEstimate
where
    O: Overlay + ?Sized,
{
    assert!(
        fraction_threshold > 0.0 && fraction_threshold < 1.0,
        "fraction threshold must be in (0, 1)"
    );
    assert!(
        iterations > 0,
        "at least one bisection iteration is required"
    );
    assert!(trials > 0, "at least one trial per point is required");

    let percolates = |q: f64, salt: u64| -> bool {
        let mut total = 0.0;
        for trial in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(
                seed ^ (salt.wrapping_mul(0x9E37_79B9)) ^ u64::from(trial),
            );
            let mask = FailureMask::sample(overlay.key_space(), q, &mut rng);
            total += connected_components(overlay, &mask).giant_component_fraction();
        }
        total / f64::from(trials) >= fraction_threshold
    };

    let mut low = 0.0f64; // known (or assumed) percolating
    let mut high = 1.0f64; // known fragmented (everything failed)
    for iteration in 0..iterations {
        let mid = (low + high) / 2.0;
        if percolates(mid, u64::from(iteration) + 1) {
            low = mid;
        } else {
            high = mid;
        }
    }
    ThresholdEstimate {
        critical_failure_probability: (low + high) / 2.0,
        fraction_threshold,
        iterations,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_overlay::{CanOverlay, SymphonyOverlay};

    #[test]
    fn hypercube_threshold_is_high() {
        let overlay = CanOverlay::build(10).unwrap();
        let estimate = percolation_threshold(&overlay, 0.5, 10, 2, 7);
        assert!(
            estimate.critical_failure_probability > 0.5,
            "got {}",
            estimate.critical_failure_probability
        );
        assert!(estimate.critical_failure_probability < 1.0);
        assert_eq!(estimate.iterations, 10);
    }

    #[test]
    fn sparse_symphony_fragments_earlier_than_the_hypercube() {
        // A ring with one successor and one shortcut (degree ~2 out-edges,
        // ~4 undirected) falls apart at a much lower failure rate than a
        // 10-regular hypercube.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let symphony = SymphonyOverlay::build(10, 1, 1, &mut rng).unwrap();
        let hypercube = CanOverlay::build(10).unwrap();
        let symphony_estimate = percolation_threshold(&symphony, 0.5, 8, 2, 11);
        let hypercube_estimate = percolation_threshold(&hypercube, 0.5, 8, 2, 11);
        assert!(
            symphony_estimate.critical_failure_probability
                < hypercube_estimate.critical_failure_probability
        );
    }

    #[test]
    fn estimates_are_reproducible() {
        let overlay = CanOverlay::build(8).unwrap();
        let a = percolation_threshold(&overlay, 0.5, 8, 2, 5);
        let b = percolation_threshold(&overlay, 0.5, 8, 2, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "fraction threshold")]
    fn rejects_invalid_threshold() {
        let overlay = CanOverlay::build(4).unwrap();
        let _ = percolation_threshold(&overlay, 1.5, 4, 1, 0);
    }
}
