//! Golden-route property tests: the refactored CSR/strategy overlays must
//! reproduce the seed implementation's behaviour exactly for fully populated
//! spaces.
//!
//! Each reference overlay below is a faithful transcription of the seed
//! code's `Vec<Vec<NodeId>>` construction and next-hop rule (same RNG
//! stream). The properties assert, per geometry, that the refactored overlay
//! produces (a) identical routing tables, (b) identical `next_hop` decisions
//! under a seeded failure mask, and (c) identical `route` outcomes.

use dht_id::{
    distance::{hamming, ring_distance, xor_distance},
    prefix::highest_differing_bit,
    KeySpace, NodeId, Population,
};
use dht_overlay::{
    route, CanOverlay, ChordOverlay, ChordVariant, FailureMask, KademliaOverlay, Overlay,
    PlaxtonOverlay, SymphonyOverlay,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The seed implementations all stored one `Vec<NodeId>` per node and indexed
/// by identifier value; this replica drives the original next-hop rules.
struct Reference {
    population: Population,
    tables: Vec<Vec<NodeId>>,
    geometry: &'static str,
}

impl Overlay for Reference {
    fn geometry_name(&self) -> &'static str {
        self.geometry
    }

    fn population(&self) -> &Population {
        &self.population
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.tables[node.value() as usize]
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        match self.geometry {
            "tree" => {
                let level = highest_differing_bit(current, target)?;
                let entry = self.tables[current.value() as usize][level as usize];
                alive.is_alive(entry).then_some(entry)
            }
            "hypercube" => {
                let current_distance = hamming(current, target);
                self.neighbors(current)
                    .iter()
                    .copied()
                    .filter(|&n| alive.is_alive(n) && hamming(n, target) < current_distance)
                    .min_by_key(|n| n.value() ^ target.value())
            }
            "xor" => {
                let current_distance = xor_distance(current, target);
                self.neighbors(current)
                    .iter()
                    .copied()
                    .filter(|&n| alive.is_alive(n) && xor_distance(n, target) < current_distance)
                    .min_by_key(|&n| xor_distance(n, target))
            }
            // ring and symphony share the greedy non-overshooting rule.
            _ => {
                let remaining = ring_distance(current, target);
                self.neighbors(current)
                    .iter()
                    .copied()
                    .filter(|&n| {
                        alive.is_alive(n) && {
                            let advance = ring_distance(current, n);
                            advance > 0 && advance <= remaining
                        }
                    })
                    .min_by_key(|&n| ring_distance(n, target))
            }
        }
    }
}

fn reference_tables<F>(space: KeySpace, geometry: &'static str, build: F) -> Reference
where
    F: FnMut(NodeId) -> Vec<NodeId>,
{
    Reference {
        population: Population::full(space),
        tables: space.iter_ids().map(build).collect(),
        geometry,
    }
}

/// Seed `ChordOverlay::build_impl`.
fn reference_chord(space: KeySpace, variant: ChordVariant, seed: u64) -> Reference {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let bits = space.bits();
    reference_tables(space, "ring", |node| {
        (1..=bits)
            .map(|finger| {
                let base = 1u64 << (finger - 1);
                let span = base;
                let offset = match variant {
                    ChordVariant::Deterministic => 0,
                    ChordVariant::Randomized => {
                        if span <= 1 {
                            0
                        } else {
                            rng.gen_range(0..span)
                        }
                    }
                };
                space.wrap(node.value().wrapping_add(base + offset))
            })
            .collect()
    })
}

/// Seed `KademliaOverlay::build` / `PlaxtonOverlay::build` (identical tables).
fn reference_prefix(space: KeySpace, geometry: &'static str, seed: u64) -> Reference {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let bits = space.bits();
    reference_tables(space, geometry, |node| {
        (0..bits)
            .map(|bucket| {
                let random_suffix = space.random_id(&mut rng);
                node.flip_bit(bucket)
                    .expect("bucket index is within the key space")
                    .splice_prefix(bucket + 1, random_suffix)
                    .expect("identifier widths match")
            })
            .collect()
    })
}

/// Seed `CanOverlay::build`.
fn reference_can(space: KeySpace) -> Reference {
    let bits = space.bits();
    reference_tables(space, "hypercube", |node| {
        (0..bits)
            .map(|bit| {
                node.flip_bit(bit)
                    .expect("bit index is within the key space")
            })
            .collect()
    })
}

/// Seed `SymphonyOverlay::build` (including its harmonic sampler).
fn reference_symphony(space: KeySpace, kn: u32, ks: u32, seed: u64) -> Reference {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let population = space.population();
    reference_tables(space, "symphony", |node| {
        let mut table: Vec<NodeId> = (1..=u64::from(kn))
            .map(|step| space.wrap(node.value().wrapping_add(step)))
            .collect();
        for _ in 0..ks {
            let ln_n = (population as f64).ln();
            let sample = (rng.gen::<f64>() * ln_n).exp();
            let distance = (sample.floor() as u64).clamp(1, population - 1);
            table.push(space.wrap(node.value().wrapping_add(distance)));
        }
        table
    })
}

/// Asserts tables, per-hop decisions and route outcomes all match.
fn assert_golden<O: Overlay>(
    reference: &Reference,
    refactored: &O,
    q: f64,
    mask_seed: u64,
    pair_seed: u64,
) -> Result<(), TestCaseError> {
    let space = reference.population.space();
    prop_assert_eq!(reference.geometry, refactored.geometry_name());

    // (a) identical routing tables for every node, and a consistent O(1)
    // edge count.
    let mut edges = 0u64;
    for node in space.iter_ids() {
        prop_assert_eq!(
            reference.neighbors(node),
            refactored.neighbors(node),
            "tables diverge at node {}",
            node
        );
        edges += reference.neighbors(node).len() as u64;
    }
    prop_assert_eq!(edges, refactored.edge_count());

    let mask = FailureMask::sample(space, q, &mut ChaCha8Rng::seed_from_u64(mask_seed));
    let mut rng = ChaCha8Rng::seed_from_u64(pair_seed);
    for _ in 0..40 {
        let source = space.random_id(&mut rng);
        let target = space.random_id(&mut rng);
        // (b) identical greedy decisions at arbitrary intermediate states.
        prop_assert_eq!(
            reference.next_hop(source, target, &mask),
            refactored.next_hop(source, target, &mask),
            "next_hop diverges for {} -> {}",
            source,
            target
        );
        // (c) identical end-to-end outcomes.
        prop_assert_eq!(
            route(reference, source, target, &mask),
            route(refactored, source, target, &mask),
            "route outcome diverges for {} -> {}",
            source,
            target
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn chord_matches_the_seed_behavior(
        bits in 4u32..9,
        seed in 0u64..1 << 20,
        q in 0.0f64..0.6,
        deterministic in prop_oneof![Just(true), Just(false)],
    ) {
        let space = KeySpace::new(bits).unwrap();
        let (reference, refactored) = if deterministic {
            (
                reference_chord(space, ChordVariant::Deterministic, seed),
                ChordOverlay::build(bits, ChordVariant::Deterministic).unwrap(),
            )
        } else {
            (
                reference_chord(space, ChordVariant::Randomized, seed),
                ChordOverlay::build_randomized(bits, &mut ChaCha8Rng::seed_from_u64(seed))
                    .unwrap(),
            )
        };
        assert_golden(&reference, &refactored, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn kademlia_matches_the_seed_behavior(
        bits in 4u32..9,
        seed in 0u64..1 << 20,
        q in 0.0f64..0.6,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let reference = reference_prefix(space, "xor", seed);
        let refactored =
            KademliaOverlay::build(bits, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        assert_golden(&reference, &refactored, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn plaxton_matches_the_seed_behavior(
        bits in 4u32..9,
        seed in 0u64..1 << 20,
        q in 0.0f64..0.6,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let reference = reference_prefix(space, "tree", seed);
        let refactored =
            PlaxtonOverlay::build(bits, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        assert_golden(&reference, &refactored, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn can_matches_the_seed_behavior(
        bits in 4u32..9,
        seed in 0u64..1 << 20,
        q in 0.0f64..0.6,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let reference = reference_can(space);
        let refactored = CanOverlay::build(bits).unwrap();
        assert_golden(&reference, &refactored, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn symphony_matches_the_seed_behavior(
        bits in 4u32..9,
        seed in 0u64..1 << 20,
        q in 0.0f64..0.6,
        kn in 1u32..3,
        ks in 1u32..3,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let reference = reference_symphony(space, kn, ks, seed);
        let refactored =
            SymphonyOverlay::build(bits, kn, ks, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        assert_golden(&reference, &refactored, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }
}
