//! Property suite: [`FailurePlan`] lowering is deterministic, budgeted and
//! population-aware.
//!
//! Three contracts, each driven over every plan shape on full *and* sparse
//! populations:
//!
//! 1. **Determinism** — the same `(plan, overlay, seed)` lowers to a
//!    bit-identical [`FailureMask`], however often it is repeated; a
//!    different seed perturbs every randomized plan.
//! 2. **Budget** — the realized failed fraction tracks the target with the
//!    plan-appropriate tolerance: exact `round(q·n)/n` for the
//!    node-budgeted plans, subtree-resolution for prefix plans, at-least-
//!    the-seeding for cascades.
//! 3. **Occupancy** — plans never fail an unoccupied identifier: alive and
//!    failed counts partition the occupied set exactly, and every alive
//!    node is a member of the population.
//!
//! The number of cases per property honours the `PROPTEST_CASES`
//! environment variable (CI raises it; the local default keeps this fast).

use dht_id::{KeySpace, Population};
use dht_overlay::{ChordOverlay, ChordVariant, FailurePlan, KademliaOverlay, Overlay};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One plan of each shape, structural parameters derived from `knob`.
fn plan_catalogue(fraction: f64, knob: u32) -> Vec<FailurePlan> {
    vec![
        FailurePlan::Uniform { fraction },
        FailurePlan::SegmentCorrelated {
            fraction,
            segments: 1 + knob % 9,
        },
        FailurePlan::PrefixSubtree {
            fraction,
            prefix_bits: 1 + knob % 4,
        },
        FailurePlan::AdaptiveAdversary {
            fraction,
            rounds: 1 + knob % 5,
        },
        FailurePlan::Cascade {
            seed_fraction: fraction,
            propagation: 0.25,
        },
    ]
}

/// A ring or XOR overlay over a full or sparse population — the plan
/// lowering path only sees the [`Overlay`] trait, so two geometries and
/// both occupancy regimes cover its inputs.
fn build_overlay(bits: u32, sparse: bool, xor: bool, build_seed: u64) -> Box<dyn Overlay> {
    let space = KeySpace::new(bits).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(build_seed);
    let population = if sparse {
        let occupied = (space.population() / 2).max(4);
        Population::sample_uniform(space, occupied, &mut rng).unwrap()
    } else {
        Population::full(space)
    };
    if xor {
        Box::new(KademliaOverlay::build_over(population, &mut rng).unwrap())
    } else {
        Box::new(
            ChordOverlay::build_over(population, ChordVariant::Deterministic, &mut rng).unwrap(),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lowering_is_bit_identical_for_a_fixed_seed(
        bits in 4u32..9,
        shape in 0u32..4,
        build_seed in 0u64..1 << 16,
        lower_seed in 0u64..1 << 16,
        fraction in 0.05f64..0.6,
        knob in 0u32..64,
    ) {
        let sparse = shape & 1 == 1;
        let xor = shape & 2 == 2;
        let overlay = build_overlay(bits, sparse, xor, build_seed);
        for plan in plan_catalogue(fraction, knob) {
            plan.validate().unwrap();
            let first = plan.lower(overlay.as_ref(), lower_seed);
            let second = plan.lower(overlay.as_ref(), lower_seed);
            prop_assert_eq!(
                first.words(),
                second.words(),
                "{} drifted across repeated lowering",
                plan.name()
            );
            prop_assert_eq!(first.failed_count(), second.failed_count());
            // The adversary is fully informed (no randomness); every other
            // plan must actually consume its seed. Tiny selection spaces
            // collide legitimately (one subtree of two, one start of
            // sixteen), so require a nontrivial space and accept any of
            // eight alternate seeds differing — the all-collide probability
            // is then negligible for every plan shape.
            let occupied = overlay.population().node_count();
            let nontrivial_space = match &plan {
                FailurePlan::AdaptiveAdversary { .. } => false,
                FailurePlan::PrefixSubtree { prefix_bits, .. } => *prefix_bits >= 3,
                _ => occupied >= 16,
            };
            if nontrivial_space && first.failed_count() > 0 && first.failed_count() < occupied {
                let differs = (1u64..=8).any(|alternate| {
                    let other = plan
                        .lower(overlay.as_ref(), lower_seed ^ (alternate * 0x9e37_79b9));
                    other.words() != first.words()
                });
                prop_assert!(differs, "{} ignored its seed", plan.name());
            }
        }
    }

    #[test]
    fn budgeted_plans_realize_their_target_fraction(
        bits in 4u32..9,
        sparse_sel in 0u32..2,
        xor_sel in 0u32..2,
        lower_seed in 0u64..1 << 16,
        fraction in 0.05f64..0.6,
        knob in 0u32..64,
    ) {
        let sparse = sparse_sel == 1;
        let xor = xor_sel == 1;
        let overlay = build_overlay(bits, sparse, xor, 11);
        let occupied = overlay.population().node_count();
        for plan in plan_catalogue(fraction, knob) {
            let mask = plan.lower(overlay.as_ref(), lower_seed);
            let realized = mask.failed_count() as f64 / occupied as f64;
            match &plan {
                FailurePlan::SegmentCorrelated { .. } | FailurePlan::AdaptiveAdversary { .. } => {
                    // Node-budgeted: exactly round(q·n) occupied nodes die.
                    let budget = ((fraction * occupied as f64).round() as u64).min(occupied);
                    prop_assert_eq!(
                        mask.failed_count(),
                        budget,
                        "{} missed its node budget",
                        plan.name()
                    );
                }
                FailurePlan::PrefixSubtree { prefix_bits, .. } => {
                    // Subtree-budgeted: the fraction is realized at subtree
                    // resolution on a full population; sparse occupancy
                    // perturbs it by whatever lives in the chosen subtrees,
                    // so only the partition contract applies there.
                    if !sparse {
                        let subtrees = f64::from(1u32 << prefix_bits);
                        prop_assert!(
                            (realized - fraction).abs() <= 0.5 / subtrees + 1e-12,
                            "{}: realized {} vs target {} beyond subtree resolution",
                            plan.name(),
                            realized,
                            fraction
                        );
                    }
                }
                FailurePlan::Cascade { .. } => {
                    // Propagation only adds failures on top of the seeding.
                    let seeded = FailurePlan::Uniform { fraction }
                        .lower(overlay.as_ref(), lower_seed);
                    prop_assert!(mask.failed_count() >= seeded.failed_count());
                    for node in mask.alive_nodes() {
                        prop_assert!(
                            seeded.is_alive(node),
                            "cascade revived a seeded failure"
                        );
                    }
                }
                FailurePlan::Uniform { .. } => {
                    // Bernoulli sampling: the loosest statistical sanity
                    // bound that cannot flake at n >= 16, q in [0.05, 0.6].
                    prop_assert!(
                        (realized - fraction).abs() < 0.5,
                        "{}: realized {} wildly off target {}",
                        plan.name(),
                        realized,
                        fraction
                    );
                }
            }
        }
    }

    #[test]
    fn plans_never_fail_unoccupied_identifiers(
        bits in 4u32..9,
        xor_sel in 0u32..2,
        build_seed in 0u64..1 << 16,
        lower_seed in 0u64..1 << 16,
        fraction in 0.05f64..0.6,
        knob in 0u32..64,
    ) {
        let xor = xor_sel == 1;
        let overlay = build_overlay(bits, true, xor, build_seed);
        let population = overlay.population().clone();
        let occupied = population.node_count();
        for plan in plan_catalogue(fraction, knob) {
            let mask = plan.lower(overlay.as_ref(), lower_seed);
            prop_assert_eq!(mask.population_size(), occupied);
            prop_assert_eq!(
                mask.alive_count() + mask.failed_count(),
                occupied,
                "{} touched unoccupied identifiers",
                plan.name()
            );
            for node in mask.alive_nodes() {
                prop_assert!(population.contains(node));
            }
        }
    }
}
