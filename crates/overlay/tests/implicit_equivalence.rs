//! Cross-backend equivalence properties: the implicit (generative) backend
//! must be **bit-identical** to the materialized build it replays.
//!
//! For every geometry over full populations at `2^10`–`2^16`, with intact
//! (`q = 0`) and heavily failed (`q = 0.3`) masks, the properties assert
//! that
//!
//! * `ImplicitOverlay::table_of` regenerates exactly the rows the
//!   materialized builder produced from the same construction stream,
//! * `ImplicitKernel::next_hop` makes exactly the greedy decision of the
//!   materialized `RoutingKernel::next_hop`,
//! * `ImplicitKernel::route` returns exactly the materialized
//!   [`RouteOutcome`] — hop counts, `Dropped { stuck_at }` nodes and
//!   `HopLimitExceeded` under artificially tight limits included, and
//! * `ImplicitKernel::route_batch` reproduces the lockstep frontier's
//!   per-pair outcomes verbatim.
//!
//! This is the contract that lets every consumer — `dht_sim`'s trial
//! engine, the scenario server, the batch runner — switch backends without
//! perturbing a single committed measurement.

use dht_id::NodeId;
use dht_overlay::{
    default_route_hop_limit, CanOverlay, ChordOverlay, ChordVariant, FailureMask, ImplicitOverlay,
    KademliaOverlay, Overlay, PlaxtonOverlay, RouteBatch, SymphonyOverlay,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Asserts every observable of the implicit backend against the
/// materialized twin built from the same construction stream.
fn assert_backends_equivalent<M, S>(
    materialized: &M,
    implicit: &ImplicitOverlay<S>,
    q: f64,
    mask_seed: u64,
    pair_seed: u64,
) -> Result<(), TestCaseError>
where
    M: Overlay + ?Sized,
    S: dht_overlay::GeometryStrategy,
{
    let space = materialized.key_space();
    let kernel = materialized
        .kernel()
        .expect("all five geometries export a kernel rule");
    let generative = implicit.routing_kernel();
    let mut cache = generative.row_cache();

    // Tables: every regenerated row equals the materialized row.
    let mut rng = ChaCha8Rng::seed_from_u64(pair_seed ^ 0x7461_626C);
    for _ in 0..64 {
        let node = space.random_id(&mut rng);
        prop_assert_eq!(
            implicit.table_of(node),
            materialized.neighbors(node).to_vec(),
            "table diverges at {}",
            node
        );
    }

    let mask = FailureMask::sample(space, q, &mut ChaCha8Rng::seed_from_u64(mask_seed));
    let lowered = kernel.compile_mask(&mask);
    let lowered_implicit = generative.compile_mask(&mask);
    let limit = default_route_hop_limit(materialized);

    let mut rng = ChaCha8Rng::seed_from_u64(pair_seed);
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    for round in 0..64 {
        // Arbitrary identifiers: alive or not, equal or not — the implicit
        // path must agree on every input the materialized kernel accepts.
        let source = space.random_id(&mut rng);
        let target = space.random_id(&mut rng);
        pairs.push((source.value(), target.value()));
        prop_assert_eq!(
            generative.next_hop(&mut cache, &lowered_implicit, source, target),
            kernel.next_hop(&lowered, source, target),
            "next_hop diverges for {} -> {} (round {})",
            source,
            target,
            round
        );
        prop_assert_eq!(
            generative.route(&mut cache, &lowered_implicit, source, target, limit),
            kernel.route(&lowered, source, target, limit),
            "route outcome diverges for {} -> {} (round {})",
            source,
            target,
            round
        );
        let tight = round % 3;
        prop_assert_eq!(
            generative.route(&mut cache, &lowered_implicit, source, target, tight),
            kernel.route(&lowered, source, target, tight),
            "tight-limit outcome diverges for {} -> {} (limit {})",
            source,
            target,
            tight
        );
    }

    // Batched lockstep: per-pair outcomes are identical across backends.
    let mut batch = RouteBatch::new(16);
    let mut materialized_outcomes = Vec::new();
    kernel.route_batch(
        &mut batch,
        lowered.words(),
        &pairs,
        limit,
        &mut materialized_outcomes,
    );
    let mut implicit_outcomes = Vec::new();
    generative.route_batch(
        &mut batch,
        &mut cache,
        lowered_implicit.words(),
        &pairs,
        limit,
        &mut implicit_outcomes,
    );
    prop_assert_eq!(materialized_outcomes, implicit_outcomes);

    // The scalar Overlay::next_hop of the implicit overlay agrees too (it
    // regenerates the row and asks the strategy directly).
    let mut rng = ChaCha8Rng::seed_from_u64(pair_seed ^ 0x6E68_6F70);
    for _ in 0..16 {
        let current = space.random_id(&mut rng);
        let target = space.random_id(&mut rng);
        let scalar: Option<NodeId> = implicit.next_hop(current, target, &mask);
        prop_assert_eq!(
            scalar,
            materialized.next_hop(current, target, &mask),
            "scalar next_hop diverges for {} -> {}",
            current,
            target
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn chord_backends_are_bit_identical(
        bits in 10u32..=16,
        seed in 0u64..1 << 20,
        q in prop_oneof![Just(0.0f64), Just(0.3)],
        deterministic in prop_oneof![Just(true), Just(false)],
    ) {
        let variant = if deterministic {
            ChordVariant::Deterministic
        } else {
            ChordVariant::Randomized
        };
        let materialized = match variant {
            ChordVariant::Deterministic => ChordOverlay::build(bits, variant).unwrap(),
            ChordVariant::Randomized => ChordOverlay::build_randomized(
                bits,
                &mut ChaCha8Rng::seed_from_u64(seed),
            )
            .unwrap(),
        };
        let implicit = ImplicitOverlay::ring(bits, variant, seed).unwrap();
        assert_backends_equivalent(&materialized, &implicit, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn kademlia_backends_are_bit_identical(
        bits in 10u32..=16,
        seed in 0u64..1 << 20,
        q in prop_oneof![Just(0.0f64), Just(0.3)],
    ) {
        let materialized =
            KademliaOverlay::build(bits, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        let implicit = ImplicitOverlay::xor(bits, seed).unwrap();
        assert_backends_equivalent(&materialized, &implicit, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn plaxton_backends_are_bit_identical(
        bits in 10u32..=16,
        seed in 0u64..1 << 20,
        q in prop_oneof![Just(0.0f64), Just(0.3)],
    ) {
        let materialized =
            PlaxtonOverlay::build(bits, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        let implicit = ImplicitOverlay::tree(bits, seed).unwrap();
        assert_backends_equivalent(&materialized, &implicit, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn can_backends_are_bit_identical(
        bits in 10u32..=16,
        seed in 0u64..1 << 20,
        q in prop_oneof![Just(0.0f64), Just(0.3)],
    ) {
        let materialized = CanOverlay::build(bits).unwrap();
        let implicit = ImplicitOverlay::hypercube(bits).unwrap();
        assert_backends_equivalent(&materialized, &implicit, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn symphony_backends_are_bit_identical(
        bits in 10u32..=16,
        seed in 0u64..1 << 20,
        q in prop_oneof![Just(0.0f64), Just(0.3)],
        kn in 1u32..3,
        ks in 1u32..3,
    ) {
        let materialized = SymphonyOverlay::build(
            bits,
            kn,
            ks,
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
        .unwrap();
        let implicit = ImplicitOverlay::symphony(bits, kn, ks, seed).unwrap();
        assert_backends_equivalent(&materialized, &implicit, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }
}
