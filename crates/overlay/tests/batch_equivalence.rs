//! Batch equivalence properties: the lockstep batched router must be
//! **bit-identical per lookup** to the per-route kernel path.
//!
//! For every geometry, over random full *and* sparse populations, random
//! failure masks, random (not necessarily occupied or alive) endpoint pairs
//! and random hop limits, the properties route the same pair slice through
//! [`RoutingKernel::route_values`] one lookup at a time and through
//! [`RoutingKernel::route_batch`] in lockstep, then compare the outcome
//! vectors element for element. Batch widths range from 1 (every lane
//! retires and refills every pass) past the frontier size (the whole slice
//! fits in one admission wave), so mid-batch retirement, `swap_remove`
//! compaction and refill are all exercised, as is a frontier narrower than
//! the batch width.
//!
//! Both batch entry points are covered: `route_batch` over pre-resolved
//! alive words and `route_batch_masked` over a lowered [`KernelMask`].
//!
//! This is the contract that lets `dht_sim`'s trial engine and the live
//! churn drain route whole shards through the batch path without perturbing
//! any committed measurement.

use dht_id::{KeySpace, Population};
use dht_overlay::{
    default_route_hop_limit, CanOverlay, ChordOverlay, ChordVariant, FailureMask, KademliaOverlay,
    Overlay, PlaxtonOverlay, RouteBatch, RouteOutcome, SymphonyOverlay,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Draws the population for a case: full, or a uniform sample of the given
/// occupancy (at least four nodes so every geometry can be built).
fn population(space: KeySpace, occupancy: f64, seed: u64) -> Population {
    if occupancy >= 1.0 {
        return Population::full(space);
    }
    let count = ((space.population() as f64 * occupancy) as u64).max(4);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0070_6F70);
    Population::sample_uniform(space, count, &mut rng).expect("valid sparse size")
}

/// Routes the same random pair slice through the scalar kernel path and the
/// lockstep batch (both entry points) and asserts every outcome agrees.
fn assert_batch_equivalent<O>(
    overlay: &O,
    q: f64,
    mask_seed: u64,
    pair_seed: u64,
) -> Result<(), TestCaseError>
where
    O: Overlay + ?Sized,
{
    // Width 1 retires and refills every pass; 3 keeps compaction churning;
    // 256 swallows the whole slice in one admission wave (a frontier
    // narrower than the batch). Pair count 0 is the degenerate no-op, 17 is
    // below every non-unit width, 200 forces mid-batch refill.
    const WIDTHS: [usize; 4] = [1, 3, 64, 256];
    const PAIR_COUNTS: [usize; 3] = [0, 17, 200];
    let width = WIDTHS[(pair_seed % 4) as usize];
    let pair_count = PAIR_COUNTS[((pair_seed >> 2) % 3) as usize];
    let kernel = overlay
        .kernel()
        .expect("all five geometries export a kernel rule");
    let space = overlay.key_space();
    let mask = FailureMask::sample_over(
        overlay.population(),
        q,
        &mut ChaCha8Rng::seed_from_u64(mask_seed),
    );
    let lowered = kernel.compile_mask(&mask);
    let words = lowered.words();
    let mut rng = ChaCha8Rng::seed_from_u64(pair_seed);

    // Arbitrary in-space identifiers: occupied or not, alive or not, equal
    // or not — the batch must agree wherever the scalar path has an answer.
    let pairs: Vec<(u64, u64)> = (0..pair_count)
        .map(|_| {
            (
                space.random_id(&mut rng).value(),
                space.random_id(&mut rng).value(),
            )
        })
        .collect();

    let mut batch = RouteBatch::new(width);
    let mut outcomes: Vec<RouteOutcome> = Vec::new();
    // Random limits down to 0 force HopLimitExceeded retirement mid-pass;
    // the default limit exercises full Delivered/Dropped trajectories.
    let limits = [default_route_hop_limit(overlay), rng.gen_range(0..4)];
    for limit in limits {
        let scalar: Vec<RouteOutcome> = pairs
            .iter()
            .map(|&(source, target)| kernel.route_values(&lowered, source, target, limit))
            .collect();

        kernel.route_batch(&mut batch, words, &pairs, limit, &mut outcomes);
        prop_assert_eq!(batch.in_flight(), 0, "batch must drain completely");
        prop_assert_eq!(outcomes.len(), pairs.len());
        for (index, (batched, reference)) in outcomes.iter().zip(scalar.iter()).enumerate() {
            prop_assert_eq!(
                batched,
                reference,
                "outcome diverges at slot {} ({} -> {}, width {}, limit {})",
                index,
                pairs[index].0,
                pairs[index].1,
                width,
                limit
            );
        }

        kernel.route_batch_masked(&mut batch, &lowered, &pairs, limit, &mut outcomes);
        prop_assert_eq!(
            &outcomes,
            &scalar,
            "masked entry point diverges (width {}, limit {})",
            width,
            limit
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn chord_batches_are_bit_identical(
        bits in 4u32..9,
        occupancy in prop_oneof![Just(1.0f64), Just(0.25), Just(0.6)],
        seed in 0u64..1 << 20,
        q in 0.0f64..0.7,
        deterministic in prop_oneof![Just(true), Just(false)],
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = population(space, occupancy, seed);
        let variant = if deterministic {
            ChordVariant::Deterministic
        } else {
            ChordVariant::Randomized
        };
        let overlay = ChordOverlay::build_over(
            population,
            variant,
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
        .unwrap();
        assert_batch_equivalent(&overlay, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn kademlia_batches_are_bit_identical(
        bits in 4u32..9,
        occupancy in prop_oneof![Just(1.0f64), Just(0.25), Just(0.6)],
        seed in 0u64..1 << 20,
        q in 0.0f64..0.7,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = population(space, occupancy, seed);
        let overlay =
            KademliaOverlay::build_over(population, &mut ChaCha8Rng::seed_from_u64(seed))
                .unwrap();
        assert_batch_equivalent(&overlay, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn plaxton_batches_are_bit_identical(
        bits in 4u32..9,
        occupancy in prop_oneof![Just(1.0f64), Just(0.25), Just(0.6)],
        seed in 0u64..1 << 20,
        q in 0.0f64..0.7,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = population(space, occupancy, seed);
        let overlay =
            PlaxtonOverlay::build_over(population, &mut ChaCha8Rng::seed_from_u64(seed))
                .unwrap();
        assert_batch_equivalent(&overlay, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn can_batches_are_bit_identical(
        bits in 4u32..9,
        occupancy in prop_oneof![Just(1.0f64), Just(0.25), Just(0.6)],
        seed in 0u64..1 << 20,
        q in 0.0f64..0.7,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = population(space, occupancy, seed);
        // Sparse hypercubes may be unroutable even intact — exactly the sort
        // of Dropped outcome the batch must reproduce verbatim.
        let overlay = CanOverlay::build_over(population).unwrap();
        assert_batch_equivalent(&overlay, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn symphony_batches_are_bit_identical(
        bits in 4u32..9,
        occupancy in prop_oneof![Just(1.0f64), Just(0.25), Just(0.6)],
        seed in 0u64..1 << 20,
        q in 0.0f64..0.7,
        kn in 1u32..3,
        ks in 1u32..3,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = population(space, occupancy, seed);
        let overlay = SymphonyOverlay::build_over(
            population,
            kn,
            ks,
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
        .unwrap();
        assert_batch_equivalent(&overlay, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }
}
