//! Property suite: incremental live-churn repair is equivalent to rebuild.
//!
//! After **any** random join/leave sequence, the delta-patched
//! [`LiveOverlay`] — arena rows rewritten in place, kernel plan repaired rank
//! by rank, reverse edge index maintained incrementally — must be
//! entry-for-entry identical to building the overlay from scratch at the
//! final liveness: same arena rows, same compiled plan, same state digest.
//! One property per geometry (both Chord variants), each driven over full
//! *and* sparse populations, with unoccupied identifiers thrown in to pin
//! the no-op paths, plus a routing spot-check that the repaired kernel still
//! agrees with the scalar reference on the churned state.
//!
//! The number of cases per property honours the `PROPTEST_CASES` environment
//! variable (the vendored runner applies it as an override; CI raises it,
//! the local default keeps the suite fast).

use dht_id::{KeySpace, Population};
use dht_overlay::can::CanStrategy;
use dht_overlay::chord::ChordStrategy;
use dht_overlay::kademlia::KademliaStrategy;
use dht_overlay::plaxton::PlaxtonStrategy;
use dht_overlay::symphony::SymphonyStrategy;
use dht_overlay::{
    default_route_hop_limit, route_with_limit, ChordVariant, GeometryStrategy, LiveOverlay, Overlay,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Full population for even `selector`, a half-occupancy uniform sample
/// otherwise.
fn population_for(bits: u32, sparse: bool, pop_seed: u64) -> Population {
    let space = KeySpace::new(bits).unwrap();
    if sparse {
        let occupied = (space.population() / 2).max(2);
        Population::sample_uniform(space, occupied, &mut ChaCha8Rng::seed_from_u64(pop_seed))
            .unwrap()
    } else {
        Population::full(space)
    }
}

/// Asserts the delta-patched `overlay` equals its from-scratch rebuild,
/// entry for entry.
fn assert_matches_rebuild<S: GeometryStrategy + Clone>(
    overlay: &LiveOverlay<S>,
    context: &str,
) -> Result<(), TestCaseError> {
    let rebuilt = overlay.rebuilt();
    for rank in 0..overlay.arena().node_count() {
        prop_assert_eq!(
            overlay.arena().neighbors(rank),
            rebuilt.arena().neighbors(rank),
            "{}: arena row {} diverged from the canonical state",
            context,
            rank
        );
    }
    prop_assert!(
        overlay.routing_kernel().plan_eq(rebuilt.routing_kernel()),
        "{}: repaired kernel plan diverged from a fresh compile",
        context
    );
    prop_assert_eq!(
        overlay.state_digest(),
        rebuilt.state_digest(),
        "{}: state digest diverged",
        context
    );
    Ok(())
}

/// The shared property body: replay a random event sequence, check
/// equivalence at a midpoint and at the end, then spot-check that the
/// repaired kernel routes bit-identically to the scalar reference.
fn check_incremental_equivalence<S: GeometryStrategy + Clone>(
    strategy: S,
    bits: u32,
    sparse: bool,
    pop_seed: u64,
    master_seed: u64,
    event_seed: u64,
    events: usize,
) -> Result<(), TestCaseError> {
    let population = population_for(bits, sparse, pop_seed);
    let space = population.space();
    let mut overlay = LiveOverlay::build(population, strategy, master_seed).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(event_seed);
    let midpoint = events / 2;
    for step in 0..events {
        // Arbitrary identifiers: unoccupied ones exercise the no-op path,
        // repeated joins/leaves the idempotence path.
        let node = space.wrap(rng.gen_range(0..space.population()));
        if rng.gen_bool(0.5) {
            overlay.leave(node);
        } else {
            overlay.join(node);
        }
        if step + 1 == midpoint {
            assert_matches_rebuild(&overlay, "midpoint")?;
        }
    }
    assert_matches_rebuild(&overlay, "final")?;

    let limit = default_route_hop_limit(&overlay);
    for _ in 0..20 {
        let source = space.wrap(rng.gen_range(0..space.population()));
        let target = space.wrap(rng.gen_range(0..space.population()));
        if overlay.population().index_of(source).is_none()
            || overlay.population().index_of(target).is_none()
        {
            continue;
        }
        prop_assert_eq!(
            overlay.routing_kernel().route_ranked(
                overlay.rank_alive_words(),
                source.value(),
                target.value(),
                limit,
            ),
            route_with_limit(&overlay, source, target, overlay.mask(), limit),
            "kernel and scalar routes diverged on the churned state"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ring_deterministic_repair_equals_rebuild(
        bits in 4u32..8,
        sparse_sel in 0u8..2,
        pop_seed in 0u64..1 << 20,
        master_seed in 0u64..1 << 20,
        event_seed in 0u64..1 << 20,
        events in 1usize..160,
    ) {
        check_incremental_equivalence(
            ChordStrategy::new(ChordVariant::Deterministic),
            bits, sparse_sel == 1, pop_seed, master_seed, event_seed, events,
        )?;
    }

    #[test]
    fn ring_randomized_repair_equals_rebuild(
        bits in 4u32..8,
        sparse_sel in 0u8..2,
        pop_seed in 0u64..1 << 20,
        master_seed in 0u64..1 << 20,
        event_seed in 0u64..1 << 20,
        events in 1usize..160,
    ) {
        check_incremental_equivalence(
            ChordStrategy::new(ChordVariant::Randomized),
            bits, sparse_sel == 1, pop_seed, master_seed, event_seed, events,
        )?;
    }

    #[test]
    fn symphony_repair_equals_rebuild(
        bits in 4u32..8,
        sparse_sel in 0u8..2,
        pop_seed in 0u64..1 << 20,
        master_seed in 0u64..1 << 20,
        event_seed in 0u64..1 << 20,
        events in 1usize..160,
    ) {
        check_incremental_equivalence(
            SymphonyStrategy::new(2, 2),
            bits, sparse_sel == 1, pop_seed, master_seed, event_seed, events,
        )?;
    }

    #[test]
    fn xor_repair_equals_rebuild(
        bits in 4u32..8,
        sparse_sel in 0u8..2,
        pop_seed in 0u64..1 << 20,
        master_seed in 0u64..1 << 20,
        event_seed in 0u64..1 << 20,
        events in 1usize..160,
    ) {
        check_incremental_equivalence(
            KademliaStrategy,
            bits, sparse_sel == 1, pop_seed, master_seed, event_seed, events,
        )?;
    }

    #[test]
    fn tree_repair_equals_rebuild(
        bits in 4u32..8,
        sparse_sel in 0u8..2,
        pop_seed in 0u64..1 << 20,
        master_seed in 0u64..1 << 20,
        event_seed in 0u64..1 << 20,
        events in 1usize..160,
    ) {
        check_incremental_equivalence(
            PlaxtonStrategy,
            bits, sparse_sel == 1, pop_seed, master_seed, event_seed, events,
        )?;
    }

    #[test]
    fn hypercube_repair_equals_rebuild(
        bits in 4u32..8,
        sparse_sel in 0u8..2,
        pop_seed in 0u64..1 << 20,
        master_seed in 0u64..1 << 20,
        event_seed in 0u64..1 << 20,
        events in 1usize..160,
    ) {
        check_incremental_equivalence(
            CanStrategy,
            bits, sparse_sel == 1, pop_seed, master_seed, event_seed, events,
        )?;
    }
}
