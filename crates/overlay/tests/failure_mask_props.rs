//! Property tests: the packed-bitset [`FailureMask`] must be
//! behaviour-identical to the seed's `Vec<bool>` semantics.
//!
//! `Model` below is a faithful transcription of the seed implementation
//! (one `bool` per identifier, unoccupied identifiers pre-marked failed,
//! counts occupied-relative, same RNG consumption in `sample_over`). The
//! properties drive both representations through the same constructions and
//! mutations and assert every observable agrees: per-identifier reads,
//! counts, the ascending alive iterator, and the popcount rank/select pair
//! the bitset adds.

use dht_id::{KeySpace, NodeId, Population};
use dht_overlay::{select_in_word, FailureMask};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The seed's `Vec<bool>` failure mask, transcribed.
struct Model {
    space: KeySpace,
    failed: Vec<bool>,
    failed_count: u64,
    population_size: u64,
}

impl Model {
    fn none(space: KeySpace) -> Self {
        Model {
            space,
            failed: vec![false; space.population() as usize],
            failed_count: 0,
            population_size: space.population(),
        }
    }

    fn none_over(population: &Population) -> Self {
        if population.is_full() {
            return Model::none(population.space());
        }
        let space = population.space();
        let mut failed = vec![true; space.population() as usize];
        for node in population.iter_nodes() {
            failed[node.value() as usize] = false;
        }
        Model {
            space,
            failed,
            failed_count: 0,
            population_size: population.node_count(),
        }
    }

    fn sample_over<R: Rng + ?Sized>(population: &Population, q: f64, rng: &mut R) -> Self {
        let mut model = Model::none_over(population);
        for node in population.iter_nodes() {
            if rng.gen_bool(q) {
                model.failed[node.value() as usize] = true;
                model.failed_count += 1;
            }
        }
        model
    }

    fn fail_node(&mut self, node: NodeId) {
        let _ = self.kill(node);
    }

    fn kill(&mut self, node: NodeId) -> bool {
        let slot = &mut self.failed[node.value() as usize];
        if !*slot {
            *slot = true;
            self.failed_count += 1;
            true
        } else {
            false
        }
    }

    fn set_alive(&mut self, node: NodeId) -> bool {
        let slot = &mut self.failed[node.value() as usize];
        if *slot {
            *slot = false;
            self.failed_count -= 1;
            true
        } else {
            false
        }
    }

    fn alive_count(&self) -> u64 {
        self.population_size - self.failed_count
    }

    fn alive_values(&self) -> Vec<u64> {
        self.failed
            .iter()
            .enumerate()
            .filter_map(|(value, &failed)| (!failed).then_some(value as u64))
            .collect()
    }
}

/// Asserts every observable of `mask` agrees with `model`.
fn assert_equivalent(model: &Model, mask: &FailureMask) -> Result<(), TestCaseError> {
    prop_assert_eq!(model.failed_count, mask.failed_count());
    prop_assert_eq!(model.alive_count(), mask.alive_count());
    prop_assert_eq!(model.population_size, mask.population_size());
    for node in model.space.iter_ids() {
        prop_assert_eq!(
            model.failed[node.value() as usize],
            mask.is_failed(node),
            "is_failed diverges at {}",
            node
        );
    }
    let alive: Vec<u64> = mask.alive_nodes().map(|n| n.value()).collect();
    prop_assert_eq!(model.alive_values(), alive.clone());

    // The bitset's rank/select pair must walk exactly the model's alive set.
    for (rank, &value) in alive.iter().enumerate() {
        let node = model.space.wrap(value);
        prop_assert_eq!(mask.alive_rank(node), Some(rank as u64));
        prop_assert_eq!(mask.select_alive(rank as u64), Some(node));
    }
    prop_assert_eq!(mask.select_alive(mask.alive_count()), None);

    // Word-level reads cover the space exactly once, in order.
    let mut from_words = Vec::new();
    for (index, word) in mask.alive_words() {
        for bit in 0..64u64 {
            if word & (1 << bit) != 0 {
                from_words.push(index as u64 * 64 + bit);
            }
        }
    }
    prop_assert_eq!(alive, from_words);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sampled_full_masks_match_the_seed_semantics(
        bits in 1u32..10,
        seed in 0u64..1 << 20,
        q in 0.0f64..1.0,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = Population::full(space);
        // Identical RNG consumption: the same seed must produce the same
        // pattern in both representations.
        let model = Model::sample_over(&population, q, &mut ChaCha8Rng::seed_from_u64(seed));
        let mask = FailureMask::sample(space, q, &mut ChaCha8Rng::seed_from_u64(seed));
        assert_equivalent(&model, &mask)?;
    }

    #[test]
    fn sampled_sparse_masks_match_the_seed_semantics(
        bits in 3u32..10,
        occupancy_percent in 10u64..100,
        seed in 0u64..1 << 20,
        q in 0.0f64..1.0,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let occupied = (space.population() * occupancy_percent / 100).max(2);
        let population = Population::sample_uniform(
            space,
            occupied,
            &mut ChaCha8Rng::seed_from_u64(seed ^ 0xBEEF),
        )
        .unwrap();
        let model = Model::sample_over(&population, q, &mut ChaCha8Rng::seed_from_u64(seed));
        let mask = FailureMask::sample_over(&population, q, &mut ChaCha8Rng::seed_from_u64(seed));
        assert_equivalent(&model, &mask)?;
    }

    #[test]
    fn targeted_mutations_match_the_seed_semantics(
        bits in 2u32..9,
        seed in 0u64..1 << 20,
        kills in 0usize..64,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = Population::sample_uniform(
            space,
            (space.population() / 2).max(2),
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
        .unwrap();
        let mut model = Model::none_over(&population);
        let mut mask = FailureMask::none_over(&population);
        // Fail arbitrary identifiers — occupied or not, repeated or not; the
        // unoccupied and duplicate cases must stay counted no-ops.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF00D);
        for _ in 0..kills {
            let node = space.random_id(&mut rng);
            model.fail_node(node);
            mask.fail_node(node);
        }
        assert_equivalent(&model, &mask)?;
    }

    #[test]
    fn kill_and_set_alive_sequences_match_the_seed_semantics(
        bits in 2u32..9,
        seed in 0u64..1 << 20,
        flips in 1usize..128,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = Population::sample_uniform(
            space,
            (space.population() / 2).max(2),
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
        .unwrap();
        let mut model = Model::none_over(&population);
        let mut mask = FailureMask::none_over(&population);
        // Random churn over *occupied* identifiers (the `set_alive` caller
        // contract): kills and revivals interleave, repeats included, and
        // both representations must report the same flip outcome while the
        // popcount rank/select invariants keep holding.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD1CE);
        for _ in 0..flips {
            let rank = rng.gen_range(0..population.node_count());
            let node = population.node_at(rank);
            if rng.gen_bool(0.5) {
                prop_assert_eq!(model.kill(node), mask.kill(node));
            } else {
                prop_assert_eq!(model.set_alive(node), mask.set_alive(node));
            }
        }
        assert_equivalent(&model, &mask)?;
    }

    #[test]
    fn select_in_word_is_the_rank_inverse_on_random_words(word in 1u64..=u64::MAX) {
        let mut rank = 0u32;
        for bit in 0..64u32 {
            if word & (1u64 << bit) != 0 {
                prop_assert_eq!(select_in_word(word, rank), bit);
                rank += 1;
            }
        }
    }

    #[test]
    fn rank_indexed_probes_match_identifier_probes_on_full_masks(
        bits in 1u32..10,
        seed in 0u64..1 << 20,
        q in 0.0f64..1.0,
    ) {
        // The kernel's fast path: over a full population a node's occupied
        // rank is its identifier value, so `is_alive_rank(v)` must agree
        // with `is_alive(NodeId(v))` bit for bit.
        let space = KeySpace::new(bits).unwrap();
        let mask = FailureMask::sample(space, q, &mut ChaCha8Rng::seed_from_u64(seed));
        for node in space.iter_ids() {
            prop_assert_eq!(
                mask.is_alive_rank(node.value() as u32),
                mask.is_alive(node),
                "rank probe diverges at {}",
                node
            );
        }
    }
}
