//! Kernel equivalence properties: the compiled rank-space routing kernel
//! must be **bit-identical** to the scalar routing path.
//!
//! For every geometry, over random full *and* sparse populations, random
//! failure masks and random (not necessarily occupied or alive) endpoint
//! pairs, the properties assert that
//!
//! * `RoutingKernel::next_hop` makes exactly the greedy decision of
//!   `Overlay::next_hop`, and
//! * `RoutingKernel::route` returns exactly the [`RouteOutcome`] of
//!   `route_with_limit` — including `Dropped { stuck_at }` nodes, hop counts
//!   and `HopLimitExceeded` under artificially tight limits.
//!
//! This is the contract that lets `dht_sim`'s trial engine route through the
//! kernel without perturbing any committed measurement or RNG stream.

use dht_id::{KeySpace, Population};
use dht_overlay::{
    default_route_hop_limit, route_with_limit, CanOverlay, ChordOverlay, ChordVariant, FailureMask,
    KademliaOverlay, Overlay, PlaxtonOverlay, RouteOutcome, SymphonyOverlay,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Draws the population for a case: full, or a uniform sample of the given
/// occupancy (at least four nodes so every geometry can be built).
fn population(space: KeySpace, occupancy: f64, seed: u64) -> Population {
    if occupancy >= 1.0 {
        return Population::full(space);
    }
    let count = ((space.population() as f64 * occupancy) as u64).max(4);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0070_6F70);
    Population::sample_uniform(space, count, &mut rng).expect("valid sparse size")
}

/// Routes and single-steps a batch of random pairs through both paths and
/// asserts every observable agrees.
fn assert_kernel_equivalent<O>(
    overlay: &O,
    q: f64,
    mask_seed: u64,
    pair_seed: u64,
) -> Result<(), TestCaseError>
where
    O: Overlay + ?Sized,
{
    let kernel = overlay
        .kernel()
        .expect("all five geometries export a kernel rule");
    let space = overlay.key_space();
    let mask = FailureMask::sample_over(
        overlay.population(),
        q,
        &mut ChaCha8Rng::seed_from_u64(mask_seed),
    );
    let lowered = kernel.compile_mask(&mask);
    let limit = default_route_hop_limit(overlay);
    let mut rng = ChaCha8Rng::seed_from_u64(pair_seed);
    for round in 0..50 {
        // Arbitrary identifiers: occupied or not, alive or not, equal or not
        // — the kernel must agree on every input the scalar path accepts.
        let source = space.random_id(&mut rng);
        let target = space.random_id(&mut rng);
        prop_assert_eq!(
            kernel.next_hop(&lowered, source, target),
            overlay.next_hop(source, target, &mask),
            "next_hop diverges for {} -> {} (round {})",
            source,
            target,
            round
        );
        prop_assert_eq!(
            kernel.route(&lowered, source, target, limit),
            route_with_limit(overlay, source, target, &mask, limit),
            "route outcome diverges for {} -> {} (round {})",
            source,
            target,
            round
        );
        // A tight limit must trip HopLimitExceeded at the same instant.
        let tight = round % 3;
        prop_assert_eq!(
            kernel.route(&lowered, source, target, tight),
            route_with_limit(overlay, source, target, &mask, tight),
            "tight-limit outcome diverges for {} -> {} (limit {})",
            source,
            target,
            tight
        );
    }
    // Exhaustive delivery check on a no-failure mask: hop counts must match
    // pairwise even where the random masks above never dropped anything.
    let none = FailureMask::none_over(overlay.population());
    let lowered_none = kernel.compile_mask(&none);
    for _ in 0..20 {
        let source = overlay.population().random_node(&mut rng);
        let target = overlay.population().random_node(&mut rng);
        let scalar = route_with_limit(overlay, source, target, &none, limit);
        prop_assert_eq!(
            kernel.route(&lowered_none, source, target, limit),
            scalar,
            "intact outcome diverges for {} -> {}",
            source,
            target
        );
        if let RouteOutcome::Delivered { hops } = scalar {
            prop_assert!(u64::from(hops) <= overlay.population().node_count());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn chord_kernel_is_bit_identical(
        bits in 4u32..9,
        occupancy in prop_oneof![Just(1.0f64), Just(0.25), Just(0.6)],
        seed in 0u64..1 << 20,
        q in 0.0f64..0.7,
        deterministic in prop_oneof![Just(true), Just(false)],
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = population(space, occupancy, seed);
        let variant = if deterministic {
            ChordVariant::Deterministic
        } else {
            ChordVariant::Randomized
        };
        let overlay = ChordOverlay::build_over(
            population,
            variant,
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
        .unwrap();
        assert_kernel_equivalent(&overlay, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn kademlia_kernel_is_bit_identical(
        bits in 4u32..9,
        occupancy in prop_oneof![Just(1.0f64), Just(0.25), Just(0.6)],
        seed in 0u64..1 << 20,
        q in 0.0f64..0.7,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = population(space, occupancy, seed);
        let overlay =
            KademliaOverlay::build_over(population, &mut ChaCha8Rng::seed_from_u64(seed))
                .unwrap();
        assert_kernel_equivalent(&overlay, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn plaxton_kernel_is_bit_identical(
        bits in 4u32..9,
        occupancy in prop_oneof![Just(1.0f64), Just(0.25), Just(0.6)],
        seed in 0u64..1 << 20,
        q in 0.0f64..0.7,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = population(space, occupancy, seed);
        let overlay =
            PlaxtonOverlay::build_over(population, &mut ChaCha8Rng::seed_from_u64(seed))
                .unwrap();
        assert_kernel_equivalent(&overlay, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn can_kernel_is_bit_identical(
        bits in 4u32..9,
        occupancy in prop_oneof![Just(1.0f64), Just(0.25), Just(0.6)],
        seed in 0u64..1 << 20,
        q in 0.0f64..0.7,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = population(space, occupancy, seed);
        // Sparse hypercubes may be unroutable even intact — exactly the sort
        // of Dropped outcome the kernel must reproduce verbatim.
        let overlay = CanOverlay::build_over(population).unwrap();
        assert_kernel_equivalent(&overlay, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }

    #[test]
    fn symphony_kernel_is_bit_identical(
        bits in 4u32..9,
        occupancy in prop_oneof![Just(1.0f64), Just(0.25), Just(0.6)],
        seed in 0u64..1 << 20,
        q in 0.0f64..0.7,
        kn in 1u32..3,
        ks in 1u32..3,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let population = population(space, occupancy, seed);
        let overlay = SymphonyOverlay::build_over(
            population,
            kn,
            ks,
            &mut ChaCha8Rng::seed_from_u64(seed),
        )
        .unwrap();
        assert_kernel_equivalent(&overlay, q, seed ^ 0xA5, seed ^ 0x5A)?;
    }
}
