//! The generic overlay shared by all five routing geometries.

use crate::arena::RoutingArena;
use crate::failure::FailureMask;
use crate::kernel::{KernelRule, RoutingKernel};
use crate::traits::{validate_population, Overlay, OverlayError};
use dht_id::{NodeId, Population};
use rand::Rng;
use std::sync::{Arc, OnceLock};

/// One routing geometry: how tables are built and how the greedy hop is
/// chosen.
///
/// The five geometry modules of this crate each provide one implementation
/// (e.g. [`crate::chord::ChordStrategy`]); [`GeometryOverlay`] supplies
/// everything else — CSR storage, population handling, validation and the
/// [`Overlay`] plumbing — exactly once.
///
/// Strategies are `Send + Sync` (like [`Overlay`] itself): they are immutable
/// after construction and queried concurrently by batch routing drivers.
pub trait GeometryStrategy: Send + Sync {
    /// Short name of the routing geometry (matches the analytical crate),
    /// e.g. `"xor"`.
    fn geometry_name(&self) -> &'static str;

    /// Expected routing-table length per node, used to pre-size the arena.
    fn table_len_hint(&self, population: &Population) -> usize;

    /// Appends the routing-table entries of `node` to `table`, choosing
    /// targets among the occupied identifiers of `population`.
    ///
    /// For a full population implementations must reproduce the paper's
    /// construction (and its RNG stream) exactly; for a sparse one they remap
    /// each conceptual target onto the occupied set (successor, bucket
    /// sampling, …). Positional tables (tree levels, ring fingers) push the
    /// node itself as a placeholder for an unsatisfiable slot — `next_hop`
    /// implementations treat a self-entry as absent.
    fn build_table<R: Rng + ?Sized>(
        &self,
        population: &Population,
        node: NodeId,
        rng: &mut R,
        table: &mut Vec<NodeId>,
    );

    /// The geometry's greedy forwarding rule over the `neighbors` table of
    /// `current`, restricted to alive nodes.
    fn next_hop(
        &self,
        neighbors: &[NodeId],
        current: NodeId,
        target: NodeId,
        alive: &FailureMask,
    ) -> Option<NodeId>;

    /// The hop-key rule the compiled routing kernel lowers this geometry
    /// with, or `None` when the geometry cannot be compiled (scalar routing
    /// only — the default).
    ///
    /// A strategy that exports a rule asserts that the rule's dispatch over
    /// its precomputed hop keys reproduces [`GeometryStrategy::next_hop`]
    /// *exactly* — the kernel equivalence suite holds every geometry to
    /// bit-identical [`crate::RouteOutcome`]s.
    fn kernel_rule(&self) -> Option<KernelRule> {
        None
    }

    /// The exact number of 32-bit RNG words [`GeometryStrategy::build_table`]
    /// consumes per node, when that count is a constant — the contract the
    /// implicit backend ([`crate::ImplicitOverlay`]) is built on.
    ///
    /// During a materialized build every node's table is drawn from one
    /// shared sequential stream. When the per-node draw count is fixed, the
    /// stream offset of rank `r` is simply `r * words`, so any single row can
    /// be regenerated bit-identically by seeking a counter-mode RNG — no
    /// table ever needs to stay resident. Returning `Some(words)` asserts
    /// exactly that: *every* node consumes exactly `words` 32-bit words, in
    /// rank order, independent of what the draws produce. The cross-backend
    /// equivalence suite holds implementations to this bit-for-bit.
    ///
    /// The default is `None`: the geometry (or this population shape) cannot
    /// be routed implicitly. Implementations typically return `Some` only for
    /// full populations, where table construction never branches on
    /// occupancy.
    fn implicit_stream_words(&self, population: &Population) -> Option<u64> {
        let _ = population;
        None
    }

    /// Whether the geometry implements the live-churn maintenance hooks
    /// below ([`crate::LiveOverlay`] refuses strategies that do not).
    ///
    /// The default is `false`: a strategy only participates in live churn
    /// once it provides [`GeometryStrategy::build_live_table`] and
    /// [`GeometryStrategy::live_repair_candidates`] and has argued their
    /// rebuild-equivalence (the `incremental_equivalence` property suite
    /// holds every live geometry to entry-for-entry agreement with a
    /// from-scratch rebuild).
    fn supports_live(&self) -> bool {
        false
    }

    /// The fixed per-node table width of the live construction family.
    ///
    /// Live tables are fixed-width by contract (self-entries pad
    /// unsatisfiable slots) so [`crate::RoutingArena::rewrite_table`] and the
    /// kernel's in-place row repair never resize rows.
    fn live_table_width(&self, population: &Population) -> usize {
        let _ = population;
        panic!(
            "geometry `{}` does not support live churn",
            self.geometry_name()
        );
    }

    /// Builds `node`'s live routing table against the current `alive` set,
    /// appending exactly [`GeometryStrategy::live_table_width`] entries.
    ///
    /// **Purity contract:** the table must be a pure function of
    /// `(population, node, node_seed, alive)`. All randomness comes from
    /// `node_seed` alone, and every random draw must be made *before* it is
    /// resolved against the alive set (membership-independent draws), so
    /// that repairing a node after any event sequence reproduces exactly the
    /// table a from-scratch rebuild would choose. Unsatisfiable slots push
    /// `node` itself as a placeholder.
    fn build_live_table(
        &self,
        population: &Population,
        node: NodeId,
        node_seed: u64,
        alive: &FailureMask,
        table: &mut Vec<NodeId>,
    ) {
        let _ = (population, node, node_seed, alive, table);
        panic!(
            "geometry `{}` does not support live churn",
            self.geometry_name()
        );
    }

    /// Names the nodes whose tables may change when `node` (just revived,
    /// already marked alive in `alive`) joins the overlay.
    ///
    /// Two channels: `witnesses` collects alive nodes with the property that
    /// *every* table entry that should now point at `node` currently points
    /// at (or past) a witness — the repair engine dirties every owner of an
    /// in-edge to a witness. `direct` collects owners that must be recomputed
    /// unconditionally (e.g. hypercube neighbours, whose stale entries are
    /// self placeholders that no reverse edge records). Leaves need no
    /// candidates: the reverse index of the departed node's in-edges is
    /// complete by construction.
    fn live_repair_candidates(
        &self,
        population: &Population,
        node: NodeId,
        alive: &FailureMask,
        witnesses: &mut Vec<NodeId>,
        direct: &mut Vec<NodeId>,
    ) {
        let _ = (population, node, alive, witnesses, direct);
        panic!(
            "geometry `{}` does not support live churn",
            self.geometry_name()
        );
    }
}

/// An executable overlay: a [`GeometryStrategy`] plus a [`Population`] plus
/// one [`RoutingArena`] holding every routing table.
///
/// The five public overlay types ([`crate::ChordOverlay`] etc.) are thin
/// wrappers around this struct; use them unless you are adding a new
/// geometry.
///
/// # Example
///
/// ```rust
/// use dht_id::Population;
/// use dht_overlay::chord::ChordStrategy;
/// use dht_overlay::{ChordVariant, GeometryOverlay, Overlay};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let space = dht_id::KeySpace::new(8)?;
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let overlay = GeometryOverlay::build(
///     Population::full(space),
///     ChordStrategy::new(ChordVariant::Randomized),
///     &mut rng,
/// )?;
/// assert_eq!(overlay.edge_count(), 256 * 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct GeometryOverlay<S> {
    /// Shared with the compiled kernel (which needs the rank tables for
    /// value↔rank mapping) instead of cloned into it — a sparse population's
    /// dense rank table is the size of the identifier space.
    population: Arc<Population>,
    strategy: S,
    arena: RoutingArena,
    /// Lazily compiled rank-space plan (see [`crate::kernel`]); only
    /// geometries whose strategy exports a [`KernelRule`] ever initialise it.
    kernel: OnceLock<RoutingKernel>,
}

impl<S: GeometryStrategy> GeometryOverlay<S> {
    /// Builds the overlay over the occupied identifiers of `population`,
    /// drawing any construction randomness from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] if the identifier space is
    /// unsupported (see [`crate::traits::MAX_OVERLAY_BITS`], the
    /// materialized ceiling; full populations beyond it can route through
    /// [`crate::ImplicitOverlay`] instead), or
    /// [`OverlayError::InvalidParameter`] if fewer than two identifiers are
    /// occupied.
    pub fn build<R: Rng + ?Sized>(
        population: Population,
        strategy: S,
        rng: &mut R,
    ) -> Result<Self, OverlayError> {
        validate_population(&population)?;
        let nodes = population.node_count() as usize;
        let mut arena =
            RoutingArena::with_capacity(nodes, nodes * strategy.table_len_hint(&population));
        let mut table = Vec::with_capacity(strategy.table_len_hint(&population));
        for node in population.iter_nodes() {
            table.clear();
            strategy.build_table(&population, node, rng, &mut table);
            arena.push_table(&table);
        }
        Ok(GeometryOverlay {
            population: Arc::new(population),
            strategy,
            arena,
            kernel: OnceLock::new(),
        })
    }

    /// The geometry strategy driving this overlay.
    #[must_use]
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// The CSR arena holding every routing table.
    #[must_use]
    pub fn arena(&self) -> &RoutingArena {
        &self.arena
    }

    /// The compiled rank-space routing kernel, or `None` when the strategy
    /// exports no [`KernelRule`].
    ///
    /// Compilation is lazy (first call pays the O(edges) lowering) and
    /// cached, so overlays that are only built or routed scalar never spend
    /// the plan's memory. Thread-safe: concurrent first calls race on a
    /// [`OnceLock`] and agree on one plan.
    #[must_use]
    pub fn routing_kernel(&self) -> Option<&RoutingKernel> {
        let rule = self.strategy.kernel_rule()?;
        Some(
            self.kernel
                .get_or_init(|| RoutingKernel::compile(rule, &self.population, &self.arena)),
        )
    }

    /// Whether the lazy kernel has already been compiled for this overlay.
    ///
    /// Purely observational (never triggers compilation) — the serving
    /// layer's caches use it to assert that reusing an overlay across
    /// queries did not recompile the plan.
    #[must_use]
    pub fn kernel_compiled(&self) -> bool {
        self.kernel.get().is_some()
    }
}

impl<S: GeometryStrategy> Overlay for GeometryOverlay<S> {
    fn geometry_name(&self) -> &'static str {
        self.strategy.geometry_name()
    }

    fn population(&self) -> &Population {
        &self.population
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        debug_assert_eq!(
            node.bits(),
            self.population.space().bits(),
            "node belongs to a different key space"
        );
        let node = self.population.space().wrap(node.value());
        match self.population.index_of(node) {
            Some(rank) => self.arena.neighbors(rank as usize),
            None => &[],
        }
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        self.strategy
            .next_hop(self.neighbors(current), current, target, alive)
    }

    fn edge_count(&self) -> u64 {
        self.arena.entry_count()
    }

    fn kernel(&self) -> Option<&RoutingKernel> {
        self.routing_kernel()
    }

    fn resident_bytes(&self) -> usize {
        self.arena.resident_bytes() + self.kernel.get().map_or(0, RoutingKernel::plan_bytes)
    }
}

/// An RNG for construction paths that must not consume randomness
/// (deterministic Chord fingers, the hypercube). Drawing from it panics, which
/// turns an accidental draw into a loud bug instead of a silent
/// reproducibility break.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NoRandomness;

impl rand::RngCore for NoRandomness {
    fn next_u32(&mut self) -> u32 {
        panic!("deterministic overlay construction must not draw randomness");
    }

    fn next_u64(&mut self) -> u64 {
        panic!("deterministic overlay construction must not draw randomness");
    }

    fn fill_bytes(&mut self, _dest: &mut [u8]) {
        panic!("deterministic overlay construction must not draw randomness");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_id::KeySpace;

    /// A minimal strategy: every node links to its clockwise successor.
    #[derive(Debug, Clone, Copy)]
    struct SuccessorStrategy;

    impl GeometryStrategy for SuccessorStrategy {
        fn geometry_name(&self) -> &'static str {
            "successor"
        }

        fn table_len_hint(&self, _population: &Population) -> usize {
            1
        }

        fn build_table<R: Rng + ?Sized>(
            &self,
            population: &Population,
            node: NodeId,
            _rng: &mut R,
            table: &mut Vec<NodeId>,
        ) {
            table.push(population.successor(node.value().wrapping_add(1)));
        }

        fn next_hop(
            &self,
            neighbors: &[NodeId],
            current: NodeId,
            _target: NodeId,
            alive: &FailureMask,
        ) -> Option<NodeId> {
            neighbors
                .iter()
                .copied()
                .find(|&n| n != current && alive.is_alive(n))
        }
    }

    fn space(bits: u32) -> KeySpace {
        KeySpace::new(bits).unwrap()
    }

    #[test]
    fn full_population_overlay_uses_the_arena() {
        let overlay = GeometryOverlay::build(
            Population::full(space(4)),
            SuccessorStrategy,
            &mut NoRandomness,
        )
        .unwrap();
        assert_eq!(overlay.node_count(), 16);
        assert_eq!(overlay.edge_count(), 16);
        assert_eq!(overlay.arena().entry_count(), 16);
        let s = overlay.key_space();
        assert_eq!(overlay.neighbors(s.wrap(3)), &[s.wrap(4)]);
        assert_eq!(overlay.neighbors(s.wrap(15)), &[s.wrap(0)]);
    }

    #[test]
    fn sparse_population_maps_ranks_and_returns_empty_for_unoccupied() {
        let s = space(6);
        let population = Population::sparse(s, [s.wrap(5), s.wrap(40), s.wrap(9)]).unwrap();
        let overlay =
            GeometryOverlay::build(population, SuccessorStrategy, &mut NoRandomness).unwrap();
        assert_eq!(overlay.node_count(), 3);
        assert_eq!(overlay.neighbors(s.wrap(5)), &[s.wrap(9)]);
        assert_eq!(overlay.neighbors(s.wrap(40)), &[s.wrap(5)]);
        assert_eq!(overlay.neighbors(s.wrap(7)), &[] as &[NodeId]);
    }

    #[test]
    fn too_small_populations_are_rejected() {
        let s = space(6);
        let one = Population::sparse(s, [s.wrap(1)]).unwrap();
        assert!(matches!(
            GeometryOverlay::build(one, SuccessorStrategy, &mut NoRandomness),
            Err(OverlayError::InvalidParameter { .. })
        ));
    }
}
