//! Hop-by-hop routing driver shared by all overlays.

use crate::failure::FailureMask;
use crate::traits::Overlay;
use dht_id::NodeId;
use serde::{Deserialize, Serialize};

/// Outcome of routing one message under a frozen failure pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteOutcome {
    /// The message reached the target.
    Delivered {
        /// Number of hops taken (0 when source == target).
        hops: u32,
    },
    /// No alive neighbour made progress; the message was dropped.
    Dropped {
        /// Hops taken before the drop.
        hops: u32,
        /// The node holding the message when it was dropped.
        stuck_at: NodeId,
    },
    /// The source node itself had failed, so no message was ever sent.
    SourceFailed,
    /// The target node had failed; under the static model the message cannot
    /// be delivered regardless of the path taken.
    TargetFailed,
    /// The hop limit was exceeded — with strictly-greedy protocols this
    /// indicates a protocol-implementation bug rather than a routing failure,
    /// and the integration tests assert it never occurs.
    HopLimitExceeded {
        /// The configured hop limit.
        limit: u32,
    },
}

impl RouteOutcome {
    /// Returns `true` for [`RouteOutcome::Delivered`].
    #[must_use]
    pub fn is_delivered(&self) -> bool {
        matches!(self, RouteOutcome::Delivered { .. })
    }

    /// Number of hops taken, if the message was delivered.
    #[must_use]
    pub fn hops(&self) -> Option<u32> {
        match self {
            RouteOutcome::Delivered { hops } => Some(*hops),
            _ => None,
        }
    }
}

/// Default hop-limit multiplier: greedy protocols route in at most `d` phases
/// but may take suboptimal hops inside each phase (Symphony in particular), so
/// the driver allows a generous multiple of the population size's bit length.
fn default_hop_limit(bits: u32) -> u32 {
    // Symphony needs O(log^2 N / k_s) hops in expectation; 64·d covers every
    // realistic run at the sizes an overlay can materialise.
    64 * bits.max(1)
}

/// Routes a message from `source` to `target` under `mask` with the default
/// hop limit.
///
/// See [`route_with_limit`] for details.
#[must_use]
pub fn route<O>(overlay: &O, source: NodeId, target: NodeId, mask: &FailureMask) -> RouteOutcome
where
    O: Overlay + ?Sized,
{
    route_with_limit(
        overlay,
        source,
        target,
        mask,
        default_hop_limit(overlay.key_space().bits()),
    )
}

/// Routes a message from `source` to `target` under `mask`, giving up after
/// `hop_limit` hops.
///
/// The driver repeatedly asks the overlay for its greedy next hop among alive
/// neighbours. There is no backtracking: the first time the overlay returns
/// `None` the message is dropped, exactly as in the paper's model.
///
/// # Panics
///
/// Panics if `source` or `target` do not belong to the overlay's key space.
#[must_use]
pub fn route_with_limit<O>(
    overlay: &O,
    source: NodeId,
    target: NodeId,
    mask: &FailureMask,
    hop_limit: u32,
) -> RouteOutcome
where
    O: Overlay + ?Sized,
{
    let space = overlay.key_space();
    assert_eq!(
        source.bits(),
        space.bits(),
        "source is from a different key space"
    );
    assert_eq!(
        target.bits(),
        space.bits(),
        "target is from a different key space"
    );

    if mask.is_failed(source) {
        return RouteOutcome::SourceFailed;
    }
    if mask.is_failed(target) {
        return RouteOutcome::TargetFailed;
    }
    let mut current = source;
    let mut hops = 0u32;
    while current != target {
        if hops >= hop_limit {
            return RouteOutcome::HopLimitExceeded { limit: hop_limit };
        }
        match overlay.next_hop(current, target, mask) {
            Some(next) => {
                debug_assert!(
                    mask.is_alive(next),
                    "overlay {} forwarded to a failed node",
                    overlay.geometry_name()
                );
                current = next;
                hops += 1;
            }
            None => {
                return RouteOutcome::Dropped {
                    hops,
                    stuck_at: current,
                }
            }
        }
    }
    RouteOutcome::Delivered { hops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::RoutingArena;
    use dht_id::{KeySpace, Population};

    /// A toy line overlay: node v's only neighbour is v+1. Useful to exercise
    /// the driver without pulling in a real geometry.
    struct LineOverlay {
        population: Population,
        arena: RoutingArena,
    }

    impl LineOverlay {
        fn new(bits: u32) -> Self {
            let space = KeySpace::new(bits).unwrap();
            let population = Population::full(space);
            let mut arena = RoutingArena::new();
            for node in population.iter_nodes() {
                if node.value() < space.max_value() {
                    arena.push_table(&[space.wrap(node.value() + 1)]);
                } else {
                    arena.push_table(&[]);
                }
            }
            LineOverlay { population, arena }
        }

        fn space(&self) -> KeySpace {
            self.population.space()
        }
    }

    impl Overlay for LineOverlay {
        fn geometry_name(&self) -> &'static str {
            "line"
        }
        fn population(&self) -> &Population {
            &self.population
        }
        fn neighbors(&self, node: NodeId) -> &[NodeId] {
            self.arena.neighbors(node.value() as usize)
        }
        fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
            self.neighbors(current)
                .iter()
                .copied()
                .find(|&n| alive.is_alive(n) && n.value() <= target.value())
        }
    }

    #[test]
    fn delivers_along_the_line() {
        let overlay = LineOverlay::new(4);
        let mask = FailureMask::none(overlay.key_space());
        let outcome = route(
            &overlay,
            overlay.space().wrap(2),
            overlay.space().wrap(9),
            &mask,
        );
        assert_eq!(outcome, RouteOutcome::Delivered { hops: 7 });
        assert!(outcome.is_delivered());
        assert_eq!(outcome.hops(), Some(7));
    }

    #[test]
    fn self_route_takes_zero_hops() {
        let overlay = LineOverlay::new(4);
        let mask = FailureMask::none(overlay.key_space());
        let node = overlay.space().wrap(5);
        assert_eq!(
            route(&overlay, node, node, &mask),
            RouteOutcome::Delivered { hops: 0 }
        );
    }

    #[test]
    fn source_and_target_failures_are_reported() {
        let overlay = LineOverlay::new(4);
        let space = overlay.key_space();
        let mask = FailureMask::from_failed_nodes(space, [space.wrap(3), space.wrap(12)]);
        assert_eq!(
            route(&overlay, space.wrap(3), space.wrap(9), &mask),
            RouteOutcome::SourceFailed
        );
        assert_eq!(
            route(&overlay, space.wrap(1), space.wrap(12), &mask),
            RouteOutcome::TargetFailed
        );
    }

    #[test]
    fn drop_reports_the_stuck_node() {
        let overlay = LineOverlay::new(4);
        let space = overlay.key_space();
        // Failing node 6 cuts every path from below 6 to above 6.
        let mask = FailureMask::from_failed_nodes(space, [space.wrap(6)]);
        match route(&overlay, space.wrap(2), space.wrap(10), &mask) {
            RouteOutcome::Dropped { hops, stuck_at } => {
                assert_eq!(stuck_at, space.wrap(5));
                assert_eq!(hops, 3);
            }
            other => panic!("expected a drop, got {other:?}"),
        }
    }

    #[test]
    fn hop_limit_is_enforced() {
        let overlay = LineOverlay::new(4);
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        assert_eq!(
            route_with_limit(&overlay, space.wrap(0), space.wrap(15), &mask, 5),
            RouteOutcome::HopLimitExceeded { limit: 5 }
        );
    }

    #[test]
    fn outcome_round_trips_through_serde() {
        let space = KeySpace::new(4).unwrap();
        let outcome = RouteOutcome::Dropped {
            hops: 3,
            stuck_at: space.wrap(7),
        };
        let json = serde_json::to_string(&outcome).unwrap();
        let back: RouteOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(outcome, back);
    }
}
