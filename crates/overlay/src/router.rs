//! Hop-by-hop routing driver shared by all overlays.

use crate::failure::FailureMask;
use crate::traits::Overlay;
use dht_id::NodeId;
use serde::{Deserialize, Serialize};

/// Outcome of routing one message under a frozen failure pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteOutcome {
    /// The message reached the target.
    Delivered {
        /// Number of hops taken (0 when source == target).
        hops: u32,
    },
    /// No alive neighbour made progress; the message was dropped.
    Dropped {
        /// Hops taken before the drop.
        hops: u32,
        /// The node holding the message when it was dropped.
        stuck_at: NodeId,
    },
    /// The source node itself had failed, so no message was ever sent.
    SourceFailed,
    /// The target node had failed; under the static model the message cannot
    /// be delivered regardless of the path taken.
    TargetFailed,
    /// The hop limit was exceeded — with strictly-greedy protocols this
    /// indicates a protocol-implementation bug rather than a routing failure,
    /// and the integration tests assert it never occurs.
    HopLimitExceeded {
        /// The configured hop limit.
        limit: u32,
    },
}

impl RouteOutcome {
    /// Returns `true` for [`RouteOutcome::Delivered`].
    #[must_use]
    pub fn is_delivered(&self) -> bool {
        matches!(self, RouteOutcome::Delivered { .. })
    }

    /// Number of hops taken, if the message was delivered.
    #[must_use]
    pub fn hops(&self) -> Option<u32> {
        match self {
            RouteOutcome::Delivered { hops } => Some(*hops),
            _ => None,
        }
    }
}

/// The default hop limit for routing on `overlay`: `64 · ⌈log2 n⌉` where `n`
/// is the *occupied* node count.
///
/// Greedy protocols route in at most `⌈log2 n⌉` phases but may take
/// suboptimal hops inside each phase (Symphony in particular needs
/// `O(log^2 n / k_s)` hops in expectation), so the driver allows a generous
/// multiple of the population's bit length. Keying off the occupied count —
/// not the identifier length — keeps the limit tight for sparse overlays: a
/// Symphony ring with `2^10` nodes in a `2^20` space gets `64 · 10` hops, not
/// `64 · 20`.
///
/// Batch drivers (`dht_sim`'s trial engine) compute this once per trial and
/// call [`route_with_limit`] directly.
#[must_use]
pub fn default_route_hop_limit<O>(overlay: &O) -> u32
where
    O: Overlay + ?Sized,
{
    let nodes = overlay.node_count();
    // ceil(log2 n), with n >= 2 enforced at overlay construction; max(1)
    // keeps degenerate custom overlays from a zero limit.
    let bit_length = (u64::BITS - nodes.saturating_sub(1).leading_zeros()).max(1);
    64 * bit_length
}

/// Routes a message from `source` to `target` under `mask` with the default
/// hop limit ([`default_route_hop_limit`]).
///
/// See [`route_with_limit`] for details.
#[must_use]
pub fn route<O>(overlay: &O, source: NodeId, target: NodeId, mask: &FailureMask) -> RouteOutcome
where
    O: Overlay + ?Sized,
{
    route_with_limit(
        overlay,
        source,
        target,
        mask,
        default_route_hop_limit(overlay),
    )
}

/// Routes a message from `source` to `target` under `mask`, giving up after
/// `hop_limit` hops.
///
/// The driver repeatedly asks the overlay for its greedy next hop among alive
/// neighbours. There is no backtracking: the first time the overlay returns
/// `None` the message is dropped, exactly as in the paper's model.
///
/// # Panics
///
/// Panics if `source` or `target` do not belong to the overlay's key space.
#[must_use]
pub fn route_with_limit<O>(
    overlay: &O,
    source: NodeId,
    target: NodeId,
    mask: &FailureMask,
    hop_limit: u32,
) -> RouteOutcome
where
    O: Overlay + ?Sized,
{
    let space = overlay.key_space();
    assert_eq!(
        source.bits(),
        space.bits(),
        "source is from a different key space"
    );
    assert_eq!(
        target.bits(),
        space.bits(),
        "target is from a different key space"
    );
    route_prevalidated(overlay, source, target, mask, hop_limit)
}

/// [`route_with_limit`] with the key-space validation hoisted to the caller.
///
/// Batch drivers that route millions of pairs drawn from the overlay's own
/// population (the trial engine of `dht_sim`) validate the key space once per
/// batch and call this directly, so the hot loop stops paying two asserts per
/// routed pair. Debug builds still assert; release builds trust the caller.
#[must_use]
pub fn route_prevalidated<O>(
    overlay: &O,
    source: NodeId,
    target: NodeId,
    mask: &FailureMask,
    hop_limit: u32,
) -> RouteOutcome
where
    O: Overlay + ?Sized,
{
    debug_assert_eq!(
        source.bits(),
        overlay.key_space().bits(),
        "source is from a different key space"
    );
    debug_assert_eq!(
        target.bits(),
        overlay.key_space().bits(),
        "target is from a different key space"
    );

    if mask.is_failed(source) {
        return RouteOutcome::SourceFailed;
    }
    if mask.is_failed(target) {
        return RouteOutcome::TargetFailed;
    }
    let mut current = source;
    let mut hops = 0u32;
    while current != target {
        if hops >= hop_limit {
            return RouteOutcome::HopLimitExceeded { limit: hop_limit };
        }
        match overlay.next_hop(current, target, mask) {
            Some(next) => {
                debug_assert!(
                    mask.is_alive(next),
                    "overlay {} forwarded to a failed node",
                    overlay.geometry_name()
                );
                current = next;
                hops += 1;
            }
            None => {
                return RouteOutcome::Dropped {
                    hops,
                    stuck_at: current,
                }
            }
        }
    }
    RouteOutcome::Delivered { hops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::RoutingArena;
    use dht_id::{KeySpace, Population};

    /// A toy line overlay: node v's only neighbour is v+1. Useful to exercise
    /// the driver without pulling in a real geometry.
    struct LineOverlay {
        population: Population,
        arena: RoutingArena,
    }

    impl LineOverlay {
        fn new(bits: u32) -> Self {
            let space = KeySpace::new(bits).unwrap();
            let population = Population::full(space);
            let mut arena = RoutingArena::new();
            for node in population.iter_nodes() {
                if node.value() < space.max_value() {
                    arena.push_table(&[space.wrap(node.value() + 1)]);
                } else {
                    arena.push_table(&[]);
                }
            }
            LineOverlay { population, arena }
        }

        fn space(&self) -> KeySpace {
            self.population.space()
        }
    }

    impl Overlay for LineOverlay {
        fn geometry_name(&self) -> &'static str {
            "line"
        }
        fn population(&self) -> &Population {
            &self.population
        }
        fn neighbors(&self, node: NodeId) -> &[NodeId] {
            self.arena.neighbors(node.value() as usize)
        }
        fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
            self.neighbors(current)
                .iter()
                .copied()
                .find(|&n| alive.is_alive(n) && n.value() <= target.value())
        }
    }

    #[test]
    fn delivers_along_the_line() {
        let overlay = LineOverlay::new(4);
        let mask = FailureMask::none(overlay.key_space());
        let outcome = route(
            &overlay,
            overlay.space().wrap(2),
            overlay.space().wrap(9),
            &mask,
        );
        assert_eq!(outcome, RouteOutcome::Delivered { hops: 7 });
        assert!(outcome.is_delivered());
        assert_eq!(outcome.hops(), Some(7));
    }

    #[test]
    fn self_route_takes_zero_hops() {
        let overlay = LineOverlay::new(4);
        let mask = FailureMask::none(overlay.key_space());
        let node = overlay.space().wrap(5);
        assert_eq!(
            route(&overlay, node, node, &mask),
            RouteOutcome::Delivered { hops: 0 }
        );
    }

    #[test]
    fn source_and_target_failures_are_reported() {
        let overlay = LineOverlay::new(4);
        let space = overlay.key_space();
        let mask = FailureMask::from_failed_nodes(space, [space.wrap(3), space.wrap(12)]);
        assert_eq!(
            route(&overlay, space.wrap(3), space.wrap(9), &mask),
            RouteOutcome::SourceFailed
        );
        assert_eq!(
            route(&overlay, space.wrap(1), space.wrap(12), &mask),
            RouteOutcome::TargetFailed
        );
    }

    #[test]
    fn drop_reports_the_stuck_node() {
        let overlay = LineOverlay::new(4);
        let space = overlay.key_space();
        // Failing node 6 cuts every path from below 6 to above 6.
        let mask = FailureMask::from_failed_nodes(space, [space.wrap(6)]);
        match route(&overlay, space.wrap(2), space.wrap(10), &mask) {
            RouteOutcome::Dropped { hops, stuck_at } => {
                assert_eq!(stuck_at, space.wrap(5));
                assert_eq!(hops, 3);
            }
            other => panic!("expected a drop, got {other:?}"),
        }
    }

    #[test]
    fn hop_limit_is_enforced() {
        let overlay = LineOverlay::new(4);
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        assert_eq!(
            route_with_limit(&overlay, space.wrap(0), space.wrap(15), &mask, 5),
            RouteOutcome::HopLimitExceeded { limit: 5 }
        );
    }

    #[test]
    fn default_hop_limit_keys_off_the_occupied_count() {
        // A full 4-bit line overlay has 16 nodes: 64 * 4 hops.
        let overlay = LineOverlay::new(4);
        assert_eq!(default_route_hop_limit(&overlay), 64 * 4);

        // A sparse overlay gets a limit sized to its occupied count, not the
        // identifier length of the space it happens to live in.
        struct SparseStub {
            population: Population,
        }
        impl Overlay for SparseStub {
            fn geometry_name(&self) -> &'static str {
                "stub"
            }
            fn population(&self) -> &Population {
                &self.population
            }
            fn neighbors(&self, _node: NodeId) -> &[NodeId] {
                &[]
            }
            fn next_hop(
                &self,
                _current: NodeId,
                _target: NodeId,
                _alive: &FailureMask,
            ) -> Option<NodeId> {
                None
            }
        }
        let space = KeySpace::new(20).unwrap();
        let population =
            Population::sparse(space, (0..1024u64).map(|v| space.wrap(v * 7))).unwrap();
        let sparse = SparseStub { population };
        assert_eq!(
            default_route_hop_limit(&sparse),
            64 * 10,
            "2^10 occupied nodes in a 2^20 space bound the phases, not the 20 bits"
        );
        // Non-power-of-two counts round the bit length up.
        let three =
            Population::sparse(space, [space.wrap(1), space.wrap(2), space.wrap(3)]).unwrap();
        assert_eq!(
            default_route_hop_limit(&SparseStub { population: three }),
            64 * 2
        );
    }

    #[test]
    fn outcome_round_trips_through_serde() {
        let space = KeySpace::new(4).unwrap();
        let outcome = RouteOutcome::Dropped {
            hops: 3,
            stuck_at: space.wrap(7),
        };
        let json = serde_json::to_string(&outcome).unwrap();
        let back: RouteOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(outcome, back);
    }
}
