//! The compiled rank-space routing kernel.
//!
//! Scalar routing ([`crate::route_with_limit`]) asks the overlay's
//! [`GeometryStrategy`](crate::generic::GeometryStrategy) for a greedy hop,
//! and every strategy answers the same way: linearly scan the full neighbour
//! table, recompute the geometry's distance metric for each entry, and probe
//! the failure mask through a per-identifier lookup. That is flexible — it is
//! the reference semantics — but it pays O(d) distance recomputations per hop
//! for work that is knowable at *build* time: a finger's clockwise advance
//! never changes, a bucket contact's position in the table *is* its XOR
//! bucket, a hypercube link always corrects the same bit.
//!
//! [`RoutingKernel`] lowers a built overlay into a plan that precomputes all
//! of it, in **rank space** (nodes addressed by their occupied rank, exactly
//! like the [`crate::RoutingArena`]):
//!
//! * neighbour tables become dense `u32` rank indices, packed with their hop
//!   keys into 8-byte entries (half the scalar arena's `NodeId`) behind a
//!   CSR `offsets` array;
//! * each entry's **hop key** is precomputed per geometry — clockwise advance
//!   for ring/Symphony (largest first), XOR-bucket position for
//!   Kademlia/Plaxton, flipped-bit weight for the hypercube — and laid out in
//!   greedy-preference order;
//! * `next_hop` becomes an expected-O(1) scan over the advance-sorted
//!   entries (ring; the sorted layout also admits a plain binary search) or
//!   a leading-zero dispatch (prefix geometries) plus a short alive-probe
//!   scan, instead of an O(d) distance-recomputing pass;
//! * alive probes are direct bit tests on the rank index
//!   ([`KernelMask::is_alive_rank`]) — no sparse population-rank lookup per
//!   probe.
//!
//! The kernel's outcomes are **bit-identical** to the scalar path: every
//! [`RouteOutcome`] (including `Dropped { stuck_at }` and hop counts) matches
//! `route_with_limit` for all five geometries, full and sparse populations
//! alike — proven by the `kernel_equivalence` proptest suite. That is what
//! lets `dht_sim`'s trial engine switch onto the kernel without perturbing a
//! single committed measurement.
//!
//! # Example
//!
//! ```rust
//! use dht_overlay::{default_route_hop_limit, route, ChordOverlay, ChordVariant};
//! use dht_overlay::{FailureMask, Overlay};
//!
//! let overlay = ChordOverlay::build(10, ChordVariant::Deterministic)?;
//! let kernel = overlay.kernel().expect("ring geometry compiles");
//! let space = overlay.key_space();
//! let mask = FailureMask::none(space);
//! let lowered = kernel.compile_mask(&mask);
//! let limit = default_route_hop_limit(&overlay);
//! let (a, b) = (space.wrap(3), space.wrap(900));
//! assert_eq!(
//!     kernel.route(&lowered, a, b, limit),
//!     route(&overlay, a, b, &mask),
//! );
//! # Ok::<(), dht_overlay::OverlayError>(())
//! ```

pub mod batch;
pub mod implicit;

use crate::arena::RoutingArena;
use crate::failure::FailureMask;
use crate::router::RouteOutcome;
use dht_id::{KeySpace, NodeId, Population};
use std::sync::{Arc, Mutex};

pub use batch::{RouteBatch, DEFAULT_BATCH_WIDTH};
pub use implicit::{ImplicitKernel, ImplicitOverlay, ImplicitRowCache};

/// Sentinel rank for an absent entry (the sparse self-placeholder of an empty
/// bucket or tree level).
const NO_ENTRY: u32 = u32::MAX;

/// Which hop key a geometry precomputes per entry, and which dispatch rule
/// the kernel's next-hop uses over it.
///
/// Each [`GeometryStrategy`](crate::generic::GeometryStrategy) exports its
/// rule through `kernel_rule`; strategies that return `None` cannot be
/// lowered and keep routing through the scalar path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelRule {
    /// Greedy non-overshooting ring forwarding (Chord, Symphony). Hop key:
    /// the entry's clockwise advance from its owner, stored largest first
    /// (greedy-preference order). Dispatch: scan forward, skipping
    /// overshoots (advance greater than the remaining clockwise distance)
    /// and dead probes in one walk — expected O(1) probes per hop.
    RingAdvance,
    /// Prefix forwarding with XOR fallback (Kademlia). Hop key: the contact's
    /// raw identifier value, stored at its bucket position. Dispatch:
    /// leading-zero dispatch to the bucket of the highest differing bit
    /// (whose contact, when alive, is provably the unique XOR minimum), with
    /// a fallback scan over the lower-order buckets when it is dead.
    PrefixXor,
    /// Rigid prefix forwarding (the Plaxton tree). Hop key: the entry's raw
    /// identifier value, stored at its level position. Dispatch: leading-zero
    /// dispatch to the level of the highest differing bit, single probe — the
    /// protocol has no fallback.
    PrefixTree,
    /// Greedy Hamming forwarding (the CAN hypercube). Hop key: the weight of
    /// the entry's flipped bit, laid out most-significant first. Dispatch:
    /// first entry whose bit is set in the remaining XOR diff and alive.
    HypercubeBit,
}

/// A [`FailureMask`] lowered into a kernel's rank space: alive probes become
/// direct bit tests indexed by occupied rank.
///
/// Created once per (kernel, mask) pair by [`RoutingKernel::compile_mask`];
/// the per-route key-space assertions of the scalar path are paid there, once
/// per batch, instead of on every routed pair.
#[derive(Debug, Clone)]
pub enum KernelMask<'mask> {
    /// Full population: occupied ranks coincide with identifier values, so
    /// the mask's own bitset is already rank-indexed and is borrowed as-is.
    Full(&'mask FailureMask),
    /// Sparse population: a rank-compressed copy of the alive bits (bit `r`
    /// set iff the rank-`r` occupied node survived), shared with the
    /// kernel's per-generation lowering cache so repeated
    /// [`RoutingKernel::compile_mask`] calls over an unmutated mask reuse
    /// one lowering.
    Compressed(Arc<Vec<u64>>),
}

impl KernelMask<'_> {
    /// Returns `true` when the occupied node of the given rank survived.
    ///
    /// This is the kernel's only per-probe mask query: one shift and mask,
    /// with no population-rank indirection.
    #[inline]
    #[must_use]
    pub fn is_alive_rank(&self, rank: u32) -> bool {
        match self {
            KernelMask::Full(mask) => mask.is_alive_rank(rank),
            KernelMask::Compressed(words) => {
                words[(rank >> 6) as usize] & (1u64 << (rank & 63)) != 0
            }
        }
    }

    /// The rank-indexed bitset words, resolved once so route loops probe a
    /// bare slice instead of re-matching the representation per hop.
    ///
    /// Batch drivers resolve this once per shard and route through
    /// [`RoutingKernel::route_ranked`] / [`RoutingKernel::route_batch`], so
    /// not even the per-route match is paid on the hot path.
    #[inline]
    #[must_use]
    pub fn words(&self) -> &[u64] {
        match self {
            KernelMask::Full(mask) => mask.words(),
            KernelMask::Compressed(words) => words,
        }
    }
}

/// Tests bit `rank` of a rank-indexed alive bitset.
#[inline]
fn alive_bit(words: &[u64], rank: u32) -> bool {
    words[(rank >> 6) as usize] & (1u64 << (rank & 63)) != 0
}

/// A built overlay lowered into a rank-space routing plan.
///
/// See the [module docs](self) for the representation. Obtain one through
/// [`Overlay::kernel`](crate::Overlay::kernel) (compiled lazily, cached on
/// the overlay); drive it with [`RoutingKernel::route`] /
/// [`RoutingKernel::route_values`] after lowering the failure mask once with
/// [`RoutingKernel::compile_mask`].
#[derive(Debug)]
pub struct RoutingKernel {
    rule: KernelRule,
    space: KeySpace,
    bits: u32,
    full: bool,
    /// Shared with the owning overlay (value↔rank mapping for sparse
    /// populations), not cloned — the sparse rank table is space-sized.
    population: Arc<Population>,
    /// `offsets[r]..offsets[r + 1]` delimits the plan entries of rank `r`.
    offsets: Vec<u32>,
    /// When every table has the same length (always true for full
    /// populations), the common length: rank `r`'s entries start at
    /// `r * stride` and the hot loops skip the `offsets` load entirely.
    stride: Option<u32>,
    /// The packed plan entries, tables back to back in rank order.
    entries: Vec<PlanEntry>,
    /// rank → identifier value; empty for full populations (identity).
    values: Vec<u32>,
    /// Memoized sparse-mask lowering, keyed by [`FailureMask::generation`]:
    /// repeated [`RoutingKernel::compile_mask`] calls over the same unmutated
    /// mask (every trial of a static-resilience grid point) reuse one O(n)
    /// rank compression. Never consulted for full populations (their
    /// lowering borrows the mask bitset for free). Scratch state only —
    /// ignored by [`RoutingKernel::plan_eq`] / [`RoutingKernel::plan_digest`]
    /// and reset by `Clone`.
    lowering: Mutex<Option<(u64, Arc<Vec<u64>>)>>,
}

/// Clones the routing plan; the lowering memo starts empty (it repopulates on
/// the first `compile_mask`, and a fresh cache is cheaper than locking the
/// source's).
impl Clone for RoutingKernel {
    fn clone(&self) -> Self {
        RoutingKernel {
            rule: self.rule,
            space: self.space,
            bits: self.bits,
            full: self.full,
            population: Arc::clone(&self.population),
            offsets: self.offsets.clone(),
            stride: self.stride,
            entries: self.entries.clone(),
            values: self.values.clone(),
            lowering: Mutex::new(None),
        }
    }
}

/// One packed plan entry: the precomputed hop key and the neighbour's
/// occupied rank, interleaved so the key compare and the follow-up alive
/// probe share a cache line. Both fields fit `u32` because executable
/// identifier spaces are capped at [`crate::traits::MAX_OVERLAY_BITS`] bits
/// ([`crate::traits::MAX_IMPLICIT_OVERLAY_BITS`] for the implicit backend,
/// still within `u32`): the whole entry is 8 bytes, half the scalar arena's
/// `NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlanEntry {
    /// The hop key (meaning depends on the [`KernelRule`]).
    key: u32,
    /// The neighbour's occupied rank, or [`NO_ENTRY`].
    target: u32,
}

impl RoutingKernel {
    /// Lowers `arena`'s routing tables over `population` into a plan for
    /// `rule`.
    ///
    /// Ranks follow the arena/population convention (occupied identifiers in
    /// ascending order). Construction is O(edges) plus, for the ring rule, a
    /// per-table sort by advance.
    #[must_use]
    pub(crate) fn compile(
        rule: KernelRule,
        population: &Arc<Population>,
        arena: &RoutingArena,
    ) -> Self {
        let space = population.space();
        let bits = space.bits();
        let full = population.is_full();
        let node_count = usize::try_from(population.node_count()).expect("overlay sizes fit usize");
        debug_assert_eq!(arena.node_count(), node_count);

        let values: Vec<u32> = if full {
            Vec::new()
        } else {
            population
                .iter_nodes()
                .map(|node| node.value() as u32)
                .collect()
        };
        let rank_of = |node: NodeId| -> u32 {
            population
                .rank_of_value(node.value())
                .expect("routing tables only reference occupied identifiers") as u32
        };

        let entry_hint = arena.entry_count() as usize;
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut entries: Vec<PlanEntry> = Vec::with_capacity(entry_hint);
        offsets.push(0u32);
        let mut ring_scratch: Vec<(u32, u32)> = Vec::new();

        for (rank, node) in population.iter_nodes().enumerate() {
            let table = arena.neighbors(rank);
            match rule {
                KernelRule::RingAdvance => {
                    // Sorted by greedy preference — largest clockwise advance
                    // first, so the hop scan reads forward from the row
                    // start. Self-entries (advance 0, the sparse placeholder)
                    // never make greedy progress and are dropped, and
                    // duplicate advances are the same identifier, so one
                    // probe suffices.
                    ring_scratch.clear();
                    for &entry in table {
                        let advance = ring_distance_raw(node.value(), entry.value(), space);
                        if advance > 0 {
                            ring_scratch.push((advance as u32, rank_of(entry)));
                        }
                    }
                    ring_scratch.sort_unstable();
                    ring_scratch.dedup_by_key(|&mut (advance, _)| advance);
                    entries.extend(
                        ring_scratch
                            .iter()
                            .rev()
                            .map(|&(advance, target)| PlanEntry {
                                key: advance,
                                target,
                            }),
                    );
                }
                KernelRule::PrefixXor | KernelRule::PrefixTree => {
                    // Positional: entry j sits at bucket/level j, so the
                    // leading-zero dispatch can index directly. Placeholders
                    // keep their slot with a NO_ENTRY rank.
                    debug_assert_eq!(table.len(), bits as usize, "prefix tables hold d entries");
                    for &entry in table {
                        if entry == node {
                            entries.push(PlanEntry {
                                key: 0,
                                target: NO_ENTRY,
                            });
                        } else {
                            entries.push(PlanEntry {
                                key: entry.value() as u32,
                                target: rank_of(entry),
                            });
                        }
                    }
                }
                KernelRule::HypercubeBit => {
                    // Build order is bit 0 (most significant) downward, so
                    // the first entry whose bit survives in the XOR diff is
                    // the scalar rule's minimum.
                    for &entry in table {
                        let weight = node.value() ^ entry.value();
                        debug_assert_eq!(weight.count_ones(), 1, "hypercube links flip one bit");
                        entries.push(PlanEntry {
                            key: weight as u32,
                            target: rank_of(entry),
                        });
                    }
                }
            }
            let end =
                u32::try_from(entries.len()).expect("kernel plans hold at most u32::MAX entries");
            offsets.push(end);
        }

        let stride = uniform_stride(&offsets);
        RoutingKernel {
            rule,
            space,
            bits,
            full,
            population: Arc::clone(population),
            offsets,
            stride,
            entries,
            values,
            lowering: Mutex::new(None),
        }
    }

    /// Lowers a live overlay's fixed-width arena into a *repairable* plan.
    ///
    /// Unlike [`RoutingKernel::compile`], every plan row keeps exactly the
    /// arena row's width: ring rows retain duplicate and zero-advance (self)
    /// entries in descending-advance order (the dispatch guard in `ring_hop`
    /// stops at the zero tail), and hypercube self placeholders lower to
    /// inert [`NO_ENTRY`] slots. Fixed-width rows are what let
    /// [`RoutingKernel::relower_rank`] repatch a single row in place after a
    /// live repair instead of recompiling the whole plan.
    #[must_use]
    pub(crate) fn compile_live(
        rule: KernelRule,
        population: &Arc<Population>,
        arena: &RoutingArena,
    ) -> Self {
        let space = population.space();
        let bits = space.bits();
        let full = population.is_full();
        let node_count = usize::try_from(population.node_count()).expect("overlay sizes fit usize");
        debug_assert_eq!(arena.node_count(), node_count);

        let values: Vec<u32> = if full {
            Vec::new()
        } else {
            population
                .iter_nodes()
                .map(|node| node.value() as u32)
                .collect()
        };
        let rank_of = |node: NodeId| -> u32 {
            population
                .rank_of_value(node.value())
                .expect("routing tables only reference occupied identifiers") as u32
        };

        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut entries: Vec<PlanEntry> = Vec::with_capacity(arena.entry_count() as usize);
        offsets.push(0u32);
        for (rank, node) in population.iter_nodes().enumerate() {
            lower_live_row(
                rule,
                space,
                node,
                arena.neighbors(rank),
                &rank_of,
                &mut entries,
            );
            let end =
                u32::try_from(entries.len()).expect("kernel plans hold at most u32::MAX entries");
            offsets.push(end);
        }

        let stride = uniform_stride(&offsets);
        RoutingKernel {
            rule,
            space,
            bits,
            full,
            population: Arc::clone(population),
            offsets,
            stride,
            entries,
            values,
            lowering: Mutex::new(None),
        }
    }

    /// Repatches the plan row of `rank` in place from the node's rewritten
    /// live table — the kernel half of a live repair (dirty-rank
    /// invalidation): only the repaired row is re-lowered, every other row
    /// and the CSR layout stay untouched.
    ///
    /// Only valid on plans produced by [`RoutingKernel::compile_live`], whose
    /// rows are fixed-width by construction.
    ///
    /// # Panics
    ///
    /// Panics if the lowered row width differs from the stored row (a
    /// violation of the live fixed-width contract).
    pub(crate) fn relower_rank(&mut self, rank: usize, node: NodeId, table: &[NodeId]) {
        let (start, end) = self.bounds(rank as u32);
        let population = Arc::clone(&self.population);
        let rank_of = |n: NodeId| -> u32 {
            population
                .rank_of_value(n.value())
                .expect("routing tables only reference occupied identifiers") as u32
        };
        let mut row: Vec<PlanEntry> = Vec::with_capacity(end - start);
        lower_live_row(self.rule, self.space, node, table, &rank_of, &mut row);
        assert_eq!(
            row.len(),
            end - start,
            "live repairs preserve the row width"
        );
        self.entries[start..end].copy_from_slice(&row);
    }

    /// `true` when `other` encodes entry-for-entry the same routing plan:
    /// same rule, key space, CSR layout and packed hop keys/ranks.
    ///
    /// This is the kernel-level equality the incremental-equivalence property
    /// suite asserts between a delta-repaired plan and a from-scratch
    /// live compile over the same state.
    #[must_use]
    pub fn plan_eq(&self, other: &RoutingKernel) -> bool {
        self.rule == other.rule
            && self.space == other.space
            && self.bits == other.bits
            && self.full == other.full
            && self.offsets == other.offsets
            && self.stride == other.stride
            && self.entries == other.entries
            && self.values == other.values
    }

    /// A 64-bit digest of the full plan (rule, layout, every packed entry),
    /// folded with SplitMix64. Plans that satisfy [`RoutingKernel::plan_eq`]
    /// digest identically; the live-churn engine folds this into its
    /// final-state hashes so thread-count determinism covers the compiled
    /// plans, not just the tallies.
    #[must_use]
    pub fn plan_digest(&self) -> u64 {
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |value: u64| digest = crate::live::splitmix64(digest ^ value);
        fold(self.rule as u64);
        fold(u64::from(self.bits));
        fold(u64::from(self.full));
        for &offset in &self.offsets {
            fold(u64::from(offset));
        }
        for entry in &self.entries {
            fold(u64::from(entry.key) << 32 | u64::from(entry.target));
        }
        for &value in &self.values {
            fold(u64::from(value));
        }
        digest
    }

    /// The dispatch rule this kernel was compiled with.
    #[must_use]
    pub fn rule(&self) -> KernelRule {
        self.rule
    }

    /// The identifier space the kernel routes in.
    #[must_use]
    pub fn key_space(&self) -> KeySpace {
        self.space
    }

    /// Number of plan entries (directed edges, placeholders included for the
    /// positional prefix rules).
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Bytes of the plan's own storage (offsets, packed key/rank entries and
    /// the sparse value table) — the kernel's memory cost on top of the
    /// overlay it was lowered from: 8 bytes per entry plus ~4 per node. The
    /// population is shared with the overlay, not duplicated, and is not
    /// counted here.
    #[must_use]
    pub fn plan_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.entries.len() * std::mem::size_of::<PlanEntry>()
            + self.values.len() * 4
    }

    /// Lowers `mask` into this kernel's rank space.
    ///
    /// For a full population the mask's bitset is already rank-indexed and is
    /// borrowed; for a sparse one the occupied bits are compressed into a
    /// rank-indexed copy, O(n). The sparse lowering is memoized per
    /// [`FailureMask::generation`]: lowering the same unmutated mask again
    /// (every trial of a grid point reuses one sampled mask) returns a shared
    /// handle to the cached words instead of recompressing. Either way this
    /// is the **batch-entry validation point**: the key-space checks the
    /// scalar path performs on every routed pair are asserted here exactly
    /// once.
    ///
    /// # Panics
    ///
    /// Panics if `mask` covers a different key space or population size than
    /// the kernel.
    #[must_use]
    pub fn compile_mask<'mask>(&self, mask: &'mask FailureMask) -> KernelMask<'mask> {
        assert_eq!(
            mask.key_space().bits(),
            self.bits,
            "mask is from a different key space"
        );
        assert_eq!(
            mask.population_size(),
            self.population.node_count(),
            "mask covers a different population"
        );
        if self.full {
            return KernelMask::Full(mask);
        }
        let generation = mask.generation();
        if let Some((cached_generation, words)) = self
            .lowering
            .lock()
            .expect("lowering cache poisoned")
            .as_ref()
        {
            // A generation match guarantees identical content: stamps are
            // workspace-unique and re-drawn on every mask mutation.
            if *cached_generation == generation {
                return KernelMask::Compressed(Arc::clone(words));
            }
        }
        let node_count = self.values.len();
        let mut words = vec![0u64; node_count.div_ceil(64)];
        for (rank, node) in self.population.iter_nodes().enumerate() {
            if mask.is_alive(node) {
                words[rank >> 6] |= 1u64 << (rank & 63);
            }
        }
        let words = Arc::new(words);
        *self.lowering.lock().expect("lowering cache poisoned") =
            Some((generation, Arc::clone(&words)));
        KernelMask::Compressed(words)
    }

    /// rank → raw identifier value.
    #[inline]
    fn value_of(&self, rank: u32) -> u64 {
        if self.full {
            u64::from(rank)
        } else {
            u64::from(self.values[rank as usize])
        }
    }

    /// raw identifier value → occupied rank, `None` when unoccupied.
    #[inline]
    fn rank_of_value(&self, value: u64) -> Option<u32> {
        if self.full {
            Some(value as u32)
        } else {
            self.population.rank_of_value(value).map(|rank| rank as u32)
        }
    }

    /// Routes `source` → `target` under the lowered `mask`, giving up after
    /// `hop_limit` hops.
    ///
    /// The outcome is bit-identical to
    /// [`route_with_limit`](crate::route_with_limit) on the overlay this
    /// kernel was compiled from, for the same mask and limit.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `target` do not belong to the kernel's key space
    /// (the same contract as the scalar driver).
    #[must_use]
    pub fn route(
        &self,
        mask: &KernelMask<'_>,
        source: NodeId,
        target: NodeId,
        hop_limit: u32,
    ) -> RouteOutcome {
        assert_eq!(
            source.bits(),
            self.bits,
            "source is from a different key space"
        );
        assert_eq!(
            target.bits(),
            self.bits,
            "target is from a different key space"
        );
        self.route_values(mask, source.value(), target.value(), hop_limit)
    }

    /// [`RoutingKernel::route`] over raw identifier values — the batch entry
    /// point used by `dht_sim`'s trial engine, with the key-space validation
    /// hoisted to [`RoutingKernel::compile_mask`] (debug assertions only
    /// here).
    #[must_use]
    pub fn route_values(
        &self,
        mask: &KernelMask<'_>,
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        // The mask representation is resolved to its bitset once per route;
        // every probe below is a bare shift-and-mask on the slice.
        self.route_on_words(mask.words(), source, target, hop_limit)
    }

    /// [`RoutingKernel::route_values`] over a caller-held rank-indexed alive
    /// bitset, bypassing [`KernelMask`] entirely.
    ///
    /// The live-churn engine maintains its rank words incrementally (one bit
    /// flip per join/leave), so per-lookup routing never recompiles a mask.
    /// `alive_words` must have bit `r` set iff the rank-`r` occupied node is
    /// alive, with `node_count.div_ceil(64)` words — exactly the layout of
    /// [`KernelMask::Compressed`] and of a full population's
    /// [`FailureMask::words`].
    #[must_use]
    pub fn route_ranked(
        &self,
        alive_words: &[u64],
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        self.route_on_words(alive_words, source, target, hop_limit)
    }

    fn route_on_words(
        &self,
        words: &[u64],
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        debug_assert!(source <= self.space.max_value(), "source outside the space");
        debug_assert!(target <= self.space.max_value(), "target outside the space");
        // Mirrors the scalar driver exactly: source first, then target, then
        // the greedy loop.
        let Some(source_rank) = self.alive_rank_of(words, source) else {
            return RouteOutcome::SourceFailed;
        };
        if self.alive_rank_of(words, target).is_none() {
            return RouteOutcome::TargetFailed;
        }
        match self.rule {
            KernelRule::RingAdvance => {
                self.route_ring(words, source_rank, source, target, hop_limit)
            }
            KernelRule::PrefixXor => self.route_xor(words, source_rank, source, target, hop_limit),
            KernelRule::PrefixTree => {
                self.route_tree(words, source_rank, source, target, hop_limit)
            }
            KernelRule::HypercubeBit => {
                self.route_hypercube(words, source_rank, source, target, hop_limit)
            }
        }
    }

    /// The greedy next hop from `current` towards `target`, or `None` when no
    /// alive entry makes progress — a single step of the compiled plan,
    /// equivalent to [`Overlay::next_hop`](crate::Overlay::next_hop) on the
    /// source overlay.
    ///
    /// # Panics
    ///
    /// Panics if `current` or `target` do not belong to the kernel's key
    /// space.
    #[must_use]
    pub fn next_hop(
        &self,
        mask: &KernelMask<'_>,
        current: NodeId,
        target: NodeId,
    ) -> Option<NodeId> {
        assert_eq!(
            current.bits(),
            self.bits,
            "current is from a different key space"
        );
        assert_eq!(
            target.bits(),
            self.bits,
            "target is from a different key space"
        );
        // An unoccupied identifier has no routing table (the scalar path
        // yields an empty neighbour slice and therefore no hop).
        let rank = self.rank_of_value(current.value())?;
        let words = mask.words();
        let current = current.value();
        let target = target.value();
        let value = match self.rule {
            KernelRule::RingAdvance => {
                let remaining = ring_distance_raw(current, target, self.space);
                let (_, next) = self.ring_hop(words, rank, remaining)?;
                self.value_of(next)
            }
            KernelRule::PrefixXor => {
                if current == target {
                    return None;
                }
                self.xor_hop(words, rank, current, target)?.0
            }
            KernelRule::PrefixTree => {
                if current == target {
                    return None;
                }
                self.tree_hop(words, rank, current, target)?.0
            }
            KernelRule::HypercubeBit => {
                let (weight, _) = self.cube_hop(words, rank, current ^ target)?;
                current ^ weight
            }
        };
        Some(self.space.wrap(value))
    }

    /// `Some(rank)` when `value` is an occupied identifier that survived.
    #[inline]
    fn alive_rank_of(&self, words: &[u64], value: u64) -> Option<u32> {
        let rank = self.rank_of_value(value)?;
        alive_bit(words, rank).then_some(rank)
    }

    /// The plan-entry range of rank `r`: a multiply for fixed-stride plans,
    /// two `offsets` loads for ragged ones.
    #[inline]
    fn bounds(&self, rank: u32) -> (usize, usize) {
        match self.stride {
            Some(stride) => {
                let start = rank as usize * stride as usize;
                (start, start + stride as usize)
            }
            None => (
                self.offsets[rank as usize] as usize,
                self.offsets[rank as usize + 1] as usize,
            ),
        }
    }

    /// One ring hop over the plan row of `rank` — see [`ring_hop_row`].
    #[inline]
    fn ring_hop(&self, words: &[u64], rank: u32, remaining: u64) -> Option<(u64, u32)> {
        let (start, end) = self.bounds(rank);
        ring_hop_row(&self.entries[start..end], words, remaining)
    }

    /// One tree hop over the plan row of `rank` — see [`tree_hop_row`].
    #[inline]
    fn tree_hop(&self, words: &[u64], rank: u32, current: u64, target: u64) -> Option<(u64, u32)> {
        let (start, end) = self.bounds(rank);
        tree_hop_row(&self.entries[start..end], words, self.bits, current, target)
    }

    /// One XOR hop over the plan row of `rank` — see [`xor_hop_row`].
    #[inline]
    fn xor_hop(&self, words: &[u64], rank: u32, current: u64, target: u64) -> Option<(u64, u32)> {
        let (start, end) = self.bounds(rank);
        xor_hop_row(&self.entries[start..end], words, self.bits, current, target)
    }

    /// One hypercube hop over the plan row of `rank` — see [`cube_hop_row`].
    #[inline]
    fn cube_hop(&self, words: &[u64], rank: u32, diff: u64) -> Option<(u64, u32)> {
        let (start, end) = self.bounds(rank);
        cube_hop_row(&self.entries[start..end], words, diff)
    }

    fn route_ring(
        &self,
        words: &[u64],
        mut rank: u32,
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        // The whole loop runs on the remaining clockwise distance: it starts
        // at ring_distance(source, target), every hop subtracts its advance,
        // and zero means arrival — no identifier arithmetic per hop.
        let mut remaining = ring_distance_raw(source, target, self.space);
        let mut hops = 0u32;
        while remaining != 0 {
            if hops >= hop_limit {
                return RouteOutcome::HopLimitExceeded { limit: hop_limit };
            }
            match self.ring_hop(words, rank, remaining) {
                Some((advance, next)) => {
                    remaining -= advance;
                    rank = next;
                    hops += 1;
                }
                None => {
                    return RouteOutcome::Dropped {
                        hops,
                        stuck_at: self.space.wrap(self.value_of(rank)),
                    }
                }
            }
        }
        RouteOutcome::Delivered { hops }
    }

    fn route_tree(
        &self,
        words: &[u64],
        mut rank: u32,
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        let mut current = source;
        let mut hops = 0u32;
        while current != target {
            if hops >= hop_limit {
                return RouteOutcome::HopLimitExceeded { limit: hop_limit };
            }
            match self.tree_hop(words, rank, current, target) {
                Some((value, next)) => {
                    current = value;
                    rank = next;
                    hops += 1;
                }
                None => {
                    return RouteOutcome::Dropped {
                        hops,
                        stuck_at: self.space.wrap(current),
                    }
                }
            }
        }
        RouteOutcome::Delivered { hops }
    }

    fn route_xor(
        &self,
        words: &[u64],
        mut rank: u32,
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        let mut current = source;
        let mut hops = 0u32;
        while current != target {
            if hops >= hop_limit {
                return RouteOutcome::HopLimitExceeded { limit: hop_limit };
            }
            match self.xor_hop(words, rank, current, target) {
                Some((value, next)) => {
                    current = value;
                    rank = next;
                    hops += 1;
                }
                None => {
                    return RouteOutcome::Dropped {
                        hops,
                        stuck_at: self.space.wrap(current),
                    }
                }
            }
        }
        RouteOutcome::Delivered { hops }
    }

    fn route_hypercube(
        &self,
        words: &[u64],
        mut rank: u32,
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        // The current identifier is always `target ^ diff`, so the loop only
        // tracks the diff; correcting a bit is one XOR.
        let mut diff = source ^ target;
        let mut hops = 0u32;
        while diff != 0 {
            if hops >= hop_limit {
                return RouteOutcome::HopLimitExceeded { limit: hop_limit };
            }
            match self.cube_hop(words, rank, diff) {
                Some((weight, next)) => {
                    diff ^= weight;
                    rank = next;
                    hops += 1;
                }
                None => {
                    return RouteOutcome::Dropped {
                        hops,
                        stuck_at: self.space.wrap(target ^ diff),
                    }
                }
            }
        }
        RouteOutcome::Delivered { hops }
    }
}

/// One ring hop over a single plan row: the largest advance `<=` remaining
/// whose entry is alive. Returns the advance taken and the new rank.
///
/// Entries are stored largest-advance first, so a forward scan over the
/// row finds the answer: overshooting advances and dead probes are both
/// skipped by the same walk. The scan is expected O(1) probes — the
/// number of advances above the remaining distance is geometrically
/// distributed (one per phase above the current one), which beats a
/// branchy O(log d) binary search on real tables.
///
/// Shared by [`RoutingKernel`] (rows sliced out of the compiled plan) and
/// [`ImplicitKernel`] (rows regenerated on demand), which is what makes the
/// two backends' hop decisions identical by construction.
#[inline]
fn ring_hop_row(row: &[PlanEntry], words: &[u64], remaining: u64) -> Option<(u64, u32)> {
    for entry in row {
        // Live plans keep zero-advance self entries at the row tail
        // (fixed-width rows, sorted descending); a zero advance never
        // makes greedy progress, so reaching the tail means the hop
        // fails. Static plans drop zero advances at compile time, so the
        // guard is inert there.
        if entry.key == 0 {
            return None;
        }
        let advance = u64::from(entry.key);
        if advance <= remaining && alive_bit(words, entry.target) {
            return Some((advance, entry.target));
        }
    }
    None
}

/// One tree hop over a single plan row: probe the level of the highest
/// differing bit, no fallback. Returns the entry's value and rank.
#[inline]
fn tree_hop_row(
    row: &[PlanEntry],
    words: &[u64],
    bits: u32,
    current: u64,
    target: u64,
) -> Option<(u64, u32)> {
    let level = leading_level(bits, current ^ target);
    let entry = row[level];
    (entry.target != NO_ENTRY && alive_bit(words, entry.target))
        .then(|| (u64::from(entry.key), entry.target))
}

/// One XOR hop over a single plan row: the bucket of the highest differing
/// bit when alive (the provable minimum), else the XOR-closest alive contact
/// among the lower-order buckets. Returns the contact's value and rank.
#[inline]
fn xor_hop_row(
    row: &[PlanEntry],
    words: &[u64],
    bits: u32,
    current: u64,
    target: u64,
) -> Option<(u64, u32)> {
    let diff = current ^ target;
    let level = leading_level(bits, diff);
    let primary = row[level];
    if primary.target != NO_ENTRY && alive_bit(words, primary.target) {
        return Some((u64::from(primary.key), primary.target));
    }
    // Fallback: buckets above `level` can never beat the current
    // distance; buckets below compete on their (precomputed) contact
    // values' XOR distance to the target. Strictly-smaller keeps the
    // scalar path's first-minimum tie behaviour.
    let mut best: Option<(u64, u64, u32)> = None;
    for entry in &row[level + 1..bits as usize] {
        if entry.target == NO_ENTRY || !alive_bit(words, entry.target) {
            continue;
        }
        let value = u64::from(entry.key);
        let distance = value ^ target;
        if distance < diff && best.is_none_or(|(d, _, _)| distance < d) {
            best = Some((distance, value, entry.target));
        }
    }
    best.map(|(_, value, next)| (value, next))
}

/// One hypercube hop over a single plan row: the first (highest-weight) entry
/// whose bit is still set in `diff` and alive. Returns the corrected bit
/// weight and the new rank.
#[inline]
fn cube_hop_row(row: &[PlanEntry], words: &[u64], diff: u64) -> Option<(u64, u32)> {
    for entry in row {
        if diff & u64::from(entry.key) != 0 && alive_bit(words, entry.target) {
            return Some((u64::from(entry.key), entry.target));
        }
    }
    None
}

/// The bucket/level (0 = most significant) of the highest set bit of a
/// non-zero `diff` in a `bits`-wide space — the leading-zero dispatch.
#[inline]
fn leading_level(bits: u32, diff: u64) -> usize {
    debug_assert_ne!(diff, 0);
    (diff.leading_zeros() - (64 - bits)) as usize
}

/// Lowers one fixed-width live table row into plan entries.
///
/// The live lowering differs from the static one in exactly one way: the row
/// width is preserved. Ring rows keep duplicate advances and zero-advance
/// self entries (sorted descending so real advances come first and the
/// `ring_hop` zero guard stops at the tail); prefix and hypercube rows are
/// positional and already fixed-width, with self placeholders lowered to
/// [`NO_ENTRY`]. Shared by [`RoutingKernel::compile_live`] (all rows) and
/// [`RoutingKernel::relower_rank`] (one row).
fn lower_live_row(
    rule: KernelRule,
    space: KeySpace,
    node: NodeId,
    table: &[NodeId],
    rank_of: &impl Fn(NodeId) -> u32,
    entries: &mut Vec<PlanEntry>,
) {
    match rule {
        KernelRule::RingAdvance => {
            let mut row: Vec<(u32, u32)> = table
                .iter()
                .map(|&entry| {
                    let advance = ring_distance_raw(node.value(), entry.value(), space);
                    (advance as u32, rank_of(entry))
                })
                .collect();
            row.sort_unstable();
            entries.extend(row.iter().rev().map(|&(advance, target)| PlanEntry {
                key: advance,
                target,
            }));
        }
        KernelRule::PrefixXor | KernelRule::PrefixTree => {
            for &entry in table {
                if entry == node {
                    entries.push(PlanEntry {
                        key: 0,
                        target: NO_ENTRY,
                    });
                } else {
                    entries.push(PlanEntry {
                        key: entry.value() as u32,
                        target: rank_of(entry),
                    });
                }
            }
        }
        KernelRule::HypercubeBit => {
            for &entry in table {
                if entry == node {
                    entries.push(PlanEntry {
                        key: 0,
                        target: NO_ENTRY,
                    });
                } else {
                    let weight = node.value() ^ entry.value();
                    debug_assert_eq!(weight.count_ones(), 1, "hypercube links flip one bit");
                    entries.push(PlanEntry {
                        key: weight as u32,
                        target: rank_of(entry),
                    });
                }
            }
        }
    }
}

/// Clockwise ring distance over raw values (the kernel never constructs
/// identifiers in its hot loops).
#[inline]
fn ring_distance_raw(from: u64, to: u64, space: KeySpace) -> u64 {
    to.wrapping_sub(from) & space.max_value()
}

/// The common row width when every CSR row is equally wide (always the case
/// over full populations), or `None` for ragged rows.
fn uniform_stride(offsets: &[u32]) -> Option<u32> {
    let first = offsets.get(1)? - offsets[0];
    offsets
        .windows(2)
        .all(|pair| pair[1] - pair[0] == first)
        .then_some(first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{default_route_hop_limit, route_with_limit};
    use crate::traits::Overlay;
    use crate::{CanOverlay, ChordOverlay, ChordVariant, KademliaOverlay, SymphonyOverlay};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ring_kernel_precomputes_sorted_advances() {
        let overlay = ChordOverlay::build(6, ChordVariant::Deterministic).unwrap();
        let kernel = overlay.kernel().expect("ring compiles");
        assert_eq!(kernel.rule(), KernelRule::RingAdvance);
        assert_eq!(kernel.entry_count(), 64 * 6);
        assert!(kernel.plan_bytes() > 0);
        // Deterministic fingers advance by 1, 2, 4, ..., already sorted.
        let mask = FailureMask::none(overlay.key_space());
        let lowered = kernel.compile_mask(&mask);
        let space = overlay.key_space();
        let hop = kernel
            .next_hop(&lowered, space.wrap(0), space.wrap(48))
            .unwrap();
        assert_eq!(hop, space.wrap(32), "longest non-overshooting finger");
    }

    #[test]
    fn kernel_route_matches_scalar_route_spot_checks() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let overlay = KademliaOverlay::build(10, &mut rng).unwrap();
        let kernel = overlay.kernel().expect("xor compiles");
        let space = overlay.key_space();
        let mask = FailureMask::sample(space, 0.3, &mut rng);
        let lowered = kernel.compile_mask(&mask);
        let limit = default_route_hop_limit(&overlay);
        for _ in 0..500 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            assert_eq!(
                kernel.route(&lowered, source, target, limit),
                route_with_limit(&overlay, source, target, &mask, limit),
            );
        }
    }

    #[test]
    fn hop_limit_is_reported_identically() {
        let overlay = CanOverlay::build(6).unwrap();
        let kernel = overlay.kernel().expect("hypercube compiles");
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let lowered = kernel.compile_mask(&mask);
        let source = space.wrap(0);
        let target = space.wrap(0b111111);
        assert_eq!(
            kernel.route(&lowered, source, target, 3),
            RouteOutcome::HopLimitExceeded { limit: 3 },
        );
        assert_eq!(
            kernel.route(&lowered, source, target, 3),
            route_with_limit(&overlay, source, target, &mask, 3),
        );
    }

    #[test]
    fn sparse_kernels_compress_the_mask_by_rank() {
        let space = dht_id::KeySpace::new(10).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let population = Population::sample_uniform(space, 200, &mut rng).unwrap();
        let overlay = SymphonyOverlay::build_over(population, 1, 2, &mut rng).unwrap();
        let kernel = overlay.kernel().expect("symphony compiles");
        let mask = FailureMask::sample_over(overlay.population(), 0.4, &mut rng);
        let lowered = kernel.compile_mask(&mask);
        assert!(matches!(lowered, KernelMask::Compressed(_)));
        for (rank, node) in overlay.population().iter_nodes().enumerate() {
            assert_eq!(lowered.is_alive_rank(rank as u32), mask.is_alive(node));
        }
    }

    #[test]
    fn sparse_lowering_is_memoized_per_mask_generation() {
        let space = dht_id::KeySpace::new(10).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let population = Population::sample_uniform(space, 300, &mut rng).unwrap();
        let overlay =
            ChordOverlay::build_over(population, ChordVariant::Randomized, &mut rng).unwrap();
        let kernel = overlay.kernel().expect("ring compiles");
        let mut mask = FailureMask::sample_over(overlay.population(), 0.3, &mut rng);

        let (KernelMask::Compressed(first), KernelMask::Compressed(second)) =
            (kernel.compile_mask(&mask), kernel.compile_mask(&mask))
        else {
            panic!("sparse populations lower to compressed masks");
        };
        assert!(
            Arc::ptr_eq(&first, &second),
            "unmutated mask reuses the cached lowering"
        );

        // A clone keeps the generation (same content), so it still hits.
        let clone = mask.clone();
        let KernelMask::Compressed(cloned) = kernel.compile_mask(&clone) else {
            panic!("sparse lowering");
        };
        assert!(Arc::ptr_eq(&first, &cloned));

        // Mutation re-stamps the mask: the cache misses and the fresh
        // lowering reflects the new content.
        let victim = mask.alive_nodes().next().expect("someone survived");
        assert!(mask.kill(victim));
        let relowered = kernel.compile_mask(&mask);
        let KernelMask::Compressed(words) = &relowered else {
            panic!("sparse lowering");
        };
        assert!(!Arc::ptr_eq(&first, words), "mutated mask relowers");
        for (rank, node) in overlay.population().iter_nodes().enumerate() {
            assert_eq!(relowered.is_alive_rank(rank as u32), mask.is_alive(node));
        }
    }

    #[test]
    #[should_panic(expected = "different population")]
    fn mask_population_mismatch_is_rejected() {
        let space = dht_id::KeySpace::new(8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let population = Population::sample_uniform(space, 50, &mut rng).unwrap();
        let overlay =
            ChordOverlay::build_over(population, ChordVariant::Randomized, &mut rng).unwrap();
        let kernel = overlay.kernel().unwrap();
        // A full-space mask over a 50-node overlay is a caller bug.
        let _ = kernel.compile_mask(&FailureMask::none(space));
    }

    #[test]
    fn unoccupied_current_has_no_next_hop() {
        let space = dht_id::KeySpace::new(8).unwrap();
        let population =
            Population::sparse(space, [space.wrap(10), space.wrap(200), space.wrap(90)]).unwrap();
        let overlay = ChordOverlay::build_over(
            population,
            ChordVariant::Deterministic,
            &mut crate::generic::NoRandomness,
        )
        .unwrap();
        let kernel = overlay.kernel().unwrap();
        let mask = FailureMask::none_over(overlay.population());
        let lowered = kernel.compile_mask(&mask);
        assert_eq!(
            kernel.next_hop(&lowered, space.wrap(11), space.wrap(90)),
            None
        );
        assert_eq!(
            kernel.next_hop(&lowered, space.wrap(10), space.wrap(10)),
            None,
            "arrived: no hop makes progress"
        );
    }
}
