//! The Kademlia-style XOR overlay (§3.3 of the paper).

use crate::failure::FailureMask;
use crate::generic::{GeometryOverlay, GeometryStrategy};
use crate::traits::{validate_bits, Overlay, OverlayError};
use dht_id::{distance::xor_distance, KeySpace, NodeId, Population};
use rand::Rng;

/// The XOR geometry as a [`GeometryStrategy`]: one contact per bucket,
/// forwarding to whichever alive contact is XOR-closest to the target.
///
/// Bucket `i` of node `a` is the subtree of identifiers sharing `a`'s first
/// `i` bits and differing at bit `i` — a contiguous, aligned range of raw
/// values. Over a full population the contact is `a` with bit `i` flipped and
/// a uniformly random suffix (the paper's construction); over a sparse one it
/// is drawn uniformly from the *occupied* identifiers of that range, and an
/// empty bucket stores the node itself as a placeholder (ignored while
/// routing).
#[derive(Debug, Clone, Copy, Default)]
pub struct KademliaStrategy;

/// The inclusive raw-value range of the bucket subtree: identifiers matching
/// `node` on bits `0..bucket` (MSB-first) and differing at bit `bucket`.
fn bucket_range(node: NodeId, bucket: u32) -> (u64, u64) {
    let bits = node.bits();
    let flipped = node
        .flip_bit(bucket)
        .expect("bucket index is within the key space");
    let suffix_bits = bits - bucket - 1;
    let suffix_mask = if suffix_bits == 0 {
        0
    } else {
        (1u64 << suffix_bits) - 1
    };
    let lo = flipped.value() & !suffix_mask;
    (lo, lo | suffix_mask)
}

/// Pushes one prefix-bucket contact per level, shared by the XOR and tree
/// geometries (their routing tables are structurally identical; §3.3).
pub(crate) fn build_prefix_table<R: Rng + ?Sized>(
    population: &Population,
    node: NodeId,
    rng: &mut R,
    table: &mut Vec<NodeId>,
) {
    let space = population.space();
    let bits = space.bits();
    if population.is_full() {
        for bucket in 0..bits {
            // Bucket `bucket` (0 = widest): flip bit `bucket`, randomise
            // everything below it.
            let random_suffix = space.random_id(rng);
            table.push(
                node.flip_bit(bucket)
                    .expect("bucket index is within the key space")
                    .splice_prefix(bucket + 1, random_suffix)
                    .expect("identifier widths match"),
            );
        }
    } else {
        for bucket in 0..bits {
            let (lo, hi) = bucket_range(node, bucket);
            match population.random_in_range(lo, hi, rng) {
                Some(contact) => table.push(contact),
                // No occupied identifier in this subtree: store the node
                // itself; next-hop rules never select a zero-progress entry.
                None => table.push(node),
            }
        }
    }
}

/// The live construction family shared by the XOR and tree geometries: per
/// bucket, draw a uniform starting point in the subtree *before* looking at
/// the alive set (membership-independent, the live-family purity contract),
/// then store the first alive occupied identifier cyclically from it — or the
/// node itself when the subtree holds no alive node.
pub(crate) fn build_live_prefix_table(
    population: &Population,
    node: NodeId,
    node_seed: u64,
    alive: &FailureMask,
    table: &mut Vec<NodeId>,
) {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(node_seed);
    let bits = population.space().bits();
    for bucket in 0..bits {
        let (lo, hi) = bucket_range(node, bucket);
        let from = rng.gen_range(lo..=hi);
        match crate::live::alive_in_range_cyclic(population, alive, lo, hi, from, None) {
            Some(contact) => table.push(contact),
            None => table.push(node),
        }
    }
}

/// Join candidates for the prefix geometries. At each level the joiner's own
/// subtree (the *home block*) is where other nodes' level contacts pointing
/// at it live:
///
/// * if another alive node exists there, every contact the join changes
///   previously resolved to the first alive member cyclically after the
///   joiner — a single witness (`alive_in_range_cyclic` was first-alive from
///   the owner's drawn point, and the joiner landing inside `[point, old)`
///   means `old` is also first-alive from `joiner + 1`);
/// * otherwise every alive owner (the occupied nodes of the *sibling* block
///   at that level) held a self placeholder that no reverse edge records, so
///   they are all recomputed directly.
pub(crate) fn live_prefix_repair_candidates(
    population: &Population,
    node: NodeId,
    alive: &FailureMask,
    witnesses: &mut Vec<NodeId>,
    direct: &mut Vec<NodeId>,
) {
    let bits = population.space().bits();
    for bucket in 0..bits {
        let flipped = node
            .flip_bit(bucket)
            .expect("bucket index is within the key space");
        let (home_lo, home_hi) = bucket_range(flipped, bucket);
        debug_assert!(home_lo <= node.value() && node.value() <= home_hi);
        let from = if node.value() == home_hi {
            home_lo
        } else {
            node.value() + 1
        };
        match crate::live::alive_in_range_cyclic(
            population,
            alive,
            home_lo,
            home_hi,
            from,
            Some(node),
        ) {
            Some(witness) => witnesses.push(witness),
            None => {
                let (own_lo, own_hi) = bucket_range(node, bucket);
                crate::live::for_each_alive_in_range(population, alive, own_lo, own_hi, |owner| {
                    direct.push(owner);
                });
            }
        }
    }
}

impl GeometryStrategy for KademliaStrategy {
    fn geometry_name(&self) -> &'static str {
        "xor"
    }

    fn table_len_hint(&self, population: &Population) -> usize {
        population.space().bits() as usize
    }

    fn build_table<R: Rng + ?Sized>(
        &self,
        population: &Population,
        node: NodeId,
        rng: &mut R,
        table: &mut Vec<NodeId>,
    ) {
        build_prefix_table(population, node, rng, table);
    }

    fn next_hop(
        &self,
        neighbors: &[NodeId],
        current: NodeId,
        target: NodeId,
        alive: &FailureMask,
    ) -> Option<NodeId> {
        let current_distance = xor_distance(current, target);
        neighbors
            .iter()
            .copied()
            .filter(|&n| alive.is_alive(n) && xor_distance(n, target) < current_distance)
            .min_by_key(|&n| xor_distance(n, target))
    }

    fn kernel_rule(&self) -> Option<crate::kernel::KernelRule> {
        // Hop key: the contact's value at its bucket position; the bucket of
        // the highest differing bit is provably the XOR minimum when alive.
        Some(crate::kernel::KernelRule::PrefixXor)
    }

    fn implicit_stream_words(&self, population: &Population) -> Option<u64> {
        // Full-population buckets draw one `random_id` (one `next_u64`, two
        // words) per bucket, unconditionally. Sparse bucket sampling draws a
        // variable number of words (rejection against occupancy), so only the
        // full construction has a fixed stream offset per rank.
        population
            .is_full()
            .then(|| 2 * u64::from(population.space().bits()))
    }

    fn supports_live(&self) -> bool {
        true
    }

    fn live_table_width(&self, population: &Population) -> usize {
        population.space().bits() as usize
    }

    fn build_live_table(
        &self,
        population: &Population,
        node: NodeId,
        node_seed: u64,
        alive: &FailureMask,
        table: &mut Vec<NodeId>,
    ) {
        build_live_prefix_table(population, node, node_seed, alive, table);
    }

    fn live_repair_candidates(
        &self,
        population: &Population,
        node: NodeId,
        alive: &FailureMask,
        witnesses: &mut Vec<NodeId>,
        direct: &mut Vec<NodeId>,
    ) {
        live_prefix_repair_candidates(population, node, alive, witnesses, direct);
    }
}

/// An XOR-metric overlay modelling the basic Kademlia geometry: one contact
/// per bucket.
///
/// The `i`-th contact of a node is drawn uniformly from XOR distance
/// `[2^{d−i}, 2^{d−i+1})`, which (as §3.3 of the paper notes) is the same as
/// matching the node's first `i − 1` bits, flipping the `i`-th, and choosing
/// the remaining bits at random — structurally a Plaxton table. The
/// difference is the forwarding rule: the message goes to whichever alive
/// contact is XOR-closest to the target, so when the optimal contact is dead
/// a lower-order bucket can still make progress.
///
/// # Example
///
/// ```rust
/// use dht_overlay::{KademliaOverlay, Overlay};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(2);
/// let overlay = KademliaOverlay::build(12, &mut rng)?;
/// assert_eq!(overlay.node_count(), 4096);
/// # Ok::<(), dht_overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KademliaOverlay {
    inner: GeometryOverlay<KademliaStrategy>,
}

impl KademliaOverlay {
    /// Builds the fully populated XOR overlay with one random contact per
    /// bucket.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] if `bits` is zero or larger
    /// than [`crate::traits::MAX_OVERLAY_BITS`] (the materialized ceiling —
    /// [`crate::ImplicitOverlay::xor`] routes larger full populations).
    pub fn build<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> Result<Self, OverlayError> {
        let space = validate_bits(bits)?;
        Self::build_over(Population::full(space), rng)
    }

    /// Builds the overlay over an arbitrary (possibly sparse) population;
    /// bucket contacts are drawn uniformly from the occupied identifiers of
    /// each bucket subtree.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] or
    /// [`OverlayError::InvalidParameter`] as in [`GeometryOverlay::build`].
    pub fn build_over<R: Rng + ?Sized>(
        population: Population,
        rng: &mut R,
    ) -> Result<Self, OverlayError> {
        Ok(KademliaOverlay {
            inner: GeometryOverlay::build(population, KademliaStrategy, rng)?,
        })
    }

    /// The contact stored in bucket `bucket` (0 = the bucket covering the far
    /// half of the identifier space). Over a sparse population an empty
    /// bucket reports the node itself.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= d` or `node` is not an occupied identifier of the
    /// overlay.
    #[must_use]
    pub fn bucket_contact(&self, node: NodeId, bucket: u32) -> NodeId {
        self.inner.neighbors(node)[bucket as usize]
    }
}

impl Overlay for KademliaOverlay {
    fn geometry_name(&self) -> &'static str {
        self.inner.geometry_name()
    }

    fn key_space(&self) -> KeySpace {
        self.inner.key_space()
    }

    fn population(&self) -> &Population {
        self.inner.population()
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.inner.neighbors(node)
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        self.inner.next_hop(current, target, alive)
    }

    fn edge_count(&self) -> u64 {
        self.inner.edge_count()
    }

    fn kernel(&self) -> Option<&crate::kernel::RoutingKernel> {
        self.inner.routing_kernel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route, RouteOutcome};
    use dht_id::prefix::common_prefix_len;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(bits: u32, seed: u64) -> KademliaOverlay {
        KademliaOverlay::build(bits, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn bucket_contacts_cover_the_right_distance_ranges() {
        let overlay = build(10, 1);
        let space = overlay.key_space();
        for node in space.iter_ids().step_by(37) {
            for bucket in 0..10u32 {
                let contact = overlay.bucket_contact(node, bucket);
                let distance = xor_distance(node, contact);
                let lower = 1u64 << (9 - bucket);
                let upper = 1u64 << (10 - bucket);
                assert!(
                    distance >= lower && distance < upper,
                    "bucket {bucket}: distance {distance} outside [{lower}, {upper})"
                );
                assert_eq!(common_prefix_len(node, contact), bucket);
            }
        }
    }

    #[test]
    fn perfect_network_resolves_one_bit_per_hop() {
        let overlay = build(12, 2);
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..200 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            match route(&overlay, source, target, &mask) {
                RouteOutcome::Delivered { hops } => assert!(hops <= 12),
                other => panic!("route failed without failures: {other:?}"),
            }
        }
    }

    #[test]
    fn xor_distance_strictly_decreases_along_the_route() {
        let overlay = build(12, 3);
        let space = overlay.key_space();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mask = FailureMask::sample(space, 0.2, &mut rng);
        let mut checked = 0;
        for _ in 0..100 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            if mask.is_failed(source) || mask.is_failed(target) {
                continue;
            }
            let mut current = source;
            let mut distance = xor_distance(current, target);
            while let Some(next) = overlay.next_hop(current, target, &mask) {
                let next_distance = xor_distance(next, target);
                assert!(next_distance < distance);
                current = next;
                distance = next_distance;
                if current == target {
                    break;
                }
            }
            checked += 1;
        }
        assert!(checked > 20, "not enough surviving pairs to be meaningful");
    }

    #[test]
    fn falls_back_to_lower_order_buckets_under_failure() {
        // Fig. 5(a) scenario: the optimal first contact is dead but a
        // lower-order contact keeps the message moving.
        let overlay = build(10, 4);
        let space = overlay.key_space();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut observed_fallback = false;
        for _ in 0..200 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            if source == target {
                continue;
            }
            let optimal_bucket = common_prefix_len(source, target);
            let optimal = overlay.bucket_contact(source, optimal_bucket);
            if optimal == target {
                continue;
            }
            let mask = FailureMask::from_failed_nodes(space, [optimal]);
            if let Some(next) = overlay.next_hop(source, target, &mask) {
                assert_ne!(next, optimal);
                assert!(xor_distance(next, target) < xor_distance(source, target));
                observed_fallback = true;
            }
        }
        assert!(observed_fallback, "never exercised the fallback path");
    }

    #[test]
    fn more_robust_than_the_tree_overlay_under_the_same_failures() {
        let bits = 10;
        let seed = 77;
        let kademlia = build(bits, seed);
        let tree =
            crate::plaxton::PlaxtonOverlay::build(bits, &mut ChaCha8Rng::seed_from_u64(seed))
                .unwrap();
        let space = kademlia.key_space();
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let mask = FailureMask::sample(space, 0.3, &mut rng);
        let mut kademlia_ok = 0u32;
        let mut tree_ok = 0u32;
        for _ in 0..2000 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            if mask.is_failed(source) || mask.is_failed(target) {
                continue;
            }
            if route(&kademlia, source, target, &mask).is_delivered() {
                kademlia_ok += 1;
            }
            if route(&tree, source, target, &mask).is_delivered() {
                tree_ok += 1;
            }
        }
        assert!(
            kademlia_ok > tree_ok,
            "XOR fallback should beat the tree: {kademlia_ok} vs {tree_ok}"
        );
    }

    #[test]
    fn rejects_oversized_spaces() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(KademliaOverlay::build(0, &mut rng).is_err());
        assert!(KademliaOverlay::build(33, &mut rng).is_err());
    }

    #[test]
    fn sparse_bucket_contacts_stay_inside_their_subtree() {
        let space = KeySpace::new(10).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let population = Population::sample_uniform(space, 200, &mut rng).unwrap();
        let overlay = KademliaOverlay::build_over(population.clone(), &mut rng).unwrap();
        for node in overlay.population().iter_nodes() {
            for bucket in 0..10u32 {
                let contact = overlay.bucket_contact(node, bucket);
                if contact == node {
                    // Placeholder: the subtree holds no occupied identifier.
                    let (lo, hi) = bucket_range(node, bucket);
                    assert!(population.random_in_range(lo, hi, &mut rng).is_none());
                } else {
                    assert!(population.contains(contact));
                    assert_eq!(common_prefix_len(node, contact), bucket);
                }
            }
        }
    }

    #[test]
    fn sparse_intact_network_always_delivers() {
        // The bucket subtree containing the target always contains at least
        // the target itself, so greedy XOR routing cannot strand a message in
        // an intact sparse network.
        let space = KeySpace::new(12).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let population = Population::sample_uniform(space, 1 << 9, &mut rng).unwrap();
        let overlay = KademliaOverlay::build_over(population, &mut rng).unwrap();
        let mask = FailureMask::none_over(overlay.population());
        for _ in 0..200 {
            let source = overlay.population().random_node(&mut rng);
            let target = overlay.population().random_node(&mut rng);
            match route(&overlay, source, target, &mask) {
                RouteOutcome::Delivered { hops } => assert!(hops <= 12),
                other => panic!("sparse XOR route failed without failures: {other:?}"),
            }
        }
    }
}
