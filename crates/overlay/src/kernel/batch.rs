//! Batched lockstep routing: a structure-of-arrays frontier over the
//! compiled kernel.
//!
//! [`RoutingKernel::route_values`] routes one lookup at a time, and on
//! DRAM-resident plans (2^20 nodes and up) each hop is a dependent pointer
//! chase: load the CSR row, probe the alive bitset, only then know the next
//! rank. A single in-flight lookup leaves the memory system idle for most of
//! that latency.
//!
//! [`RouteBatch`] fixes the utilization problem without touching the routing
//! semantics. It holds a **frontier** of in-flight lookups in parallel arrays
//! (structure-of-arrays: ranks together, cursors together, …) and
//! [`RoutingKernel::route_batch`] advances the *whole frontier by one hop per
//! pass*. While lane `i`'s freshly computed next rank is still cooling, its
//! plan row is software-prefetched (`prefetch_read`) and the pass moves on
//! to lane `i + 1` — by the time the next pass returns to lane `i`, the row
//! is (ideally) already in cache. With 64–256 lanes the dependent chains of
//! independent lookups overlap and the batch approaches the DRAM bandwidth
//! limit instead of the latency limit.
//!
//! Lanes whose lookup resolves (delivered, dropped, hop limit) **retire**:
//! the outcome is written to the caller's slot and the lane is compacted out
//! by a swap with the last lane, so the frontier stays dense. Between passes
//! the frontier **refills** from the pending pair slice, so short routes do
//! not drain the batch below full occupancy while long routes finish.
//!
//! Outcomes are **bit-identical** per lookup to [`RoutingKernel::route_values`]:
//! every lane replays exactly the scalar route loop — same admission checks
//! in the same order, same per-rule hop helper, same tie-breaking — and
//! routing is read-only, so lanes cannot interact. The `batch_equivalence`
//! proptest suite holds all five geometries to this, full and sparse
//! populations alike, which is what lets `dht_sim`'s trial engine route its
//! shards through the batch path without perturbing one committed
//! measurement.

use super::{ring_distance_raw, KernelMask, KernelRule, RoutingKernel};
use crate::router::RouteOutcome;

/// The default frontier width of [`RouteBatch::default`]: wide enough to
/// cover DRAM latency with independent work (~100 ns per miss against
/// ~5 ns of per-lane bookkeeping), small enough that the frontier's own
/// arrays (~4 KiB) stay resident in L1.
pub const DEFAULT_BATCH_WIDTH: usize = 128;

/// A structure-of-arrays frontier of in-flight lookups for
/// [`RoutingKernel::route_batch`].
///
/// All arrays are indexed by **lane**; lane `i`'s fields describe one
/// lookup currently being routed. The batch owns only scratch state — it
/// carries no results between calls and one allocation can be reused across
/// any number of `route_batch` calls (the trial engine keeps one per worker
/// thread).
///
/// The per-lane progress representation mirrors the scalar route loops: ring
/// lanes track the *remaining clockwise distance* (zero = arrival), prefix
/// lanes (XOR, tree) track the *current identifier value*, hypercube lanes
/// track the *remaining XOR diff*. The rule is a property of the kernel, not
/// the batch, so one batch can be reused across kernels of different rules.
#[derive(Debug, Clone)]
pub struct RouteBatch {
    /// Lane → occupied rank currently holding the message.
    pub(super) current_rank: Vec<u32>,
    /// Lane → rule-dependent progress cursor: remaining clockwise distance
    /// (ring), current identifier value (XOR/tree), remaining XOR diff
    /// (hypercube).
    pub(super) current: Vec<u64>,
    /// Lane → target identifier value (arrival test for the prefix rules,
    /// `stuck_at` reconstruction for the hypercube).
    pub(super) target: Vec<u64>,
    /// Lane → hops taken so far.
    pub(super) hops: Vec<u32>,
    /// Lane → index of this lookup's slot in the caller's outcome buffer.
    pub(super) slot: Vec<u32>,
    /// Maximum number of in-flight lanes.
    pub(super) width: usize,
}

impl RouteBatch {
    /// Creates a frontier of at most `width` in-flight lookups (clamped to at
    /// least 1).
    ///
    /// Widths of 64–256 cover DRAM latency on the 2^20 cases; the width only
    /// affects throughput, never outcomes.
    #[must_use]
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        RouteBatch {
            current_rank: Vec::with_capacity(width),
            current: Vec::with_capacity(width),
            target: Vec::with_capacity(width),
            hops: Vec::with_capacity(width),
            slot: Vec::with_capacity(width),
            width,
        }
    }

    /// The maximum number of in-flight lookups.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of lookups currently in flight (zero outside
    /// [`RoutingKernel::route_batch`]).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.current_rank.len()
    }

    /// Drops any in-flight lanes (a batch is always drained on return from
    /// `route_batch`; this is a belt-and-braces reset at entry).
    pub(super) fn clear(&mut self) {
        self.current_rank.clear();
        self.current.clear();
        self.target.clear();
        self.hops.clear();
        self.slot.clear();
    }

    /// Admits a lookup into a fresh lane.
    pub(super) fn push(&mut self, rank: u32, cursor: u64, target: u64, slot: u32) {
        self.current_rank.push(rank);
        self.current.push(cursor);
        self.target.push(target);
        self.hops.push(0);
        self.slot.push(slot);
    }

    /// Retires `lane` with `outcome`, compacting the frontier by swapping the
    /// last lane into its place. The swapped-in lane has not been advanced
    /// yet in the current pass (passes walk lanes in ascending order), so the
    /// caller re-processes the same index.
    #[inline]
    pub(super) fn retire(
        &mut self,
        lane: usize,
        outcome: RouteOutcome,
        outcomes: &mut [RouteOutcome],
    ) {
        outcomes[self.slot[lane] as usize] = outcome;
        self.current_rank.swap_remove(lane);
        self.current.swap_remove(lane);
        self.target.swap_remove(lane);
        self.hops.swap_remove(lane);
        self.slot.swap_remove(lane);
    }
}

impl Default for RouteBatch {
    fn default() -> Self {
        RouteBatch::new(DEFAULT_BATCH_WIDTH)
    }
}

impl RoutingKernel {
    /// Routes every `(source, target)` pair of `pairs` under a pre-resolved
    /// rank-indexed alive bitset, filling `outcomes` so `outcomes[i]` is the
    /// outcome of `pairs[i]` — bit-identical to calling
    /// [`RoutingKernel::route_ranked`] per pair, but with up to
    /// [`RouteBatch::width`] lookups in flight at once.
    ///
    /// `alive_words` follows the [`RoutingKernel::route_ranked`] contract
    /// (bit `r` set iff the rank-`r` occupied node is alive). The batch is
    /// pure scratch: it is cleared on entry and drained on return.
    ///
    /// The loop structure is lockstep: admit pairs until the frontier is full
    /// (lookups that resolve at admission — failed endpoints, source ==
    /// target — write their outcome immediately and never occupy a lane),
    /// advance every lane by one hop, retire and compact resolved lanes,
    /// refill, repeat until both the frontier and the pending slice are
    /// empty.
    pub fn route_batch(
        &self,
        batch: &mut RouteBatch,
        alive_words: &[u64],
        pairs: &[(u64, u64)],
        hop_limit: u32,
        outcomes: &mut Vec<RouteOutcome>,
    ) {
        assert!(
            u32::try_from(pairs.len()).is_ok(),
            "route_batch slices are indexed by u32 slots"
        );
        outcomes.clear();
        // Placeholder only: every slot is overwritten, either at admission or
        // when its lane retires (the hop limit bounds every route).
        outcomes.resize(pairs.len(), RouteOutcome::SourceFailed);
        batch.clear();
        let mut next = 0usize;
        loop {
            while batch.in_flight() < batch.width && next < pairs.len() {
                let (source, target) = pairs[next];
                if let Some(done) = self.admit(batch, alive_words, source, target, next as u32) {
                    outcomes[next] = done;
                }
                next += 1;
            }
            if batch.in_flight() == 0 {
                break;
            }
            match self.rule {
                KernelRule::RingAdvance => self.ring_pass(batch, alive_words, hop_limit, outcomes),
                KernelRule::PrefixXor => self.xor_pass(batch, alive_words, hop_limit, outcomes),
                KernelRule::PrefixTree => self.tree_pass(batch, alive_words, hop_limit, outcomes),
                KernelRule::HypercubeBit => self.cube_pass(batch, alive_words, hop_limit, outcomes),
            }
        }
    }

    /// [`RoutingKernel::route_batch`] over a lowered [`KernelMask`]: the mask
    /// representation is resolved to its bitset words once for the whole
    /// batch.
    pub fn route_batch_masked(
        &self,
        batch: &mut RouteBatch,
        mask: &KernelMask<'_>,
        pairs: &[(u64, u64)],
        hop_limit: u32,
        outcomes: &mut Vec<RouteOutcome>,
    ) {
        self.route_batch(batch, mask.words(), pairs, hop_limit, outcomes);
    }

    /// Runs the scalar path's admission prelude for one pair: endpoint
    /// aliveness in source-then-target order, then the rule's trivial-arrival
    /// check. Returns the outcome when the lookup resolves immediately, or
    /// `None` after pushing a lane (prefetching its first plan row).
    #[inline]
    fn admit(
        &self,
        batch: &mut RouteBatch,
        words: &[u64],
        source: u64,
        target: u64,
        slot: u32,
    ) -> Option<RouteOutcome> {
        debug_assert!(source <= self.space.max_value(), "source outside the space");
        debug_assert!(target <= self.space.max_value(), "target outside the space");
        let Some(source_rank) = self.alive_rank_of(words, source) else {
            return Some(RouteOutcome::SourceFailed);
        };
        if self.alive_rank_of(words, target).is_none() {
            return Some(RouteOutcome::TargetFailed);
        }
        let cursor = match self.rule {
            KernelRule::RingAdvance => {
                let remaining = ring_distance_raw(source, target, self.space);
                if remaining == 0 {
                    return Some(RouteOutcome::Delivered { hops: 0 });
                }
                remaining
            }
            KernelRule::PrefixXor | KernelRule::PrefixTree => {
                if source == target {
                    return Some(RouteOutcome::Delivered { hops: 0 });
                }
                source
            }
            KernelRule::HypercubeBit => {
                let diff = source ^ target;
                if diff == 0 {
                    return Some(RouteOutcome::Delivered { hops: 0 });
                }
                diff
            }
        };
        self.prefetch_row(source_rank);
        batch.push(source_rank, cursor, target, slot);
        None
    }

    /// One lockstep pass of the ring rule: every lane takes the hop
    /// [`RoutingKernel::route_values`] would take, in lane order.
    fn ring_pass(
        &self,
        batch: &mut RouteBatch,
        words: &[u64],
        hop_limit: u32,
        outcomes: &mut [RouteOutcome],
    ) {
        let mut lane = 0usize;
        while lane < batch.in_flight() {
            let hops = batch.hops[lane];
            if hops >= hop_limit {
                batch.retire(
                    lane,
                    RouteOutcome::HopLimitExceeded { limit: hop_limit },
                    outcomes,
                );
                continue;
            }
            let rank = batch.current_rank[lane];
            let remaining = batch.current[lane];
            match self.ring_hop(words, rank, remaining) {
                Some((advance, next)) => {
                    let left = remaining - advance;
                    if left == 0 {
                        batch.retire(lane, RouteOutcome::Delivered { hops: hops + 1 }, outcomes);
                        continue;
                    }
                    batch.current[lane] = left;
                    batch.current_rank[lane] = next;
                    batch.hops[lane] = hops + 1;
                    self.prefetch_row(next);
                    lane += 1;
                }
                None => {
                    batch.retire(
                        lane,
                        RouteOutcome::Dropped {
                            hops,
                            stuck_at: self.space.wrap(self.value_of(rank)),
                        },
                        outcomes,
                    );
                }
            }
        }
    }

    /// One lockstep pass of the XOR (Kademlia) rule.
    fn xor_pass(
        &self,
        batch: &mut RouteBatch,
        words: &[u64],
        hop_limit: u32,
        outcomes: &mut [RouteOutcome],
    ) {
        let mut lane = 0usize;
        while lane < batch.in_flight() {
            let hops = batch.hops[lane];
            if hops >= hop_limit {
                batch.retire(
                    lane,
                    RouteOutcome::HopLimitExceeded { limit: hop_limit },
                    outcomes,
                );
                continue;
            }
            let rank = batch.current_rank[lane];
            let current = batch.current[lane];
            let target = batch.target[lane];
            match self.xor_hop(words, rank, current, target) {
                Some((value, next)) => {
                    if value == target {
                        batch.retire(lane, RouteOutcome::Delivered { hops: hops + 1 }, outcomes);
                        continue;
                    }
                    batch.current[lane] = value;
                    batch.current_rank[lane] = next;
                    batch.hops[lane] = hops + 1;
                    self.prefetch_row(next);
                    lane += 1;
                }
                None => {
                    batch.retire(
                        lane,
                        RouteOutcome::Dropped {
                            hops,
                            stuck_at: self.space.wrap(current),
                        },
                        outcomes,
                    );
                }
            }
        }
    }

    /// One lockstep pass of the tree (Plaxton) rule.
    fn tree_pass(
        &self,
        batch: &mut RouteBatch,
        words: &[u64],
        hop_limit: u32,
        outcomes: &mut [RouteOutcome],
    ) {
        let mut lane = 0usize;
        while lane < batch.in_flight() {
            let hops = batch.hops[lane];
            if hops >= hop_limit {
                batch.retire(
                    lane,
                    RouteOutcome::HopLimitExceeded { limit: hop_limit },
                    outcomes,
                );
                continue;
            }
            let rank = batch.current_rank[lane];
            let current = batch.current[lane];
            let target = batch.target[lane];
            match self.tree_hop(words, rank, current, target) {
                Some((value, next)) => {
                    if value == target {
                        batch.retire(lane, RouteOutcome::Delivered { hops: hops + 1 }, outcomes);
                        continue;
                    }
                    batch.current[lane] = value;
                    batch.current_rank[lane] = next;
                    batch.hops[lane] = hops + 1;
                    self.prefetch_row(next);
                    lane += 1;
                }
                None => {
                    batch.retire(
                        lane,
                        RouteOutcome::Dropped {
                            hops,
                            stuck_at: self.space.wrap(current),
                        },
                        outcomes,
                    );
                }
            }
        }
    }

    /// One lockstep pass of the hypercube rule. Lanes track the remaining XOR
    /// diff; the held identifier is always `target ^ diff`.
    fn cube_pass(
        &self,
        batch: &mut RouteBatch,
        words: &[u64],
        hop_limit: u32,
        outcomes: &mut [RouteOutcome],
    ) {
        let mut lane = 0usize;
        while lane < batch.in_flight() {
            let hops = batch.hops[lane];
            if hops >= hop_limit {
                batch.retire(
                    lane,
                    RouteOutcome::HopLimitExceeded { limit: hop_limit },
                    outcomes,
                );
                continue;
            }
            let rank = batch.current_rank[lane];
            let diff = batch.current[lane];
            match self.cube_hop(words, rank, diff) {
                Some((weight, next)) => {
                    let left = diff ^ weight;
                    if left == 0 {
                        batch.retire(lane, RouteOutcome::Delivered { hops: hops + 1 }, outcomes);
                        continue;
                    }
                    batch.current[lane] = left;
                    batch.current_rank[lane] = next;
                    batch.hops[lane] = hops + 1;
                    self.prefetch_row(next);
                    lane += 1;
                }
                None => {
                    batch.retire(
                        lane,
                        RouteOutcome::Dropped {
                            hops,
                            stuck_at: self.space.wrap(batch.target[lane] ^ diff),
                        },
                        outcomes,
                    );
                }
            }
        }
    }

    /// Prefetches the plan row of `rank` for the next pass.
    ///
    /// Fixed-stride plans (every full population) know the row address
    /// without a load, so the entry line itself is prefetched — two lines for
    /// wide rows, because the ring scan reads deeper into the row as the
    /// remaining distance shrinks. Ragged plans would need `offsets[rank]`
    /// first, so only that offset line is prefetched and the entry row is
    /// left to the demand load.
    #[inline]
    fn prefetch_row(&self, rank: u32) {
        match self.stride {
            Some(stride) => {
                let start = rank as usize * stride as usize;
                prefetch_read(&self.entries, start);
                if stride > 8 {
                    // A PlanEntry is 8 bytes: lines hold 8 entries.
                    prefetch_read(&self.entries, start + 8);
                }
            }
            None => prefetch_read(&self.offsets, rank as usize),
        }
    }
}

/// Best-effort software prefetch of `slice[index]` into the innermost cache.
///
/// A hint only: it never faults, never reads out of bounds (out-of-range
/// indices are ignored), and compiles to nothing on architectures without a
/// stable prefetch primitive — the batch path is then still correct, just
/// latency-bound. The `unsafe` is confined to the intrinsic/instruction
/// itself; the pointer is derived from a live slice and bounds-checked above.
#[inline(always)]
pub(crate) fn prefetch_read<T>(slice: &[T], index: usize) {
    if index >= slice.len() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    // SAFETY: `_mm_prefetch` performs no memory access (architecturally a
    // hint that cannot fault), and the pointer points into a live slice.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(slice.as_ptr().add(index).cast::<i8>());
    }
    #[cfg(target_arch = "aarch64")]
    #[allow(unsafe_code)]
    // SAFETY: `prfm pldl1keep` is a hint that cannot fault, reads no
    // registers but the address, and writes nothing.
    unsafe {
        let ptr = slice.as_ptr().add(index);
        core::arch::asm!(
            "prfm pldl1keep, [{ptr}]",
            ptr = in(reg) ptr,
            options(readonly, nostack, preserves_flags),
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        // No stable prefetch on this target: the hint degrades to a no-op.
        let _ = (slice, index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureMask;
    use crate::router::default_route_hop_limit;
    use crate::traits::Overlay;
    use crate::{ChordOverlay, ChordVariant};

    #[test]
    fn prefetch_is_a_safe_no_op_out_of_bounds() {
        let data = [1u64, 2, 3];
        prefetch_read(&data, 0);
        prefetch_read(&data, 2);
        prefetch_read(&data, 3);
        prefetch_read(&data, usize::MAX);
        let empty: [u64; 0] = [];
        prefetch_read(&empty, 0);
    }

    #[test]
    fn batch_width_is_clamped_and_reusable() {
        let mut batch = RouteBatch::new(0);
        assert_eq!(batch.width(), 1);
        assert_eq!(RouteBatch::default().width(), DEFAULT_BATCH_WIDTH);

        let overlay = ChordOverlay::build(8, ChordVariant::Deterministic).unwrap();
        let kernel = overlay.kernel().expect("ring compiles");
        let mask = FailureMask::none(overlay.key_space());
        let lowered = kernel.compile_mask(&mask);
        let limit = default_route_hop_limit(&overlay);
        let pairs: Vec<(u64, u64)> = (0..64u64).map(|i| (i, (i * 37 + 11) & 255)).collect();
        let mut outcomes = Vec::new();
        // A width-1 batch serialises every lookup; outcomes still match the
        // per-route path and the batch drains fully.
        kernel.route_batch_masked(&mut batch, &lowered, &pairs, limit, &mut outcomes);
        assert_eq!(batch.in_flight(), 0);
        assert_eq!(outcomes.len(), pairs.len());
        for (i, &(source, target)) in pairs.iter().enumerate() {
            assert_eq!(
                outcomes[i],
                kernel.route_values(&lowered, source, target, limit),
            );
        }
    }

    #[test]
    fn empty_pair_slice_is_a_no_op() {
        let overlay = ChordOverlay::build(6, ChordVariant::Deterministic).unwrap();
        let kernel = overlay.kernel().unwrap();
        let mask = FailureMask::none(overlay.key_space());
        let lowered = kernel.compile_mask(&mask);
        let mut batch = RouteBatch::default();
        let mut outcomes = vec![RouteOutcome::Delivered { hops: 99 }];
        kernel.route_batch_masked(&mut batch, &lowered, &[], 16, &mut outcomes);
        assert!(outcomes.is_empty());
    }
}
