//! The implicit (generative) routing backend: rank-space routing without
//! materialized tables.
//!
//! A materialized overlay pays memory proportional to its edge count — the
//! CSR [`RoutingArena`](crate::RoutingArena) plus the compiled
//! [`RoutingKernel`](super::RoutingKernel) plan — which is what caps it at
//! [`MAX_OVERLAY_BITS`](crate::traits::MAX_OVERLAY_BITS) bits. But over a
//! **full population** every routing table is a pure function of the node
//! identifier and the construction RNG: the deterministic geometries (Chord's
//! deterministic fingers, the hypercube) are closed-form in the id, and the
//! randomized ones (randomized Chord, Kademlia/Plaxton buckets, Symphony
//! shortcuts) draw a *fixed* number of RNG words per node from one shared
//! sequential stream ([`GeometryStrategy::implicit_stream_words`]). Because
//! the workspace's ChaCha generator is a counter-mode cipher, the draws of
//! rank `r` live at stream offset `r × words` and can be replayed in O(1)
//! with [`ChaCha8Rng::set_word_pos`] — no predecessor's table is ever
//! generated.
//!
//! [`ImplicitKernel`] exploits exactly that: it stores a constant-size
//! descriptor (seed, rule, stream stride) and regenerates any plan row on
//! demand, lowering it with the same per-rule lowering as
//! [`RoutingKernel`](super::RoutingKernel)'s compiler and dispatching hops through the *same*
//! row-slice hop helpers. Outcomes — [`RouteOutcome`] variants, hop counts,
//! `stuck_at` identifiers, batch orderings — are therefore **bit-identical**
//! to the materialized kernel built from the same seed, which the
//! `implicit_equivalence` property suite asserts across every geometry.
//!
//! Regeneration cost is amortized by an [`ImplicitRowCache`]: a direct-mapped
//! cache of lowered rows, owned by the *caller* (one per worker thread), so
//! the kernel itself stays shareable and its resident set stays constant.
//! Routes concentrate near targets, so hot rows hit the cache even at 2^30.
//!
//! # Example
//!
//! ```rust
//! use dht_overlay::{ChordVariant, FailureMask, ImplicitOverlay, Overlay};
//!
//! // A 2^26-node ring: far beyond the materialized ceiling, ~0 bytes of
//! // routing state.
//! let overlay = ImplicitOverlay::ring(26, ChordVariant::Deterministic, 7)?;
//! let kernel = overlay.implicit_kernel().expect("implicit backend");
//! let mut cache = kernel.row_cache();
//! let space = overlay.key_space();
//! let mask = FailureMask::none(space);
//! let lowered = kernel.compile_mask(&mask);
//! let outcome = kernel.route(&mut cache, &lowered, space.wrap(3), space.wrap(1 << 25), 64);
//! assert!(outcome.is_delivered());
//! assert!(overlay.resident_bytes() < 1024);
//! # Ok::<(), dht_overlay::OverlayError>(())
//! ```

use super::{
    alive_bit, cube_hop_row, ring_distance_raw, ring_hop_row, tree_hop_row, xor_hop_row,
    KernelMask, KernelRule, PlanEntry, RouteBatch, NO_ENTRY,
};
use crate::failure::FailureMask;
use crate::generic::GeometryStrategy;
use crate::router::RouteOutcome;
use crate::traits::{validate_implicit_bits, Overlay, OverlayError};
use dht_id::{KeySpace, NodeId, Population};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::sync::Arc;

/// Default slot count of [`ImplicitKernel::row_cache`]: at 8 bytes per entry
/// and `d ≤ 30` entries per row the cache tops out around 250 KiB — resident
/// in L2, negligible against the failure mask.
pub const DEFAULT_ROW_CACHE_SLOTS: usize = 1024;

/// Regenerates one node's raw routing table into the scratch vector, drawing
/// from the stream-positioned RNG.
type RowFn = dyn Fn(NodeId, &mut ChaCha8Rng, &mut Vec<NodeId>) + Send + Sync;

/// A routing kernel that computes plan rows on the fly instead of storing
/// them.
///
/// Constant-size by design: the only state is the construction descriptor
/// (key space, rule, stream seed and stride, and the boxed row generator).
/// All mutable scratch — the RNG being seeked, the regenerated row, the
/// lowered entries — lives in a caller-owned [`ImplicitRowCache`], so one
/// kernel serves any number of threads, each with its own cache.
///
/// Obtain one through [`ImplicitOverlay`] (or [`ImplicitKernel::from_strategy`]
/// directly) and drive it exactly like a [`RoutingKernel`](super::RoutingKernel): lower the failure
/// mask once with [`ImplicitKernel::compile_mask`], then route with
/// [`ImplicitKernel::route`] / [`ImplicitKernel::route_batch`].
pub struct ImplicitKernel {
    rule: KernelRule,
    space: KeySpace,
    bits: u32,
    population: Arc<Population>,
    stream_seed: u64,
    /// 32-bit words of the shared construction stream each node consumes —
    /// rank `r`'s draws start at word `r × words_per_node`.
    words_per_node: u64,
    /// Entries per regenerated table row (fixed over a full population).
    row_width: usize,
    row_fn: Box<RowFn>,
}

impl fmt::Debug for ImplicitKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImplicitKernel")
            .field("rule", &self.rule)
            .field("space", &self.space)
            .field("stream_seed", &self.stream_seed)
            .field("words_per_node", &self.words_per_node)
            .field("row_width", &self.row_width)
            .finish_non_exhaustive()
    }
}

impl ImplicitKernel {
    /// Builds an implicit kernel for `strategy` over a full population,
    /// replaying the shared construction stream seeded by `stream_seed`.
    ///
    /// `stream_seed` must be the `seed_from_u64` seed a materialized build
    /// would hand its construction RNG; the kernel's rows are then
    /// bit-identical to that build's.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::UnsupportedBits`] if the space exceeds
    ///   [`MAX_IMPLICIT_OVERLAY_BITS`](crate::traits::MAX_IMPLICIT_OVERLAY_BITS)
    ///   bits (or is zero bits).
    /// * [`OverlayError::InvalidParameter`] if the population is sparse, the
    ///   strategy exports no [`KernelRule`], or it declares no fixed
    ///   per-node stream stride
    ///   ([`GeometryStrategy::implicit_stream_words`]).
    pub fn from_strategy<S: GeometryStrategy + Clone + 'static>(
        population: &Arc<Population>,
        strategy: &S,
        stream_seed: u64,
    ) -> Result<Self, OverlayError> {
        validate_implicit_bits(population.space().bits())?;
        if !population.is_full() {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "the implicit backend requires a full population; geometry `{}` was given \
                     {} of {} identifiers",
                    strategy.geometry_name(),
                    population.node_count(),
                    population.space().population(),
                ),
            });
        }
        let Some(rule) = strategy.kernel_rule() else {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "geometry `{}` exports no kernel rule and cannot be routed implicitly",
                    strategy.geometry_name()
                ),
            });
        };
        let Some(words_per_node) = strategy.implicit_stream_words(population) else {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "geometry `{}` declares no fixed per-node stream stride",
                    strategy.geometry_name()
                ),
            });
        };
        let row_width = strategy.table_len_hint(population);
        let space = population.space();
        let generator = strategy.clone();
        let generator_population = Arc::clone(population);
        Ok(ImplicitKernel {
            rule,
            space,
            bits: space.bits(),
            population: Arc::clone(population),
            stream_seed,
            words_per_node,
            row_width,
            row_fn: Box::new(move |node, rng, table| {
                generator.build_table(&generator_population, node, rng, table);
            }),
        })
    }

    /// The dispatch rule the kernel routes with.
    #[must_use]
    pub fn rule(&self) -> KernelRule {
        self.rule
    }

    /// The identifier space the kernel routes in.
    #[must_use]
    pub fn key_space(&self) -> KeySpace {
        self.space
    }

    /// The (full) population the kernel routes over.
    #[must_use]
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The `seed_from_u64` seed of the replayed construction stream.
    #[must_use]
    pub fn stream_seed(&self) -> u64 {
        self.stream_seed
    }

    /// 32-bit stream words consumed per node (the seek stride).
    #[must_use]
    pub fn words_per_node(&self) -> u64 {
        self.words_per_node
    }

    /// Entries per regenerated table row.
    #[must_use]
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Bytes the kernel keeps resident: its own constant-size descriptor.
    ///
    /// The counterpart of [`RoutingKernel::plan_bytes`](super::RoutingKernel::plan_bytes)
    /// — except there is no plan. Row caches are caller-owned scratch and
    /// accounted by [`ImplicitRowCache::resident_bytes`]; the failure mask is
    /// the caller's as on every backend.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    /// A fresh row cache sized at [`DEFAULT_ROW_CACHE_SLOTS`].
    #[must_use]
    pub fn row_cache(&self) -> ImplicitRowCache {
        self.row_cache_with_slots(DEFAULT_ROW_CACHE_SLOTS)
    }

    /// A fresh row cache with `slots` direct-mapped slots (rounded up to a
    /// power of two, at least 1).
    #[must_use]
    pub fn row_cache_with_slots(&self, slots: usize) -> ImplicitRowCache {
        let slots = slots.max(1).next_power_of_two();
        ImplicitRowCache {
            stream_seed: self.stream_seed,
            row_width: self.row_width,
            slot_mask: (slots - 1) as u32,
            ranks: vec![NO_ENTRY; slots],
            lens: vec![0; slots],
            entries: vec![
                PlanEntry {
                    key: 0,
                    target: NO_ENTRY
                };
                slots * self.row_width
            ],
            rng: ChaCha8Rng::seed_from_u64(self.stream_seed),
            ids: Vec::with_capacity(self.row_width),
            ring_scratch: Vec::with_capacity(self.row_width),
            hits: 0,
            misses: 0,
        }
    }

    /// Regenerates the raw routing table of `node` (exactly what the
    /// materialized build stores for it), replacing `table`'s contents.
    pub fn table_of(&self, node: NodeId, table: &mut Vec<NodeId>) {
        table.clear();
        let mut rng = ChaCha8Rng::seed_from_u64(self.stream_seed);
        rng.set_word_pos(node.value() * self.words_per_node);
        (self.row_fn)(node, &mut rng, table);
    }

    /// Lowers `mask` into the kernel's rank space — over the full population
    /// ranks coincide with values, so the mask's bitset is borrowed as-is.
    ///
    /// Same contract (and panics) as [`RoutingKernel::compile_mask`](super::RoutingKernel::compile_mask).
    ///
    /// # Panics
    ///
    /// Panics if `mask` covers a different key space or population size than
    /// the kernel.
    #[must_use]
    pub fn compile_mask<'mask>(&self, mask: &'mask FailureMask) -> KernelMask<'mask> {
        assert_eq!(
            mask.key_space().bits(),
            self.bits,
            "mask is from a different key space"
        );
        assert_eq!(
            mask.population_size(),
            self.population.node_count(),
            "mask covers a different population"
        );
        KernelMask::Full(mask)
    }

    /// The lowered plan row of `rank`, regenerated on a cache miss.
    #[inline]
    fn row<'c>(&self, cache: &'c mut ImplicitRowCache, rank: u32) -> &'c [PlanEntry] {
        debug_assert_eq!(
            cache.stream_seed, self.stream_seed,
            "row cache belongs to a different kernel"
        );
        debug_assert_eq!(
            cache.row_width, self.row_width,
            "row cache belongs to a different kernel"
        );
        let slot = (rank & cache.slot_mask) as usize;
        let start = slot * cache.row_width;
        if cache.ranks[slot] != rank {
            cache.misses += 1;
            let node = self.space.wrap(u64::from(rank));
            cache
                .rng
                .set_word_pos(u64::from(rank) * self.words_per_node);
            cache.ids.clear();
            (self.row_fn)(node, &mut cache.rng, &mut cache.ids);
            let len = lower_row(
                self.rule,
                self.space,
                node,
                &cache.ids,
                &mut cache.ring_scratch,
                &mut cache.entries[start..start + cache.row_width],
            );
            cache.lens[slot] = len as u32;
            cache.ranks[slot] = rank;
        } else {
            cache.hits += 1;
        }
        &cache.entries[start..start + cache.lens[slot] as usize]
    }

    /// `Some(rank)` when `value` survived (full population: rank == value).
    #[inline]
    fn alive_rank_of(&self, words: &[u64], value: u64) -> Option<u32> {
        let rank = value as u32;
        alive_bit(words, rank).then_some(rank)
    }

    /// Routes `source` → `target` under the lowered `mask`, giving up after
    /// `hop_limit` hops — bit-identical to [`RoutingKernel::route`](super::RoutingKernel::route) on the
    /// materialized build of the same stream seed.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `target` do not belong to the kernel's key
    /// space.
    #[must_use]
    pub fn route(
        &self,
        cache: &mut ImplicitRowCache,
        mask: &KernelMask<'_>,
        source: NodeId,
        target: NodeId,
        hop_limit: u32,
    ) -> RouteOutcome {
        assert_eq!(
            source.bits(),
            self.bits,
            "source is from a different key space"
        );
        assert_eq!(
            target.bits(),
            self.bits,
            "target is from a different key space"
        );
        self.route_values(cache, mask, source.value(), target.value(), hop_limit)
    }

    /// [`ImplicitKernel::route`] over raw identifier values (the key-space
    /// validation hoisted to [`ImplicitKernel::compile_mask`]).
    #[must_use]
    pub fn route_values(
        &self,
        cache: &mut ImplicitRowCache,
        mask: &KernelMask<'_>,
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        self.route_ranked(cache, mask.words(), source, target, hop_limit)
    }

    /// [`ImplicitKernel::route_values`] over a caller-held rank-indexed alive
    /// bitset — the [`RoutingKernel::route_ranked`](super::RoutingKernel::route_ranked) counterpart.
    #[must_use]
    pub fn route_ranked(
        &self,
        cache: &mut ImplicitRowCache,
        words: &[u64],
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        debug_assert!(source <= self.space.max_value(), "source outside the space");
        debug_assert!(target <= self.space.max_value(), "target outside the space");
        // Mirrors the materialized kernel exactly: source first, then target,
        // then the per-rule greedy loop.
        let Some(source_rank) = self.alive_rank_of(words, source) else {
            return RouteOutcome::SourceFailed;
        };
        if self.alive_rank_of(words, target).is_none() {
            return RouteOutcome::TargetFailed;
        }
        match self.rule {
            KernelRule::RingAdvance => {
                self.route_ring(cache, words, source_rank, source, target, hop_limit)
            }
            KernelRule::PrefixXor => {
                self.route_xor(cache, words, source_rank, source, target, hop_limit)
            }
            KernelRule::PrefixTree => {
                self.route_tree(cache, words, source_rank, source, target, hop_limit)
            }
            KernelRule::HypercubeBit => {
                self.route_hypercube(cache, words, source_rank, source, target, hop_limit)
            }
        }
    }

    /// The greedy next hop from `current` towards `target`, or `None` when no
    /// alive entry makes progress — equivalent to
    /// [`RoutingKernel::next_hop`](super::RoutingKernel::next_hop) on the materialized build.
    ///
    /// # Panics
    ///
    /// Panics if `current` or `target` do not belong to the kernel's key
    /// space.
    #[must_use]
    pub fn next_hop(
        &self,
        cache: &mut ImplicitRowCache,
        mask: &KernelMask<'_>,
        current: NodeId,
        target: NodeId,
    ) -> Option<NodeId> {
        assert_eq!(
            current.bits(),
            self.bits,
            "current is from a different key space"
        );
        assert_eq!(
            target.bits(),
            self.bits,
            "target is from a different key space"
        );
        let words = mask.words();
        let current = current.value();
        let target = target.value();
        let rank = current as u32;
        let value = match self.rule {
            KernelRule::RingAdvance => {
                let remaining = ring_distance_raw(current, target, self.space);
                let (_, next) = ring_hop_row(self.row(cache, rank), words, remaining)?;
                u64::from(next)
            }
            KernelRule::PrefixXor => {
                if current == target {
                    return None;
                }
                xor_hop_row(self.row(cache, rank), words, self.bits, current, target)?.0
            }
            KernelRule::PrefixTree => {
                if current == target {
                    return None;
                }
                tree_hop_row(self.row(cache, rank), words, self.bits, current, target)?.0
            }
            KernelRule::HypercubeBit => {
                let (weight, _) = cube_hop_row(self.row(cache, rank), words, current ^ target)?;
                current ^ weight
            }
        };
        Some(self.space.wrap(value))
    }

    fn route_ring(
        &self,
        cache: &mut ImplicitRowCache,
        words: &[u64],
        mut rank: u32,
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        let mut remaining = ring_distance_raw(source, target, self.space);
        let mut hops = 0u32;
        while remaining != 0 {
            if hops >= hop_limit {
                return RouteOutcome::HopLimitExceeded { limit: hop_limit };
            }
            match ring_hop_row(self.row(cache, rank), words, remaining) {
                Some((advance, next)) => {
                    remaining -= advance;
                    rank = next;
                    hops += 1;
                }
                None => {
                    return RouteOutcome::Dropped {
                        hops,
                        stuck_at: self.space.wrap(u64::from(rank)),
                    }
                }
            }
        }
        RouteOutcome::Delivered { hops }
    }

    fn route_tree(
        &self,
        cache: &mut ImplicitRowCache,
        words: &[u64],
        mut rank: u32,
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        let mut current = source;
        let mut hops = 0u32;
        while current != target {
            if hops >= hop_limit {
                return RouteOutcome::HopLimitExceeded { limit: hop_limit };
            }
            match tree_hop_row(self.row(cache, rank), words, self.bits, current, target) {
                Some((value, next)) => {
                    current = value;
                    rank = next;
                    hops += 1;
                }
                None => {
                    return RouteOutcome::Dropped {
                        hops,
                        stuck_at: self.space.wrap(current),
                    }
                }
            }
        }
        RouteOutcome::Delivered { hops }
    }

    fn route_xor(
        &self,
        cache: &mut ImplicitRowCache,
        words: &[u64],
        mut rank: u32,
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        let mut current = source;
        let mut hops = 0u32;
        while current != target {
            if hops >= hop_limit {
                return RouteOutcome::HopLimitExceeded { limit: hop_limit };
            }
            match xor_hop_row(self.row(cache, rank), words, self.bits, current, target) {
                Some((value, next)) => {
                    current = value;
                    rank = next;
                    hops += 1;
                }
                None => {
                    return RouteOutcome::Dropped {
                        hops,
                        stuck_at: self.space.wrap(current),
                    }
                }
            }
        }
        RouteOutcome::Delivered { hops }
    }

    fn route_hypercube(
        &self,
        cache: &mut ImplicitRowCache,
        words: &[u64],
        mut rank: u32,
        source: u64,
        target: u64,
        hop_limit: u32,
    ) -> RouteOutcome {
        let mut diff = source ^ target;
        let mut hops = 0u32;
        while diff != 0 {
            if hops >= hop_limit {
                return RouteOutcome::HopLimitExceeded { limit: hop_limit };
            }
            match cube_hop_row(self.row(cache, rank), words, diff) {
                Some((weight, next)) => {
                    diff ^= weight;
                    rank = next;
                    hops += 1;
                }
                None => {
                    return RouteOutcome::Dropped {
                        hops,
                        stuck_at: self.space.wrap(target ^ diff),
                    }
                }
            }
        }
        RouteOutcome::Delivered { hops }
    }

    /// Routes every `(source, target)` pair through the lockstep
    /// [`RouteBatch`] frontier — the [`RoutingKernel::route_batch`](super::RoutingKernel::route_batch)
    /// counterpart, with identical admission order, per-rule hops, lane
    /// compaction and therefore identical `outcomes`.
    ///
    /// `alive_words` follows the [`RoutingKernel::route_ranked`](super::RoutingKernel::route_ranked) contract.
    /// The implicit pass performs no software prefetch (row regeneration is
    /// compute-bound, not latency-bound); the frontier still amortizes the
    /// row cache, because consecutive lanes near the same target reuse rows.
    pub fn route_batch(
        &self,
        batch: &mut RouteBatch,
        cache: &mut ImplicitRowCache,
        alive_words: &[u64],
        pairs: &[(u64, u64)],
        hop_limit: u32,
        outcomes: &mut Vec<RouteOutcome>,
    ) {
        assert!(
            u32::try_from(pairs.len()).is_ok(),
            "route_batch slices are indexed by u32 slots"
        );
        outcomes.clear();
        outcomes.resize(pairs.len(), RouteOutcome::SourceFailed);
        batch.clear();
        let mut next = 0usize;
        loop {
            while batch.in_flight() < batch.width && next < pairs.len() {
                let (source, target) = pairs[next];
                if let Some(done) = self.admit(batch, alive_words, source, target, next as u32) {
                    outcomes[next] = done;
                }
                next += 1;
            }
            if batch.in_flight() == 0 {
                break;
            }
            self.batch_pass(batch, cache, alive_words, hop_limit, outcomes);
        }
    }

    /// The admission prelude of one pair, byte-for-byte the materialized
    /// batch's: endpoint aliveness source-then-target, then the rule's
    /// trivial-arrival check.
    #[inline]
    fn admit(
        &self,
        batch: &mut RouteBatch,
        words: &[u64],
        source: u64,
        target: u64,
        slot: u32,
    ) -> Option<RouteOutcome> {
        debug_assert!(source <= self.space.max_value(), "source outside the space");
        debug_assert!(target <= self.space.max_value(), "target outside the space");
        let Some(source_rank) = self.alive_rank_of(words, source) else {
            return Some(RouteOutcome::SourceFailed);
        };
        if self.alive_rank_of(words, target).is_none() {
            return Some(RouteOutcome::TargetFailed);
        }
        let cursor = match self.rule {
            KernelRule::RingAdvance => {
                let remaining = ring_distance_raw(source, target, self.space);
                if remaining == 0 {
                    return Some(RouteOutcome::Delivered { hops: 0 });
                }
                remaining
            }
            KernelRule::PrefixXor | KernelRule::PrefixTree => {
                if source == target {
                    return Some(RouteOutcome::Delivered { hops: 0 });
                }
                source
            }
            KernelRule::HypercubeBit => {
                let diff = source ^ target;
                if diff == 0 {
                    return Some(RouteOutcome::Delivered { hops: 0 });
                }
                diff
            }
        };
        batch.push(source_rank, cursor, target, slot);
        None
    }

    /// One lockstep pass: every lane takes the hop the scalar loop would
    /// take, in lane order, retiring and compacting resolved lanes exactly
    /// like the materialized passes.
    fn batch_pass(
        &self,
        batch: &mut RouteBatch,
        cache: &mut ImplicitRowCache,
        words: &[u64],
        hop_limit: u32,
        outcomes: &mut [RouteOutcome],
    ) {
        let mut lane = 0usize;
        while lane < batch.in_flight() {
            let hops = batch.hops[lane];
            if hops >= hop_limit {
                batch.retire(
                    lane,
                    RouteOutcome::HopLimitExceeded { limit: hop_limit },
                    outcomes,
                );
                continue;
            }
            let rank = batch.current_rank[lane];
            let cursor = batch.current[lane];
            let target = batch.target[lane];
            // (new cursor, next rank) when the lane advances, or the drop
            // outcome's stuck_at identifier value.
            let hop = match self.rule {
                KernelRule::RingAdvance => ring_hop_row(self.row(cache, rank), words, cursor)
                    .map(|(advance, next)| (cursor - advance, next)),
                KernelRule::PrefixXor => {
                    xor_hop_row(self.row(cache, rank), words, self.bits, cursor, target)
                }
                KernelRule::PrefixTree => {
                    tree_hop_row(self.row(cache, rank), words, self.bits, cursor, target)
                }
                KernelRule::HypercubeBit => cube_hop_row(self.row(cache, rank), words, cursor)
                    .map(|(weight, next)| (cursor ^ weight, next)),
            };
            match hop {
                Some((cursor, next)) => {
                    let arrived = match self.rule {
                        KernelRule::RingAdvance | KernelRule::HypercubeBit => cursor == 0,
                        KernelRule::PrefixXor | KernelRule::PrefixTree => cursor == target,
                    };
                    if arrived {
                        batch.retire(lane, RouteOutcome::Delivered { hops: hops + 1 }, outcomes);
                        continue;
                    }
                    batch.current[lane] = cursor;
                    batch.current_rank[lane] = next;
                    batch.hops[lane] = hops + 1;
                    lane += 1;
                }
                None => {
                    let stuck_at = match self.rule {
                        KernelRule::RingAdvance => u64::from(rank),
                        KernelRule::PrefixXor | KernelRule::PrefixTree => cursor,
                        KernelRule::HypercubeBit => target ^ cursor,
                    };
                    batch.retire(
                        lane,
                        RouteOutcome::Dropped {
                            hops,
                            stuck_at: self.space.wrap(stuck_at),
                        },
                        outcomes,
                    );
                }
            }
        }
    }
}

/// A direct-mapped cache of lowered plan rows for one [`ImplicitKernel`].
///
/// Caller-owned scratch (the trial engine keeps one per worker thread): the
/// kernel stays immutable and shareable while the cache holds the seeking
/// RNG, the regenerated identifier row, and `slots × row_width` lowered
/// entries. Collisions simply overwrite — routing correctness never depends
/// on a hit, only regeneration cost does.
#[derive(Debug, Clone)]
pub struct ImplicitRowCache {
    /// Stamp of the owning kernel (checked in debug builds).
    stream_seed: u64,
    row_width: usize,
    /// `slots - 1` for the power-of-two slot count.
    slot_mask: u32,
    /// Slot → cached rank, [`NO_ENTRY`] when empty (ranks stay below 2^30).
    ranks: Vec<u32>,
    /// Slot → lowered row length (ring rows dedup below `row_width`).
    lens: Vec<u32>,
    /// Slot-major lowered entries, `row_width` per slot.
    entries: Vec<PlanEntry>,
    /// The seeking stream replayer, seeded once from the kernel's seed.
    rng: ChaCha8Rng,
    /// Scratch for the regenerated identifier table.
    ids: Vec<NodeId>,
    /// Scratch for the ring lowering's advance sort.
    ring_scratch: Vec<(u32, u32)>,
    hits: u64,
    misses: u64,
}

impl ImplicitRowCache {
    /// Number of direct-mapped slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.ranks.len()
    }

    /// Row lookups served without regeneration since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Row lookups that regenerated (and lowered) their row.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Bytes of heap the cache keeps resident (entry slab, tag arrays and
    /// scratch, counted at capacity).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<PlanEntry>()
            + self.ranks.capacity() * std::mem::size_of::<u32>()
            + self.lens.capacity() * std::mem::size_of::<u32>()
            + self.ids.capacity() * std::mem::size_of::<NodeId>()
            + self.ring_scratch.capacity() * std::mem::size_of::<(u32, u32)>()
    }
}

/// Lowers one freshly regenerated full-population table row into `out`,
/// returning the lowered length — the single-row counterpart of
/// [`RoutingKernel::compile`](super::RoutingKernel::compile)'s per-rank lowering, with `rank == value`.
fn lower_row(
    rule: KernelRule,
    space: KeySpace,
    node: NodeId,
    table: &[NodeId],
    ring_scratch: &mut Vec<(u32, u32)>,
    out: &mut [PlanEntry],
) -> usize {
    match rule {
        KernelRule::RingAdvance => {
            // Sorted by greedy preference, zero advances dropped, duplicate
            // advances deduplicated — exactly the static compile's lowering.
            ring_scratch.clear();
            for &entry in table {
                let advance = ring_distance_raw(node.value(), entry.value(), space);
                if advance > 0 {
                    ring_scratch.push((advance as u32, entry.value() as u32));
                }
            }
            ring_scratch.sort_unstable();
            ring_scratch.dedup_by_key(|&mut (advance, _)| advance);
            for (slot, &(advance, target)) in ring_scratch.iter().rev().enumerate() {
                out[slot] = PlanEntry {
                    key: advance,
                    target,
                };
            }
            ring_scratch.len()
        }
        KernelRule::PrefixXor | KernelRule::PrefixTree => {
            for (slot, &entry) in table.iter().enumerate() {
                out[slot] = if entry == node {
                    PlanEntry {
                        key: 0,
                        target: NO_ENTRY,
                    }
                } else {
                    PlanEntry {
                        key: entry.value() as u32,
                        target: entry.value() as u32,
                    }
                };
            }
            table.len()
        }
        KernelRule::HypercubeBit => {
            for (slot, &entry) in table.iter().enumerate() {
                let weight = node.value() ^ entry.value();
                debug_assert_eq!(weight.count_ones(), 1, "hypercube links flip one bit");
                out[slot] = PlanEntry {
                    key: weight as u32,
                    target: entry.value() as u32,
                };
            }
            table.len()
        }
    }
}

/// A full-population overlay served entirely by an [`ImplicitKernel`]: no
/// table is ever materialized, so the identifier-space ceiling rises from
/// [`MAX_OVERLAY_BITS`](crate::traits::MAX_OVERLAY_BITS) to
/// [`MAX_IMPLICIT_OVERLAY_BITS`](crate::traits::MAX_IMPLICIT_OVERLAY_BITS)
/// bits while [`Overlay::resident_bytes`] stays constant.
///
/// Construct through the typed per-geometry constructors
/// ([`ImplicitOverlay::ring`], [`ImplicitOverlay::xor`],
/// [`ImplicitOverlay::tree`], [`ImplicitOverlay::hypercube`],
/// [`ImplicitOverlay::symphony`]) or [`ImplicitOverlay::over`] for a custom
/// strategy. The `stream_seed` is the `seed_from_u64` seed the equivalent
/// materialized build would hand its construction RNG — same seed, same
/// overlay, bit for bit.
///
/// As an [`Overlay`], [`Overlay::next_hop`] regenerates the current node's
/// table per call (the scalar reference path); batch drivers pick up
/// [`Overlay::implicit_kernel`] instead. [`Overlay::neighbors`] cannot return
/// a borrowed slice from a table that does not exist and **panics** — use
/// [`ImplicitOverlay::table_of`].
#[derive(Debug)]
pub struct ImplicitOverlay<S: GeometryStrategy> {
    population: Arc<Population>,
    strategy: S,
    kernel: ImplicitKernel,
}

impl<S: GeometryStrategy + Clone + 'static> ImplicitOverlay<S> {
    /// Builds the implicit overlay over the full `bits`-bit population.
    ///
    /// # Errors
    ///
    /// As [`ImplicitKernel::from_strategy`].
    pub fn over(bits: u32, strategy: S, stream_seed: u64) -> Result<Self, OverlayError> {
        let space = validate_implicit_bits(bits)?;
        let population = Arc::new(Population::full(space));
        let kernel = ImplicitKernel::from_strategy(&population, &strategy, stream_seed)?;
        Ok(ImplicitOverlay {
            population,
            strategy,
            kernel,
        })
    }
}

impl<S: GeometryStrategy> ImplicitOverlay<S> {
    /// The geometry strategy driving this overlay.
    #[must_use]
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// The implicit kernel (also reachable through
    /// [`Overlay::implicit_kernel`]).
    #[must_use]
    pub fn routing_kernel(&self) -> &ImplicitKernel {
        &self.kernel
    }

    /// The `seed_from_u64` seed of the replayed construction stream.
    #[must_use]
    pub fn stream_seed(&self) -> u64 {
        self.kernel.stream_seed()
    }

    /// The routing table of `node`, regenerated on the spot — the owning
    /// counterpart of [`Overlay::neighbors`], bit-identical to the
    /// materialized build's stored row.
    #[must_use]
    pub fn table_of(&self, node: NodeId) -> Vec<NodeId> {
        let mut table = Vec::with_capacity(self.kernel.row_width());
        self.kernel.table_of(node, &mut table);
        table
    }
}

impl ImplicitOverlay<crate::chord::ChordStrategy> {
    /// An implicit ring overlay — [`crate::ChordOverlay`] beyond the
    /// materialized ceiling.
    ///
    /// # Errors
    ///
    /// As [`ImplicitOverlay::over`].
    pub fn ring(
        bits: u32,
        variant: crate::chord::ChordVariant,
        stream_seed: u64,
    ) -> Result<Self, OverlayError> {
        Self::over(bits, crate::chord::ChordStrategy::new(variant), stream_seed)
    }
}

impl ImplicitOverlay<crate::kademlia::KademliaStrategy> {
    /// An implicit XOR overlay — [`crate::KademliaOverlay`] beyond the
    /// materialized ceiling.
    ///
    /// # Errors
    ///
    /// As [`ImplicitOverlay::over`].
    pub fn xor(bits: u32, stream_seed: u64) -> Result<Self, OverlayError> {
        Self::over(bits, crate::kademlia::KademliaStrategy, stream_seed)
    }
}

impl ImplicitOverlay<crate::plaxton::PlaxtonStrategy> {
    /// An implicit tree overlay — [`crate::PlaxtonOverlay`] beyond the
    /// materialized ceiling.
    ///
    /// # Errors
    ///
    /// As [`ImplicitOverlay::over`].
    pub fn tree(bits: u32, stream_seed: u64) -> Result<Self, OverlayError> {
        Self::over(bits, crate::plaxton::PlaxtonStrategy, stream_seed)
    }
}

impl ImplicitOverlay<crate::can::CanStrategy> {
    /// An implicit hypercube overlay — [`crate::CanOverlay`] beyond the
    /// materialized ceiling (link structure is closed-form; no stream).
    ///
    /// # Errors
    ///
    /// As [`ImplicitOverlay::over`].
    pub fn hypercube(bits: u32) -> Result<Self, OverlayError> {
        Self::over(bits, crate::can::CanStrategy, 0)
    }
}

impl ImplicitOverlay<crate::symphony::SymphonyStrategy> {
    /// An implicit small-world overlay — [`crate::SymphonyOverlay`] beyond
    /// the materialized ceiling.
    ///
    /// # Errors
    ///
    /// As [`ImplicitOverlay::over`], plus
    /// [`OverlayError::InvalidParameter`] for zero connection counts or
    /// `near_neighbors >= 2^bits` (mirroring
    /// [`crate::SymphonyOverlay::build`]).
    pub fn symphony(
        bits: u32,
        near_neighbors: u32,
        shortcuts: u32,
        stream_seed: u64,
    ) -> Result<Self, OverlayError> {
        if near_neighbors == 0 || shortcuts == 0 {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "Symphony needs at least one near neighbour and one shortcut, got \
                     k_n={near_neighbors}, k_s={shortcuts}"
                ),
            });
        }
        let space = validate_implicit_bits(bits)?;
        if u64::from(near_neighbors) >= space.population() {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "{near_neighbors} near neighbours do not fit a population of {}",
                    space.population()
                ),
            });
        }
        Self::over(
            bits,
            crate::symphony::SymphonyStrategy::new(near_neighbors, shortcuts),
            stream_seed,
        )
    }
}

impl<S: GeometryStrategy> Overlay for ImplicitOverlay<S> {
    fn geometry_name(&self) -> &'static str {
        self.strategy.geometry_name()
    }

    fn population(&self) -> &Population {
        &self.population
    }

    /// # Panics
    ///
    /// Always: implicit overlays do not materialise neighbour tables (there
    /// is no stored row to borrow). Use [`ImplicitOverlay::table_of`].
    fn neighbors(&self, _node: NodeId) -> &[NodeId] {
        panic!("implicit overlays do not materialise neighbour tables; use table_of");
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        let table = self.table_of(current);
        self.strategy.next_hop(&table, current, target, alive)
    }

    fn edge_count(&self) -> u64 {
        // Full-population rows are fixed-width, so the conceptual edge count
        // matches the materialized arena's entry count.
        self.population.node_count() * self.kernel.row_width() as u64
    }

    fn implicit_kernel(&self) -> Option<&ImplicitKernel> {
        Some(&self.kernel)
    }

    fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chord::{ChordStrategy, ChordVariant};
    use crate::router::{default_route_hop_limit, route_with_limit};
    use crate::{ChordOverlay, KademliaOverlay, SymphonyOverlay};

    /// The materialized twin of an implicit overlay: same geometry, same
    /// stream seed, built the way the experiment layer builds it (one fresh
    /// shared RNG, word 0).
    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn regenerated_tables_match_the_materialized_build() {
        let bits = 8;
        let seed = 42;
        let implicit = ImplicitOverlay::ring(bits, ChordVariant::Randomized, seed).unwrap();
        let materialized = ChordOverlay::build_randomized(bits, &mut rng(seed)).unwrap();
        let space = implicit.key_space();
        for node in space.iter_ids() {
            assert_eq!(
                implicit.table_of(node),
                materialized.neighbors(node),
                "row of {node} must replay the shared stream"
            );
        }
    }

    #[test]
    fn symphony_rows_replay_the_harmonic_draws() {
        let bits = 7;
        let seed = 9;
        let implicit = ImplicitOverlay::symphony(bits, 2, 3, seed).unwrap();
        let materialized = SymphonyOverlay::build(bits, 2, 3, &mut rng(seed)).unwrap();
        let space = implicit.key_space();
        for node in space.iter_ids() {
            assert_eq!(implicit.table_of(node), materialized.neighbors(node));
        }
    }

    #[test]
    fn routes_match_the_materialized_kernel_under_failures() {
        let bits = 10;
        let seed = 5;
        let implicit = ImplicitOverlay::xor(bits, seed).unwrap();
        let materialized = KademliaOverlay::build(bits, &mut rng(seed)).unwrap();
        let kernel = implicit.implicit_kernel().unwrap();
        let mut cache = kernel.row_cache_with_slots(64);
        let space = implicit.key_space();
        let mut sampler = rng(77);
        let mask = FailureMask::sample(space, 0.3, &mut sampler);
        let lowered = kernel.compile_mask(&mask);
        let limit = default_route_hop_limit(&materialized);
        for _ in 0..500 {
            let source = space.random_id(&mut sampler);
            let target = space.random_id(&mut sampler);
            assert_eq!(
                kernel.route(&mut cache, &lowered, source, target, limit),
                route_with_limit(&materialized, source, target, &mask, limit),
            );
        }
        assert!(cache.hits() > 0, "repeated rows must hit the cache");
    }

    #[test]
    fn batch_outcomes_match_the_scalar_implicit_path() {
        let bits = 9;
        let seed = 3;
        let implicit = ImplicitOverlay::ring(bits, ChordVariant::Randomized, seed).unwrap();
        let kernel = implicit.implicit_kernel().unwrap();
        let space = implicit.key_space();
        let mut sampler = rng(13);
        let mask = FailureMask::sample(space, 0.3, &mut sampler);
        let lowered = kernel.compile_mask(&mask);
        let words: Vec<u64> = lowered.words().to_vec();
        let pairs: Vec<(u64, u64)> = (0..256)
            .map(|_| {
                (
                    space.random_id(&mut sampler).value(),
                    space.random_id(&mut sampler).value(),
                )
            })
            .collect();
        let mut batch = RouteBatch::new(32);
        let mut batch_cache = kernel.row_cache_with_slots(32);
        let mut outcomes = Vec::new();
        kernel.route_batch(
            &mut batch,
            &mut batch_cache,
            &words,
            &pairs,
            64,
            &mut outcomes,
        );
        assert_eq!(batch.in_flight(), 0);
        let mut scalar_cache = kernel.row_cache_with_slots(32);
        for (i, &(source, target)) in pairs.iter().enumerate() {
            assert_eq!(
                outcomes[i],
                kernel.route_ranked(&mut scalar_cache, &words, source, target, 64),
                "pair {i}"
            );
        }
    }

    #[test]
    fn next_hop_matches_the_scalar_strategy() {
        let bits = 8;
        let seed = 21;
        let implicit = ImplicitOverlay::tree(bits, seed).unwrap();
        let kernel = implicit.implicit_kernel().unwrap();
        let mut cache = kernel.row_cache();
        let space = implicit.key_space();
        let mut sampler = rng(31);
        let mask = FailureMask::sample(space, 0.2, &mut sampler);
        let lowered = kernel.compile_mask(&mask);
        for _ in 0..200 {
            let current = space.random_id(&mut sampler);
            let target = space.random_id(&mut sampler);
            assert_eq!(
                kernel.next_hop(&mut cache, &lowered, current, target),
                implicit.next_hop(current, target, &mask),
            );
        }
    }

    #[test]
    fn resident_bytes_stay_constant_in_the_space_size() {
        let small = ImplicitOverlay::ring(10, ChordVariant::Deterministic, 0).unwrap();
        let large = ImplicitOverlay::ring(26, ChordVariant::Deterministic, 0).unwrap();
        assert_eq!(small.resident_bytes(), large.resident_bytes());
        assert!(large.resident_bytes() < 1024);
        assert_eq!(
            large.edge_count(),
            (1u64 << 26) * 26,
            "conceptual edges still scale"
        );
    }

    #[test]
    fn ceiling_is_raised_to_thirty_bits() {
        assert!(ImplicitOverlay::hypercube(30).is_ok());
        assert!(matches!(
            ImplicitOverlay::hypercube(31),
            Err(OverlayError::UnsupportedBits {
                bits: 31,
                max_bits: 30
            })
        ));
    }

    #[test]
    fn sparse_populations_are_rejected() {
        let space = KeySpace::new(8).unwrap();
        let population =
            Arc::new(Population::sparse(space, [space.wrap(1), space.wrap(2)]).unwrap());
        let err = ImplicitKernel::from_strategy(
            &population,
            &ChordStrategy::new(ChordVariant::Deterministic),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, OverlayError::InvalidParameter { .. }));
        assert!(err.to_string().contains("full population"));
    }

    #[test]
    fn symphony_parameters_are_validated() {
        assert!(ImplicitOverlay::symphony(8, 0, 1, 0).is_err());
        assert!(ImplicitOverlay::symphony(8, 1, 0, 0).is_err());
        assert!(ImplicitOverlay::symphony(2, 4, 1, 0).is_err());
        assert!(ImplicitOverlay::symphony(8, 1, 1, 0).is_ok());
    }

    #[test]
    #[should_panic(expected = "do not materialise")]
    fn neighbors_panics_with_guidance() {
        let overlay = ImplicitOverlay::hypercube(6).unwrap();
        let space = overlay.key_space();
        let _ = overlay.neighbors(space.wrap(0));
    }

    #[test]
    fn row_cache_accounts_hits_misses_and_bytes() {
        let overlay = ImplicitOverlay::ring(12, ChordVariant::Randomized, 4).unwrap();
        let kernel = overlay.implicit_kernel().unwrap();
        let mut cache = kernel.row_cache_with_slots(3);
        assert_eq!(cache.slots(), 4, "slot counts round up to powers of two");
        let mask = FailureMask::none(overlay.key_space());
        let lowered = kernel.compile_mask(&mask);
        let space = overlay.key_space();
        let _ = kernel.next_hop(&mut cache, &lowered, space.wrap(0), space.wrap(100));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let _ = kernel.next_hop(&mut cache, &lowered, space.wrap(0), space.wrap(200));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Same slot, different rank: the collision evicts.
        let _ = kernel.next_hop(&mut cache, &lowered, space.wrap(4), space.wrap(200));
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert!(cache.resident_bytes() > 0);
    }
}
