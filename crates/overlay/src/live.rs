//! Live-churn overlays: mutable-in-place geometry state with incremental,
//! provably rebuild-equivalent repair.
//!
//! The static crates freeze one failure pattern and never touch the routing
//! tables (the paper's *static resilience* model). [`LiveOverlay`] is the
//! complement: nodes depart and return while the overlay runs, and each event
//! triggers the geometry's *maintenance protocol* — the departed node's
//! in-neighbours re-resolve their dangling entries, a returning node rebuilds
//! its own table and re-inserts itself into the tables that should reference
//! it.
//!
//! # The fixed-universe model
//!
//! Churn happens over a fixed [`Population`] universe: the occupied
//! identifiers never change, only their *liveness* (tracked by a
//! [`FailureMask`]) flips. A "join" is a universe member coming back online.
//! This keeps ranks stable — the CSR [`RoutingArena`] rows and the compiled
//! kernel's plan rows never move — so a repair is a row rewrite
//! ([`RoutingArena::rewrite_table`]) plus a single-row kernel re-lowering
//! (dirty-rank invalidation), never a rebuild.
//!
//! # The canonical-state invariant
//!
//! Each geometry exposes a *seeded live construction family* through
//! [`GeometryStrategy::build_live_table`]: node `a`'s table is a pure
//! function of `(population, a, seed(a), alive_set)`. [`LiveOverlay`]
//! maintains, after **every** event:
//!
//! * an alive node's row equals a fresh seeded build against the current
//!   alive set;
//! * a dead node's row is the all-self tombstone.
//!
//! So the entire state is a pure function of `(population, strategy,
//! master_seed, mask)` — which is what makes "equivalent to rebuild"
//! well-defined: [`LiveOverlay::rebuilt`] constructs that function from
//! scratch and the `incremental_equivalence` property suite asserts
//! entry-for-entry agreement (arena and kernel plan) after arbitrary event
//! sequences.
//!
//! # The repair engine
//!
//! Finding *which* rows an event invalidates is the geometry-specific part:
//!
//! * **Leaves** are generic: the overlay maintains a reverse index
//!   (`in_edges`) from each rank to the owners referencing it, so the dirty
//!   set of a departure is exactly the departed node's in-neighbours.
//! * **Joins** use [`GeometryStrategy::live_repair_candidates`]: the strategy
//!   names *witnesses* (alive nodes such that every entry that should now
//!   point at the joiner currently points at a witness — the ring successor,
//!   the first alive bucket member clockwise of the joiner) and *direct*
//!   owners (whose stale entries are self placeholders no reverse edge
//!   records, e.g. hypercube neighbours).
//!
//! Dirty rows are then recomputed from the seeded family against the final
//! mask — a pure function of the end state, so over-approximating the dirty
//! set is always safe and repair order never matters.
//!
//! # Example
//!
//! ```rust
//! use dht_id::{KeySpace, Population};
//! use dht_overlay::chord::ChordStrategy;
//! use dht_overlay::{ChordVariant, LiveOverlay, Overlay};
//!
//! let space = KeySpace::new(6)?;
//! let strategy = ChordStrategy::new(ChordVariant::Randomized);
//! let mut overlay = LiveOverlay::build(Population::full(space), strategy, 7)?;
//! let node = space.wrap(17);
//! assert!(overlay.leave(node));
//! assert!(overlay.neighbors(node).iter().all(|&n| n == node), "tombstoned");
//! assert!(overlay.join(node));
//! // Delta-patched state is entry-for-entry the from-scratch rebuild.
//! assert_eq!(overlay.state_digest(), overlay.rebuilt().state_digest());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::arena::RoutingArena;
use crate::failure::FailureMask;
use crate::generic::GeometryStrategy;
use crate::kernel::RoutingKernel;
use crate::traits::{validate_population, Overlay, OverlayError};
use dht_id::{NodeId, Population};
use std::sync::Arc;

/// The SplitMix64 finaliser, shared by the per-node seed derivation, the
/// state digests and the kernel's plan digest. Mirrors `dht_sim`'s
/// `SeedSequence` mixer so seeds derived on either side of the crate boundary
/// agree on quality.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-node construction seed of the live family: every rebuild of
/// `node`'s table — incremental repair or from-scratch — draws from the same
/// stream, which is what makes the table a pure function of the alive set.
pub(crate) fn live_node_seed(master_seed: u64, node: NodeId) -> u64 {
    splitmix64(master_seed.wrapping_add(node.value()).wrapping_add(1))
}

/// The first *alive* occupied identifier clockwise from `start` (inclusive),
/// wrapping around the ring — the live analogue of
/// [`Population::successor`].
///
/// # Panics
///
/// Panics if no occupied node is alive (live constructions only run for alive
/// owners, so at least the owner itself survives).
pub(crate) fn alive_successor(population: &Population, alive: &FailureMask, start: u64) -> NodeId {
    let first = population.successor(start);
    let mut rank = population
        .rank_of_value(first.value())
        .expect("successor returns an occupied identifier");
    let count = population.node_count();
    for _ in 0..count {
        let node = population.node_at(rank);
        if alive.is_alive(node) {
            return node;
        }
        rank = (rank + 1) % count;
    }
    panic!("alive_successor requires at least one alive node");
}

/// The first alive occupied identifier of the inclusive value range
/// `[lo, hi]`, scanning cyclically *within the range* starting at `from`
/// (`lo <= from <= hi`), skipping `exclude`. `None` when the range holds no
/// alive node besides `exclude`.
///
/// This is the resolution rule of the prefix geometries' live family: a
/// bucket contact is the first alive member of the bucket subtree at or after
/// a seeded starting point, wrapping within the subtree.
pub(crate) fn alive_in_range_cyclic(
    population: &Population,
    alive: &FailureMask,
    lo: u64,
    hi: u64,
    from: u64,
    exclude: Option<NodeId>,
) -> Option<NodeId> {
    debug_assert!(lo <= from && from <= hi, "cyclic start must sit in range");
    let count = population.node_count();
    // Phase 1: [from ..= hi], ascending occupied values.
    let first = population.successor(from);
    if first.value() >= from && first.value() <= hi {
        let mut rank = population
            .rank_of_value(first.value())
            .expect("successor returns an occupied identifier");
        while rank < count {
            let node = population.node_at(rank);
            if node.value() > hi {
                break;
            }
            if alive.is_alive(node) && Some(node) != exclude {
                return Some(node);
            }
            rank += 1;
        }
    }
    // Phase 2: wrap to [lo .. from).
    if lo < from {
        let first = population.successor(lo);
        let value = first.value();
        if value >= lo && value < from {
            let mut rank = population
                .rank_of_value(value)
                .expect("successor returns an occupied identifier");
            while rank < count {
                let node = population.node_at(rank);
                if node.value() >= from {
                    break;
                }
                if alive.is_alive(node) && Some(node) != exclude {
                    return Some(node);
                }
                rank += 1;
            }
        }
    }
    None
}

/// Calls `f` on every alive occupied identifier of the inclusive value range
/// `[lo, hi]`, in ascending order.
pub(crate) fn for_each_alive_in_range(
    population: &Population,
    alive: &FailureMask,
    lo: u64,
    hi: u64,
    mut f: impl FnMut(NodeId),
) {
    let first = population.successor(lo);
    let value = first.value();
    if value < lo || value > hi {
        return;
    }
    let mut rank = population
        .rank_of_value(value)
        .expect("successor returns an occupied identifier");
    let count = population.node_count();
    while rank < count {
        let node = population.node_at(rank);
        if node.value() > hi {
            break;
        }
        if alive.is_alive(node) {
            f(node);
        }
        rank += 1;
    }
}

/// Tests bit `rank` of a rank-indexed alive bitset.
#[inline]
fn rank_bit(words: &[u64], rank: u32) -> bool {
    words[(rank >> 6) as usize] & (1u64 << (rank & 63)) != 0
}

/// A mutable-in-place overlay under live churn: the tentpole state of the
/// discrete-event simulator.
///
/// See the [module docs](self) for the model, the canonical-state invariant
/// and the repair engine. Built by [`LiveOverlay::build`]; driven by
/// [`LiveOverlay::join`] / [`LiveOverlay::leave`] (repair mode) or
/// [`LiveOverlay::set_liveness_frozen`] (the paper's static model, tables
/// frozen); audited by [`LiveOverlay::rebuilt`] and
/// [`LiveOverlay::state_digest`].
#[derive(Debug, Clone)]
pub struct LiveOverlay<S> {
    /// Shared with the kernel (value↔rank mapping), as in
    /// [`crate::GeometryOverlay`].
    population: Arc<Population>,
    strategy: S,
    master_seed: u64,
    /// The fixed per-node table width of the live family.
    width: usize,
    arena: RoutingArena,
    mask: FailureMask,
    /// Rank-indexed alive bits (bit `r` set iff the rank-`r` node is alive),
    /// maintained incrementally — one flip per event — and handed straight to
    /// [`RoutingKernel::route_ranked`] so lookups never recompile a mask.
    rank_words: Vec<u64>,
    kernel: RoutingKernel,
    /// Reverse index: `in_edges[t]` holds the rank of every owner whose
    /// current arena row references rank `t`, duplicates included (one entry
    /// per edge). The dirty set of a departure is exactly `in_edges[rank]`.
    in_edges: Vec<Vec<u32>>,
    repairs: u64,
}

impl<S: GeometryStrategy> LiveOverlay<S> {
    /// Builds the live overlay over `population` with every node initially
    /// alive. `master_seed` roots the per-node construction seeds; two
    /// overlays built with the same arguments are identical, and stay
    /// identical under identical event sequences.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::InvalidParameter`] when the strategy does not
    /// implement the live maintenance hooks ([`GeometryStrategy::supports_live`])
    /// or exports no kernel rule, and the usual construction errors for
    /// unsupported spaces or too-small populations.
    pub fn build(
        population: Population,
        strategy: S,
        master_seed: u64,
    ) -> Result<Self, OverlayError> {
        if !strategy.supports_live() {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "geometry `{}` does not implement the live maintenance hooks",
                    strategy.geometry_name()
                ),
            });
        }
        if strategy.kernel_rule().is_none() {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "geometry `{}` exports no kernel rule; live overlays require a compiled plan",
                    strategy.geometry_name()
                ),
            });
        }
        validate_population(&population)?;
        let mask = FailureMask::none_over(&population);
        Ok(Self::build_at(
            Arc::new(population),
            strategy,
            master_seed,
            mask,
        ))
    }

    /// Constructs the canonical state for `mask`: seeded live rows for alive
    /// nodes, tombstones for dead ones, kernel and reverse index from
    /// scratch.
    fn build_at(
        population: Arc<Population>,
        strategy: S,
        master_seed: u64,
        mask: FailureMask,
    ) -> Self {
        let node_count = usize::try_from(population.node_count()).expect("overlay sizes fit usize");
        let width = strategy.live_table_width(&population);
        let mut arena = RoutingArena::with_capacity(node_count, node_count * width);
        let mut table: Vec<NodeId> = Vec::with_capacity(width);
        let mut rank_words = vec![0u64; node_count.div_ceil(64)];
        for (rank, node) in population.iter_nodes().enumerate() {
            table.clear();
            if mask.is_alive(node) {
                strategy.build_live_table(
                    &population,
                    node,
                    live_node_seed(master_seed, node),
                    &mask,
                    &mut table,
                );
                assert_eq!(table.len(), width, "live tables are fixed-width");
                rank_words[rank >> 6] |= 1u64 << (rank & 63);
            } else {
                table.resize(width, node);
            }
            arena.push_table(&table);
        }
        let rule = strategy
            .kernel_rule()
            .expect("checked by LiveOverlay::build");
        let kernel = RoutingKernel::compile_live(rule, &population, &arena);
        let mut in_edges: Vec<Vec<u32>> = vec![Vec::new(); node_count];
        for rank in 0..node_count {
            for &entry in arena.neighbors(rank) {
                let target = population
                    .rank_of_value(entry.value())
                    .expect("live tables only reference occupied identifiers")
                    as usize;
                in_edges[target].push(rank as u32);
            }
        }
        LiveOverlay {
            population,
            strategy,
            master_seed,
            width,
            arena,
            mask,
            rank_words,
            kernel,
            in_edges,
            repairs: 0,
        }
    }

    /// Occupied rank of a referenced identifier.
    fn rank_of(&self, node: NodeId) -> u32 {
        self.population
            .rank_of_value(node.value())
            .expect("live tables only reference occupied identifiers") as u32
    }

    /// Brings `node` (an occupied universe member) back online and runs the
    /// join protocol: the joiner rebuilds its own table, and every owner the
    /// strategy's repair candidates implicate re-resolves its entries.
    ///
    /// Returns `false` (a no-op) when `node` is unoccupied or already alive.
    pub fn join(&mut self, node: NodeId) -> bool {
        let Some(rank) = self.population.index_of(node) else {
            return false;
        };
        if !self.mask.set_alive(node) {
            return false;
        }
        let rank = rank as usize;
        self.rank_words[rank >> 6] |= 1u64 << (rank & 63);
        // Candidates are named against the *new* alive set (joiner included).
        let mut witnesses: Vec<NodeId> = Vec::new();
        let mut direct: Vec<NodeId> = Vec::new();
        self.strategy.live_repair_candidates(
            &self.population,
            node,
            &self.mask,
            &mut witnesses,
            &mut direct,
        );
        let mut dirty: Vec<u32> = vec![rank as u32];
        for witness in witnesses {
            let witness_rank = self.rank_of(witness) as usize;
            dirty.extend_from_slice(&self.in_edges[witness_rank]);
        }
        for owner in direct {
            dirty.push(self.rank_of(owner));
        }
        self.repair_dirty(dirty);
        true
    }

    /// Takes `node` offline and runs the leave protocol: the departed row is
    /// tombstoned and every in-neighbour (from the reverse index) re-resolves
    /// its entries.
    ///
    /// Returns `false` (a no-op) when `node` is unoccupied or already dead.
    pub fn leave(&mut self, node: NodeId) -> bool {
        let Some(rank) = self.population.index_of(node) else {
            return false;
        };
        if !self.mask.kill(node) {
            return false;
        }
        let rank = rank as usize;
        self.rank_words[rank >> 6] &= !(1u64 << (rank & 63));
        // Snapshot the in-neighbours before the tombstone rewrites the
        // reverse index; the departed rank itself is skipped by the alive
        // check in repair_dirty.
        let dirty: Vec<u32> = self.in_edges[rank].clone();
        let tombstone = vec![node; self.width];
        self.set_row(rank, &tombstone);
        self.repair_dirty(dirty);
        true
    }

    /// Flips `node`'s liveness **without** repairing any routing table — the
    /// frozen-table mode that reproduces the paper's static model while
    /// sessions churn: tables stay whatever the last repaired state was
    /// (typically the all-alive build), only the mask moves.
    ///
    /// Returns `false` (a no-op) when `node` is unoccupied or already in the
    /// requested state.
    pub fn set_liveness_frozen(&mut self, node: NodeId, alive: bool) -> bool {
        let Some(rank) = self.population.index_of(node) else {
            return false;
        };
        let flipped = if alive {
            self.mask.set_alive(node)
        } else {
            self.mask.kill(node)
        };
        if flipped {
            let rank = rank as usize;
            if alive {
                self.rank_words[rank >> 6] |= 1u64 << (rank & 63);
            } else {
                self.rank_words[rank >> 6] &= !(1u64 << (rank & 63));
            }
        }
        flipped
    }

    /// Recomputes the alive rows of `dirty` (ranks, duplicates allowed)
    /// against the current mask, in ascending rank order.
    ///
    /// Row recomputation is a pure function of the final state, so
    /// over-approximated dirty sets and repeated ranks are harmless; the sort
    /// only pins a deterministic repair order.
    fn repair_dirty(&mut self, mut dirty: Vec<u32>) {
        dirty.sort_unstable();
        dirty.dedup();
        for rank in dirty {
            if rank_bit(&self.rank_words, rank) {
                self.repair_row(rank as usize);
            }
        }
    }

    /// Rebuilds one alive node's row from the seeded family and patches it in.
    fn repair_row(&mut self, rank: usize) {
        let node = self.population.node_at(rank as u64);
        debug_assert!(self.mask.is_alive(node), "only alive rows are repaired");
        let mut table: Vec<NodeId> = Vec::with_capacity(self.width);
        self.strategy.build_live_table(
            &self.population,
            node,
            live_node_seed(self.master_seed, node),
            &self.mask,
            &mut table,
        );
        debug_assert_eq!(table.len(), self.width, "live tables are fixed-width");
        self.set_row(rank, &table);
    }

    /// Writes `table` into row `rank` — arena, reverse index and kernel plan
    /// in lockstep. Returns `false` (and touches nothing) when the row
    /// already equals `table`.
    fn set_row(&mut self, rank: usize, table: &[NodeId]) -> bool {
        if self.arena.neighbors(rank) == table {
            return false;
        }
        let old: Vec<NodeId> = self.arena.neighbors(rank).to_vec();
        for &entry in &old {
            let target = self.rank_of(entry) as usize;
            let edges = &mut self.in_edges[target];
            let position = edges
                .iter()
                .position(|&owner| owner == rank as u32)
                .expect("the reverse index tracks every edge");
            // Order within an in-edge list is irrelevant: dirty sets are
            // sorted before repair, so swap_remove's reordering never leaks
            // into observable state.
            edges.swap_remove(position);
        }
        self.arena.rewrite_table(rank, table);
        for &entry in table {
            let target = self.rank_of(entry) as usize;
            self.in_edges[target].push(rank as u32);
        }
        let node = self.population.node_at(rank as u64);
        self.kernel.relower_rank(rank, node, table);
        self.repairs += 1;
        true
    }

    /// The canonical state for the current mask, built from scratch: same
    /// population, strategy, seed and liveness, fresh arena/kernel/indices.
    ///
    /// The incremental-equivalence property suite asserts the delta-patched
    /// overlay agrees with this entry for entry after any event sequence.
    #[must_use]
    pub fn rebuilt(&self) -> Self
    where
        S: Clone,
    {
        Self::build_at(
            Arc::clone(&self.population),
            self.strategy.clone(),
            self.master_seed,
            self.mask.clone(),
        )
    }

    /// A 64-bit digest of the full overlay state: mask words, every arena
    /// entry in rank order, and the kernel's plan digest, folded with
    /// SplitMix64. Equal states digest identically; the live-churn engine
    /// folds this into its final-state hashes so thread-count determinism is
    /// checked against the overlay itself, not just the tallies.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        for &word in self.mask.words() {
            digest = splitmix64(digest ^ word);
        }
        for rank in 0..self.arena.node_count() {
            for &entry in self.arena.neighbors(rank) {
                digest = splitmix64(digest ^ entry.value());
            }
        }
        splitmix64(digest ^ self.kernel.plan_digest())
    }

    /// The current liveness of the universe.
    #[must_use]
    pub fn mask(&self) -> &FailureMask {
        &self.mask
    }

    /// The rank-indexed alive bitset (bit `r` set iff the rank-`r` occupied
    /// node is alive), maintained incrementally — feed it to
    /// [`RoutingKernel::route_ranked`] for mask-compile-free lookups.
    #[must_use]
    pub fn rank_alive_words(&self) -> &[u64] {
        &self.rank_words
    }

    /// The compiled live routing plan (always present: [`LiveOverlay::build`]
    /// rejects strategies without a kernel rule).
    #[must_use]
    pub fn routing_kernel(&self) -> &RoutingKernel {
        &self.kernel
    }

    /// The fixed per-node table width of the live family.
    #[must_use]
    pub fn table_width(&self) -> usize {
        self.width
    }

    /// The CSR arena holding every (live or tombstoned) routing table.
    #[must_use]
    pub fn arena(&self) -> &RoutingArena {
        &self.arena
    }

    /// The geometry strategy driving this overlay.
    #[must_use]
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// The master seed rooting the per-node construction streams.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Number of row rewrites performed so far (tombstones included) — a
    /// diagnostic of repair traffic, not a protocol message count.
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.repairs
    }
}

impl<S: GeometryStrategy> Overlay for LiveOverlay<S> {
    fn geometry_name(&self) -> &'static str {
        self.strategy.geometry_name()
    }

    fn population(&self) -> &Population {
        &self.population
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        debug_assert_eq!(
            node.bits(),
            self.population.space().bits(),
            "node belongs to a different key space"
        );
        let node = self.population.space().wrap(node.value());
        match self.population.index_of(node) {
            Some(rank) => self.arena.neighbors(rank as usize),
            None => &[],
        }
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        self.strategy
            .next_hop(self.neighbors(current), current, target, alive)
    }

    fn edge_count(&self) -> u64 {
        self.arena.entry_count()
    }

    fn kernel(&self) -> Option<&RoutingKernel> {
        Some(&self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chord::ChordStrategy;
    use crate::kademlia::KademliaStrategy;
    use crate::router::{default_route_hop_limit, route_with_limit};
    use crate::ChordVariant;
    use dht_id::KeySpace;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn space(bits: u32) -> KeySpace {
        KeySpace::new(bits).unwrap()
    }

    #[test]
    fn helpers_resolve_against_the_alive_set() {
        let s = space(6);
        let population =
            Population::sparse(s, [5u64, 9, 20, 40, 60].into_iter().map(|v| s.wrap(v))).unwrap();
        let mut mask = FailureMask::none_over(&population);
        assert_eq!(alive_successor(&population, &mask, 6), s.wrap(9));
        mask.kill(s.wrap(9));
        assert_eq!(alive_successor(&population, &mask, 6), s.wrap(20));
        assert_eq!(alive_successor(&population, &mask, 61), s.wrap(5), "wraps");
        // Cyclic in-range: start mid-range, wrap within [5, 40].
        assert_eq!(
            alive_in_range_cyclic(&population, &mask, 5, 40, 21, None),
            Some(s.wrap(40))
        );
        assert_eq!(
            alive_in_range_cyclic(&population, &mask, 21, 39, 21, None),
            None,
            "a range with no alive occupied identifier resolves to nothing",
        );
        assert_eq!(
            alive_in_range_cyclic(&population, &mask, 5, 40, 40, Some(s.wrap(40))),
            Some(s.wrap(5)),
            "wraps to the range head, skipping the excluded node",
        );
        let mut seen = Vec::new();
        for_each_alive_in_range(&population, &mask, 5, 40, |n| seen.push(n.value()));
        assert_eq!(seen, vec![5, 20, 40], "dead 9 is skipped");
    }

    #[test]
    fn build_rejects_non_live_strategies() {
        // The test-only successor strategy has no live hooks.
        #[derive(Debug)]
        struct NoLive;
        impl GeometryStrategy for NoLive {
            fn geometry_name(&self) -> &'static str {
                "nolive"
            }
            fn table_len_hint(&self, _population: &Population) -> usize {
                1
            }
            fn build_table<R: rand::Rng + ?Sized>(
                &self,
                population: &Population,
                node: NodeId,
                _rng: &mut R,
                table: &mut Vec<NodeId>,
            ) {
                table.push(population.successor(node.value().wrapping_add(1)));
            }
            fn next_hop(
                &self,
                _neighbors: &[NodeId],
                _current: NodeId,
                _target: NodeId,
                _alive: &FailureMask,
            ) -> Option<NodeId> {
                None
            }
        }
        let err = LiveOverlay::build(Population::full(space(4)), NoLive, 1).unwrap_err();
        assert!(matches!(err, OverlayError::InvalidParameter { .. }));
    }

    #[test]
    fn leave_tombstones_and_join_restores() {
        let s = space(6);
        let strategy = ChordStrategy::new(ChordVariant::Randomized);
        let mut overlay = LiveOverlay::build(Population::full(s), strategy, 42).unwrap();
        let baseline = overlay.state_digest();
        let node = s.wrap(17);
        assert!(overlay.leave(node));
        assert!(!overlay.leave(node), "double leave is a no-op");
        assert!(overlay.mask().is_failed(node));
        assert_eq!(overlay.neighbors(node), vec![node; 6].as_slice());
        assert_ne!(overlay.state_digest(), baseline);
        assert!(overlay.join(node));
        assert!(!overlay.join(node), "double join is a no-op");
        assert_eq!(
            overlay.state_digest(),
            baseline,
            "leave + join round-trips to the all-alive canonical state"
        );
        assert!(overlay.repairs() > 0);
    }

    #[test]
    fn random_event_sequence_matches_the_rebuild() {
        let s = space(7);
        let strategy = KademliaStrategy;
        let mut overlay = LiveOverlay::build(Population::full(s), strategy, 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..120 {
            let node = s.wrap(rng.gen_range(0..s.population()));
            if rng.gen_bool(0.5) {
                overlay.leave(node);
            } else {
                overlay.join(node);
            }
        }
        let rebuilt = overlay.rebuilt();
        for rank in 0..overlay.arena().node_count() {
            assert_eq!(
                overlay.arena().neighbors(rank),
                rebuilt.arena().neighbors(rank),
                "row {rank} diverged from the canonical state"
            );
        }
        assert!(overlay.routing_kernel().plan_eq(rebuilt.routing_kernel()));
        assert_eq!(overlay.state_digest(), rebuilt.state_digest());
    }

    #[test]
    fn ranked_routing_agrees_with_the_scalar_path_under_churn() {
        let s = space(7);
        let strategy = ChordStrategy::new(ChordVariant::Randomized);
        let mut overlay = LiveOverlay::build(Population::full(s), strategy, 9).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..60 {
            let node = s.wrap(rng.gen_range(0..s.population()));
            if rng.gen_bool(0.5) {
                overlay.leave(node);
            } else {
                overlay.join(node);
            }
        }
        let limit = default_route_hop_limit(&overlay);
        for _ in 0..300 {
            let source = s.wrap(rng.gen_range(0..s.population()));
            let target = s.wrap(rng.gen_range(0..s.population()));
            assert_eq!(
                overlay.routing_kernel().route_ranked(
                    overlay.rank_alive_words(),
                    source.value(),
                    target.value(),
                    limit,
                ),
                route_with_limit(&overlay, source, target, overlay.mask(), limit),
            );
        }
    }

    #[test]
    fn frozen_flips_move_the_mask_but_not_the_tables() {
        let s = space(6);
        let strategy = ChordStrategy::new(ChordVariant::Deterministic);
        let mut overlay = LiveOverlay::build(Population::full(s), strategy, 1).unwrap();
        let node = s.wrap(33);
        let row_before = overlay.neighbors(node).to_vec();
        assert!(overlay.set_liveness_frozen(node, false));
        assert!(!overlay.set_liveness_frozen(node, false), "no-op repeat");
        assert!(overlay.mask().is_failed(node));
        assert_eq!(overlay.neighbors(node), row_before.as_slice(), "frozen");
        assert_eq!(overlay.repairs(), 0);
        assert!(overlay.set_liveness_frozen(node, true));
    }
}
