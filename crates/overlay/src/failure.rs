//! Frozen node-failure patterns (the static resilience model).

use dht_id::{KeySpace, NodeId, Population};
use rand::Rng;
use serde::{get_field, Deserialize, Error, Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of identifier slots per bitset word.
const WORD_BITS: u64 = 64;

/// Draws a workspace-unique generation stamp (see [`FailureMask::generation`]).
///
/// Starts at 1 so 0 can never be a live stamp (callers may use it as a
/// "nothing cached" sentinel).
fn fresh_stamp() -> u64 {
    static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);
    NEXT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// A frozen set of failed nodes over the occupied identifiers of a space.
///
/// The paper's failure model removes each node independently with probability
/// `q` and keeps every surviving node's routing table unchanged. A
/// [`FailureMask`] captures one such removal pattern; routing functions query
/// it on every hop.
///
/// # Representation
///
/// The mask is a packed bitset: bit `v % 64` of word `v / 64` is set exactly
/// when identifier `v` is an *alive occupied* node. Unoccupied identifiers
/// (for masks over a sparse [`Population`]) and failed nodes both read as
/// zero, so the hot-path query [`FailureMask::is_alive`] is a single shift
/// and mask. Word-level access ([`FailureMask::words`],
/// [`FailureMask::alive_words`]) plus popcount-based rank/select
/// ([`FailureMask::alive_rank`], [`FailureMask::select_alive`]) let samplers
/// draw surviving nodes by rank without materialising an alive vector; a
/// `2^20`-identifier mask is 128 KiB instead of the megabyte a `Vec<bool>`
/// would cost.
///
/// Masks are population-aware: over a sparse [`Population`] the unoccupied
/// identifiers are permanently "failed" (there is no node to forward
/// through), while [`FailureMask::failed_count`] and
/// [`FailureMask::alive_count`] always refer to *occupied* nodes only.
///
/// # Example
///
/// ```rust
/// use dht_id::KeySpace;
/// use dht_overlay::FailureMask;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let space = KeySpace::new(10)?;
/// let mut rng = ChaCha8Rng::seed_from_u64(7);
/// let mask = FailureMask::sample(space, 0.25, &mut rng);
/// let observed = mask.failed_count() as f64 / space.population() as f64;
/// assert!((observed - 0.25).abs() < 0.1);
/// # Ok::<(), dht_id::IdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FailureMask {
    space: KeySpace,
    /// Bit `v % 64` of `alive[v / 64]` is set iff identifier `v` is an alive
    /// occupied node. Bits beyond the key space are always zero, so equality
    /// and word-level scans need no trailing-bit masking.
    alive: Vec<u64>,
    failed_count: u64,
    population_size: u64,
    /// Generation stamp: workspace-unique at construction, re-drawn on every
    /// content mutation, *copied* by `Clone`. Two masks share a stamp only
    /// when one is an unmutated copy of the other — which is exactly the
    /// "same content" guarantee memoizers key on (see
    /// [`FailureMask::generation`]). Excluded from equality and serde: it
    /// identifies an in-memory lineage, not the failure pattern.
    stamp: u64,
}

/// Equality is over the failure pattern only — the generation stamp is an
/// in-memory identity and two independently sampled masks with the same
/// content must compare equal.
impl PartialEq for FailureMask {
    fn eq(&self, other: &Self) -> bool {
        self.space == other.space
            && self.failed_count == other.failed_count
            && self.population_size == other.population_size
            && self.alive == other.alive
    }
}

impl Eq for FailureMask {}

/// Serializes the failure pattern (the stamp is transient in-memory state; a
/// persisted stamp could collide with a live lineage after reload).
impl Serialize for FailureMask {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (String::from("space"), self.space.to_value()),
            (String::from("alive"), self.alive.to_value()),
            (String::from("failed_count"), self.failed_count.to_value()),
            (
                String::from("population_size"),
                self.population_size.to_value(),
            ),
        ])
    }
}

/// Deserialized masks get a fresh generation stamp.
impl Deserialize for FailureMask {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object for FailureMask"))?;
        Ok(FailureMask {
            space: Deserialize::from_value(get_field(entries, "space")?)?,
            alive: Deserialize::from_value(get_field(entries, "alive")?)?,
            failed_count: Deserialize::from_value(get_field(entries, "failed_count")?)?,
            population_size: Deserialize::from_value(get_field(entries, "population_size")?)?,
            stamp: fresh_stamp(),
        })
    }
}

impl FailureMask {
    /// Creates a mask with no failures over a fully populated space.
    ///
    /// # Panics
    ///
    /// Panics if the space has more than `2^32` identifiers (such spaces are
    /// analytical-only; see [`crate::traits::MAX_OVERLAY_BITS`]).
    #[must_use]
    pub fn none(space: KeySpace) -> Self {
        assert!(
            space.bits() <= 32,
            "failure masks materialise every node; {}-bit spaces are analytical-only",
            space.bits()
        );
        let population = space.population();
        let words = population.div_ceil(WORD_BITS) as usize;
        let mut alive = vec![u64::MAX; words];
        let tail = population % WORD_BITS;
        if tail != 0 {
            alive[words - 1] = (1u64 << tail) - 1;
        }
        FailureMask {
            space,
            alive,
            failed_count: 0,
            population_size: population,
            stamp: fresh_stamp(),
        }
    }

    /// Creates a mask with no failures over the occupied identifiers of
    /// `population`; unoccupied identifiers read as failed.
    ///
    /// # Panics
    ///
    /// Panics if the space has more than `2^32` identifiers.
    #[must_use]
    pub fn none_over(population: &Population) -> Self {
        if population.is_full() {
            return FailureMask::none(population.space());
        }
        let space = population.space();
        assert!(
            space.bits() <= 32,
            "failure masks materialise every node; {}-bit spaces are analytical-only",
            space.bits()
        );
        let words = space.population().div_ceil(WORD_BITS) as usize;
        let mut alive = vec![0u64; words];
        for node in population.iter_nodes() {
            let value = node.value();
            alive[(value / WORD_BITS) as usize] |= 1u64 << (value % WORD_BITS);
        }
        FailureMask {
            space,
            alive,
            failed_count: 0,
            population_size: population.node_count(),
            stamp: fresh_stamp(),
        }
    }

    /// Samples a mask over a fully populated space in which every node fails
    /// independently with probability `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]` or the space is larger than `2^32`.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(space: KeySpace, q: f64, rng: &mut R) -> Self {
        Self::sample_over(&Population::full(space), q, rng)
    }

    /// Samples a mask in which every *occupied* node fails independently with
    /// probability `q` (unoccupied identifiers read as failed regardless).
    ///
    /// Over a full population this draws the identical mask (and RNG stream)
    /// as [`FailureMask::sample`].
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]` or the space is larger than `2^32`.
    #[must_use]
    pub fn sample_over<R: Rng + ?Sized>(population: &Population, q: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&q),
            "failure probability must be in [0,1]"
        );
        let mut mask = FailureMask::none_over(population);
        for node in population.iter_nodes() {
            if rng.gen_bool(q) {
                let value = node.value();
                mask.alive[(value / WORD_BITS) as usize] &= !(1u64 << (value % WORD_BITS));
                mask.failed_count += 1;
            }
        }
        mask.stamp = fresh_stamp();
        mask
    }

    /// Creates a mask over a fully populated space from an explicit list of
    /// failed identifiers.
    ///
    /// Identifiers outside the space are ignored; duplicates count once.
    #[must_use]
    pub fn from_failed_nodes<I>(space: KeySpace, nodes: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut mask = FailureMask::none(space);
        for node in nodes {
            if node.bits() == space.bits() {
                let value = node.value();
                let slot = &mut mask.alive[(value / WORD_BITS) as usize];
                let bit = 1u64 << (value % WORD_BITS);
                if *slot & bit != 0 {
                    *slot &= !bit;
                    mask.failed_count += 1;
                }
            }
        }
        mask.stamp = fresh_stamp();
        mask
    }

    /// The identifier space this mask covers.
    #[must_use]
    pub fn key_space(&self) -> KeySpace {
        self.space
    }

    /// Number of occupied identifiers this mask tracks (`2^d` for masks over
    /// a full population).
    #[must_use]
    pub fn population_size(&self) -> u64 {
        self.population_size
    }

    /// Returns `true` if `node` failed (or is unoccupied, for masks over a
    /// sparse population).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    #[inline]
    #[must_use]
    pub fn is_failed(&self, node: NodeId) -> bool {
        assert_eq!(
            node.bits(),
            self.space.bits(),
            "node belongs to a different key space"
        );
        let value = node.value();
        self.alive[(value / WORD_BITS) as usize] & (1u64 << (value % WORD_BITS)) == 0
    }

    /// Returns `true` if `node` is an occupied identifier that survived.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    #[inline]
    #[must_use]
    pub fn is_alive(&self, node: NodeId) -> bool {
        !self.is_failed(node)
    }

    /// Rank-indexed fast path of [`FailureMask::is_alive`]: a direct bit test
    /// of slot `rank`, with no identifier construction or key-space check.
    ///
    /// Valid as an *occupied-rank* probe only for masks over a **full**
    /// population, where a node's occupied rank equals its identifier value —
    /// which is exactly when the compiled routing kernel
    /// ([`crate::kernel::KernelMask`]) borrows the mask's bitset instead of
    /// compressing it. Debug builds assert both preconditions; release
    /// builds perform the raw bit test.
    #[inline]
    #[must_use]
    pub fn is_alive_rank(&self, rank: u32) -> bool {
        debug_assert_eq!(
            self.population_size,
            self.space.population(),
            "rank-indexed probes require a full-population mask (ranks == values)"
        );
        debug_assert!(
            u64::from(rank) < self.space.population(),
            "rank {rank} outside the key space"
        );
        self.alive[(rank >> 6) as usize] & (1u64 << (rank & 63)) != 0
    }

    /// Number of failed occupied nodes.
    #[must_use]
    pub fn failed_count(&self) -> u64 {
        self.failed_count
    }

    /// Number of surviving occupied nodes.
    #[must_use]
    pub fn alive_count(&self) -> u64 {
        self.population_size - self.failed_count
    }

    /// The raw bitset words, 64 identifiers per word in ascending order.
    ///
    /// Samplers build rank indices over this slice (one cumulative popcount
    /// per word) to draw surviving nodes by rank in O(log words); see
    /// [`FailureMask::select_alive`] for the index-free variant.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.alive
    }

    /// Iterates over the non-zero bitset words as `(word_index, word)` pairs.
    ///
    /// Word `i` covers identifiers `64 * i ..= 64 * i + 63`; a set bit `b`
    /// means identifier `64 * i + b` is alive. Sparse scans (connected
    /// components, reachability frontiers) skip dead regions 64 identifiers
    /// at a time this way.
    pub fn alive_words(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter_map(|(index, &word)| (word != 0).then_some((index, word)))
    }

    /// Iterates over the surviving node identifiers in ascending order.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let bits = self.space.bits();
        self.alive_words().flat_map(move |(index, word)| {
            let base = index as u64 * WORD_BITS;
            let mut remaining = word;
            std::iter::from_fn(move || {
                if remaining == 0 {
                    return None;
                }
                let bit = remaining.trailing_zeros();
                remaining &= remaining - 1;
                Some(
                    NodeId::from_raw(base + u64::from(bit), bits)
                        .expect("bit index fits the key space"),
                )
            })
        })
    }

    /// The rank of `node` among the surviving nodes in ascending identifier
    /// order, or `None` when `node` is failed or unoccupied.
    ///
    /// Computed by popcounting the bitset prefix, O(population / 64). The
    /// inverse of [`FailureMask::select_alive`].
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    #[must_use]
    pub fn alive_rank(&self, node: NodeId) -> Option<u64> {
        if self.is_failed(node) {
            return None;
        }
        let value = node.value();
        let word_index = (value / WORD_BITS) as usize;
        let prefix: u64 = self.alive[..word_index]
            .iter()
            .map(|word| u64::from(word.count_ones()))
            .sum();
        let below = self.alive[word_index] & ((1u64 << (value % WORD_BITS)) - 1);
        Some(prefix + u64::from(below.count_ones()))
    }

    /// The surviving node of the given rank (ascending identifier order), or
    /// `None` when `rank >= alive_count()`.
    ///
    /// This is a linear word scan, O(population / 64); samplers that select
    /// repeatedly should build a cumulative popcount index over
    /// [`FailureMask::words`] instead (as `dht_sim::PairSampler` does).
    #[must_use]
    pub fn select_alive(&self, rank: u64) -> Option<NodeId> {
        if rank >= self.alive_count() {
            return None;
        }
        let mut remaining = rank;
        for (index, word) in self.alive_words() {
            let count = u64::from(word.count_ones());
            if remaining < count {
                let bit = select_in_word(word, remaining as u32);
                let value = index as u64 * WORD_BITS + u64::from(bit);
                return Some(
                    NodeId::from_raw(value, self.space.bits()).expect("bit fits the key space"),
                );
            }
            remaining -= count;
        }
        None
    }

    /// Marks a single node as failed (idempotent; a no-op for unoccupied
    /// identifiers, which already read as failed). Useful for
    /// targeted-failure experiments.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    pub fn fail_node(&mut self, node: NodeId) {
        let _ = self.kill(node);
    }

    /// Marks a single node as failed, reporting whether the bit actually
    /// flipped (`false` for nodes already failed or unoccupied, which stay
    /// counted no-ops).
    ///
    /// This is [`FailureMask::fail_node`] with the flip made observable — the
    /// live-churn event engine uses the return value to keep its own
    /// bookkeeping (dirty-table queues, session tallies) in lockstep with the
    /// mask without a separate pre-read.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    pub fn kill(&mut self, node: NodeId) -> bool {
        assert_eq!(
            node.bits(),
            self.space.bits(),
            "node belongs to a different key space"
        );
        let value = node.value();
        let slot = &mut self.alive[(value / WORD_BITS) as usize];
        let bit = 1u64 << (value % WORD_BITS);
        if *slot & bit != 0 {
            *slot &= !bit;
            self.failed_count += 1;
            self.stamp = fresh_stamp();
            true
        } else {
            false
        }
    }

    /// Marks a single node as alive again, reporting whether the bit actually
    /// flipped (`false` for nodes already alive).
    ///
    /// The inverse of [`FailureMask::kill`], letting churn engines toggle
    /// liveness in place instead of reallocating masks per event. **Caller
    /// contract:** only *occupied* identifiers may be revived — the mask
    /// cannot distinguish "failed occupied node" from "unoccupied identifier"
    /// (both read as zero), so reviving an unoccupied identifier would corrupt
    /// the occupied-relative counts. Every caller in this workspace drives
    /// the mask from a fixed [`Population`] universe, which guarantees the
    /// contract structurally.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    pub fn set_alive(&mut self, node: NodeId) -> bool {
        assert_eq!(
            node.bits(),
            self.space.bits(),
            "node belongs to a different key space"
        );
        let value = node.value();
        let slot = &mut self.alive[(value / WORD_BITS) as usize];
        let bit = 1u64 << (value % WORD_BITS);
        if *slot & bit == 0 {
            *slot |= bit;
            self.failed_count -= 1;
            self.stamp = fresh_stamp();
            true
        } else {
            false
        }
    }

    /// The mask's generation stamp: workspace-unique at construction,
    /// re-drawn whenever the failure pattern mutates, copied by `Clone`.
    ///
    /// Two masks observed with the same stamp are guaranteed to hold the same
    /// failure pattern, so derived state can be memoized by stamp alone — the
    /// compiled routing kernel keys its rank-compressed mask lowering on it,
    /// letting repeated trials over one mask reuse the O(n) lowering.
    /// Deserialized masks always get a fresh stamp (a persisted one could
    /// collide with a live lineage). The converse does not hold: equal
    /// content under different stamps is common and merely misses the memo.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.stamp
    }
}

/// The index of the `rank`-th set bit of `word` (rank 0 is the least
/// significant set bit), via a popcount binary search — six branches, no
/// loops over individual bits.
///
/// # Panics
///
/// Debug-asserts that `rank < word.count_ones()`; in release builds an
/// out-of-range rank returns a meaningless index.
#[must_use]
pub fn select_in_word(word: u64, rank: u32) -> u32 {
    debug_assert!(
        rank < word.count_ones(),
        "select rank {rank} out of range for a word with {} set bits",
        word.count_ones()
    );
    let mut remaining = rank;
    let mut shifted = word;
    let mut index = 0u32;
    for span in [32u32, 16, 8, 4, 2, 1] {
        let low = (shifted & ((1u64 << span) - 1)).count_ones();
        if remaining >= low {
            remaining -= low;
            index += span;
            shifted >>= span;
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space(bits: u32) -> KeySpace {
        KeySpace::new(bits).unwrap()
    }

    #[test]
    fn empty_mask_has_everyone_alive() {
        let mask = FailureMask::none(space(8));
        assert_eq!(mask.failed_count(), 0);
        assert_eq!(mask.alive_count(), 256);
        assert_eq!(mask.population_size(), 256);
        assert_eq!(mask.alive_nodes().count(), 256);
        assert!(mask.is_alive(space(8).wrap(17)));
    }

    #[test]
    fn sub_word_spaces_trim_the_tail_word() {
        // A 3-bit space occupies 8 bits of a single word; the trailing 56
        // bits must stay zero so equality and word scans are canonical.
        let mask = FailureMask::none(space(3));
        assert_eq!(mask.words(), &[0xFF]);
        assert_eq!(mask.alive_count(), 8);
    }

    #[test]
    fn sampling_matches_probability_roughly() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mask = FailureMask::sample(space(14), 0.3, &mut rng);
        let fraction = mask.failed_count() as f64 / 16384.0;
        assert!((fraction - 0.3).abs() < 0.02, "fraction = {fraction}");
        assert_eq!(mask.alive_count() + mask.failed_count(), 16384);
    }

    #[test]
    fn sampling_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(
            FailureMask::sample(space(8), 0.0, &mut rng).failed_count(),
            0
        );
        assert_eq!(
            FailureMask::sample(space(8), 1.0, &mut rng).failed_count(),
            256
        );
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let a = FailureMask::sample(space(10), 0.4, &mut ChaCha8Rng::seed_from_u64(9));
        let b = FailureMask::sample(space(10), 0.4, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_failures_and_fail_node() {
        let s = space(6);
        let mut mask = FailureMask::from_failed_nodes(s, [s.wrap(1), s.wrap(5), s.wrap(1)]);
        assert_eq!(mask.failed_count(), 2);
        assert!(mask.is_failed(s.wrap(1)));
        assert!(mask.is_alive(s.wrap(2)));
        mask.fail_node(s.wrap(2));
        mask.fail_node(s.wrap(2));
        assert_eq!(mask.failed_count(), 3);
    }

    #[test]
    fn kill_and_set_alive_round_trip() {
        let s = space(6);
        let mut mask = FailureMask::none(s);
        assert!(mask.kill(s.wrap(9)), "first kill flips the bit");
        assert!(!mask.kill(s.wrap(9)), "second kill is a no-op");
        assert_eq!(mask.failed_count(), 1);
        assert!(mask.set_alive(s.wrap(9)), "revive flips it back");
        assert!(!mask.set_alive(s.wrap(9)), "already alive is a no-op");
        assert_eq!(mask.failed_count(), 0);
        assert_eq!(mask, FailureMask::none(s), "round trip is canonical");
    }

    #[test]
    fn alive_nodes_are_exactly_the_complement() {
        let s = space(5);
        let mask = FailureMask::from_failed_nodes(s, (0..16).map(|v| s.wrap(v)));
        let alive: Vec<u64> = mask.alive_nodes().map(|n| n.value()).collect();
        assert_eq!(alive, (16..32).collect::<Vec<u64>>());
    }

    #[test]
    fn sparse_population_masks_treat_unoccupied_as_failed() {
        let s = space(6);
        let population = Population::sparse(s, [s.wrap(3), s.wrap(40), s.wrap(41)]).unwrap();
        let mask = FailureMask::none_over(&population);
        assert_eq!(mask.population_size(), 3);
        assert_eq!(mask.failed_count(), 0);
        assert_eq!(mask.alive_count(), 3);
        assert!(mask.is_alive(s.wrap(3)));
        assert!(mask.is_failed(s.wrap(4)), "unoccupied ids read as failed");
        let alive: Vec<u64> = mask.alive_nodes().map(|n| n.value()).collect();
        assert_eq!(alive, vec![3, 40, 41]);
    }

    #[test]
    fn sampling_over_a_sparse_population_only_fails_occupied_nodes() {
        let s = space(10);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let population = Population::sample_uniform(s, 300, &mut rng).unwrap();
        let mask = FailureMask::sample_over(&population, 0.5, &mut rng);
        assert_eq!(mask.population_size(), 300);
        assert_eq!(mask.alive_count() + mask.failed_count(), 300);
        assert!(mask.failed_count() > 100 && mask.failed_count() < 200);
        for node in mask.alive_nodes() {
            assert!(population.contains(node));
        }
    }

    #[test]
    fn sample_over_full_population_matches_sample() {
        let s = space(9);
        let direct = FailureMask::sample(s, 0.3, &mut ChaCha8Rng::seed_from_u64(4));
        let via_population =
            FailureMask::sample_over(&Population::full(s), 0.3, &mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(direct, via_population);
    }

    #[test]
    fn failing_an_unoccupied_identifier_is_a_counted_noop() {
        let s = space(5);
        let population = Population::sparse(s, [s.wrap(1), s.wrap(2)]).unwrap();
        let mut mask = FailureMask::none_over(&population);
        mask.fail_node(s.wrap(9));
        assert_eq!(mask.failed_count(), 0, "unoccupied ids never count");
        mask.fail_node(s.wrap(1));
        assert_eq!(mask.failed_count(), 1);
    }

    #[test]
    fn rank_and_select_are_inverse() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mask = FailureMask::sample(space(10), 0.35, &mut rng);
        for (rank, node) in mask.alive_nodes().enumerate() {
            assert_eq!(mask.alive_rank(node), Some(rank as u64));
            assert_eq!(mask.select_alive(rank as u64), Some(node));
        }
        assert_eq!(mask.select_alive(mask.alive_count()), None);
        let failed = space(10)
            .iter_ids()
            .find(|&n| mask.is_failed(n))
            .expect("some node failed");
        assert_eq!(mask.alive_rank(failed), None);
    }

    #[test]
    fn select_in_word_matches_a_bit_scan() {
        for word in [1u64, 0b1010_1100, u64::MAX, 0x8000_0000_0000_0001, 0xF0F0] {
            let bits: Vec<u32> = (0..64).filter(|&b| word & (1u64 << b) != 0).collect();
            for (rank, &bit) in bits.iter().enumerate() {
                assert_eq!(select_in_word(word, rank as u32), bit, "word {word:#x}");
            }
        }
    }

    #[test]
    fn alive_words_skip_dead_regions() {
        let s = space(8);
        let mask = FailureMask::from_failed_nodes(s, (0..128).map(|v| s.wrap(v)));
        let words: Vec<(usize, u64)> = mask.alive_words().collect();
        assert_eq!(words, vec![(2, u64::MAX), (3, u64::MAX)]);
    }

    #[test]
    fn generation_tracks_content_mutations_only() {
        let s = space(6);
        let mut a = FailureMask::none(s);
        let b = FailureMask::none(s);
        assert_eq!(a, b, "stamps are excluded from equality");
        assert_ne!(a.generation(), b.generation(), "constructions are unique");

        let twin = a.clone();
        assert_eq!(a.generation(), twin.generation(), "clones share the stamp");

        let before = a.generation();
        assert!(a.kill(s.wrap(5)));
        assert_ne!(a.generation(), before, "a flip re-stamps");
        assert_eq!(twin.generation(), before, "the clone is untouched");

        let after_kill = a.generation();
        assert!(!a.kill(s.wrap(5)), "no-op kill");
        assert_eq!(a.generation(), after_kill, "no-ops keep the stamp");
        assert!(a.set_alive(s.wrap(5)));
        assert_ne!(a.generation(), after_kill, "a revive re-stamps");
    }

    #[test]
    fn deserialized_masks_get_a_fresh_generation() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mask = FailureMask::sample(space(7), 0.4, &mut rng);
        let json = serde_json::to_string(&mask).unwrap();
        let back: FailureMask = serde_json::from_str(&json).unwrap();
        assert_eq!(mask, back, "content round-trips");
        assert_ne!(
            mask.generation(),
            back.generation(),
            "a persisted stamp must not resurrect into a live lineage"
        );
    }

    #[test]
    fn mask_round_trips_through_serde() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mask = FailureMask::sample(space(7), 0.4, &mut rng);
        let json = serde_json::to_string(&mask).unwrap();
        let back: FailureMask = serde_json::from_str(&json).unwrap();
        assert_eq!(mask, back);
    }

    #[test]
    #[should_panic(expected = "different key space")]
    fn mismatched_space_panics() {
        let mask = FailureMask::none(space(5));
        let other = KeySpace::new(6).unwrap();
        let _ = mask.is_failed(other.wrap(3));
    }
}
