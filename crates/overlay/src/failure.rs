//! Frozen node-failure patterns (the static resilience model).

use dht_id::{KeySpace, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A frozen set of failed nodes over a fully populated identifier space.
///
/// The paper's failure model removes each node independently with probability
/// `q` and keeps every surviving node's routing table unchanged. A
/// [`FailureMask`] captures one such removal pattern; routing functions query
/// it on every hop.
///
/// # Example
///
/// ```rust
/// use dht_id::KeySpace;
/// use dht_overlay::FailureMask;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let space = KeySpace::new(10)?;
/// let mut rng = ChaCha8Rng::seed_from_u64(7);
/// let mask = FailureMask::sample(space, 0.25, &mut rng);
/// let observed = mask.failed_count() as f64 / space.population() as f64;
/// assert!((observed - 0.25).abs() < 0.1);
/// # Ok::<(), dht_id::IdError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureMask {
    space: KeySpace,
    failed: Vec<bool>,
    failed_count: u64,
}

impl FailureMask {
    /// Creates a mask with no failures.
    ///
    /// # Panics
    ///
    /// Panics if the space has more than `2^32` identifiers (such spaces are
    /// analytical-only; see [`crate::traits::MAX_OVERLAY_BITS`]).
    #[must_use]
    pub fn none(space: KeySpace) -> Self {
        assert!(
            space.bits() <= 32,
            "failure masks materialise every node; {}-bit spaces are analytical-only",
            space.bits()
        );
        FailureMask {
            space,
            failed: vec![false; space.population() as usize],
            failed_count: 0,
        }
    }

    /// Samples a mask in which every node fails independently with
    /// probability `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]` or the space is larger than `2^32`.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(space: KeySpace, q: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&q),
            "failure probability must be in [0,1]"
        );
        let mut mask = FailureMask::none(space);
        for slot in mask.failed.iter_mut() {
            if rng.gen_bool(q) {
                *slot = true;
                mask.failed_count += 1;
            }
        }
        mask
    }

    /// Creates a mask from an explicit list of failed identifiers.
    ///
    /// Identifiers outside the space are ignored; duplicates count once.
    #[must_use]
    pub fn from_failed_nodes<I>(space: KeySpace, nodes: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut mask = FailureMask::none(space);
        for node in nodes {
            let index = node.value() as usize;
            if node.bits() == space.bits() && !mask.failed[index] {
                mask.failed[index] = true;
                mask.failed_count += 1;
            }
        }
        mask
    }

    /// The identifier space this mask covers.
    #[must_use]
    pub fn key_space(&self) -> KeySpace {
        self.space
    }

    /// Returns `true` if `node` failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    #[must_use]
    pub fn is_failed(&self, node: NodeId) -> bool {
        assert_eq!(
            node.bits(),
            self.space.bits(),
            "node belongs to a different key space"
        );
        self.failed[node.value() as usize]
    }

    /// Returns `true` if `node` survived.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    #[must_use]
    pub fn is_alive(&self, node: NodeId) -> bool {
        !self.is_failed(node)
    }

    /// Number of failed nodes.
    #[must_use]
    pub fn failed_count(&self) -> u64 {
        self.failed_count
    }

    /// Number of surviving nodes.
    #[must_use]
    pub fn alive_count(&self) -> u64 {
        self.space.population() - self.failed_count
    }

    /// Iterates over the surviving node identifiers in ascending order.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let bits = self.space.bits();
        self.failed
            .iter()
            .enumerate()
            .filter_map(move |(index, &failed)| {
                if failed {
                    None
                } else {
                    Some(NodeId::from_raw(index as u64, bits).expect("index fits the key space"))
                }
            })
    }

    /// Marks a single node as failed (idempotent). Useful for targeted-failure
    /// experiments.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    pub fn fail_node(&mut self, node: NodeId) {
        assert_eq!(
            node.bits(),
            self.space.bits(),
            "node belongs to a different key space"
        );
        let slot = &mut self.failed[node.value() as usize];
        if !*slot {
            *slot = true;
            self.failed_count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space(bits: u32) -> KeySpace {
        KeySpace::new(bits).unwrap()
    }

    #[test]
    fn empty_mask_has_everyone_alive() {
        let mask = FailureMask::none(space(8));
        assert_eq!(mask.failed_count(), 0);
        assert_eq!(mask.alive_count(), 256);
        assert_eq!(mask.alive_nodes().count(), 256);
        assert!(mask.is_alive(space(8).wrap(17)));
    }

    #[test]
    fn sampling_matches_probability_roughly() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mask = FailureMask::sample(space(14), 0.3, &mut rng);
        let fraction = mask.failed_count() as f64 / 16384.0;
        assert!((fraction - 0.3).abs() < 0.02, "fraction = {fraction}");
        assert_eq!(mask.alive_count() + mask.failed_count(), 16384);
    }

    #[test]
    fn sampling_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(
            FailureMask::sample(space(8), 0.0, &mut rng).failed_count(),
            0
        );
        assert_eq!(
            FailureMask::sample(space(8), 1.0, &mut rng).failed_count(),
            256
        );
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let a = FailureMask::sample(space(10), 0.4, &mut ChaCha8Rng::seed_from_u64(9));
        let b = FailureMask::sample(space(10), 0.4, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_failures_and_fail_node() {
        let s = space(6);
        let mut mask = FailureMask::from_failed_nodes(s, [s.wrap(1), s.wrap(5), s.wrap(1)]);
        assert_eq!(mask.failed_count(), 2);
        assert!(mask.is_failed(s.wrap(1)));
        assert!(mask.is_alive(s.wrap(2)));
        mask.fail_node(s.wrap(2));
        mask.fail_node(s.wrap(2));
        assert_eq!(mask.failed_count(), 3);
    }

    #[test]
    fn alive_nodes_are_exactly_the_complement() {
        let s = space(5);
        let mask = FailureMask::from_failed_nodes(s, (0..16).map(|v| s.wrap(v)));
        let alive: Vec<u64> = mask.alive_nodes().map(|n| n.value()).collect();
        assert_eq!(alive, (16..32).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "different key space")]
    fn mismatched_space_panics() {
        let mask = FailureMask::none(space(5));
        let other = KeySpace::new(6).unwrap();
        let _ = mask.is_failed(other.wrap(3));
    }
}
