//! Frozen node-failure patterns (the static resilience model).

use dht_id::{KeySpace, NodeId, Population};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A frozen set of failed nodes over the occupied identifiers of a space.
///
/// The paper's failure model removes each node independently with probability
/// `q` and keeps every surviving node's routing table unchanged. A
/// [`FailureMask`] captures one such removal pattern; routing functions query
/// it on every hop.
///
/// Masks are population-aware: over a sparse [`Population`] the unoccupied
/// identifiers are permanently "failed" (there is no node to forward
/// through), while [`FailureMask::failed_count`] and
/// [`FailureMask::alive_count`] always refer to *occupied* nodes only.
///
/// # Example
///
/// ```rust
/// use dht_id::KeySpace;
/// use dht_overlay::FailureMask;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let space = KeySpace::new(10)?;
/// let mut rng = ChaCha8Rng::seed_from_u64(7);
/// let mask = FailureMask::sample(space, 0.25, &mut rng);
/// let observed = mask.failed_count() as f64 / space.population() as f64;
/// assert!((observed - 0.25).abs() < 0.1);
/// # Ok::<(), dht_id::IdError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureMask {
    space: KeySpace,
    failed: Vec<bool>,
    failed_count: u64,
    population_size: u64,
}

impl FailureMask {
    /// Creates a mask with no failures over a fully populated space.
    ///
    /// # Panics
    ///
    /// Panics if the space has more than `2^32` identifiers (such spaces are
    /// analytical-only; see [`crate::traits::MAX_OVERLAY_BITS`]).
    #[must_use]
    pub fn none(space: KeySpace) -> Self {
        assert!(
            space.bits() <= 32,
            "failure masks materialise every node; {}-bit spaces are analytical-only",
            space.bits()
        );
        FailureMask {
            space,
            failed: vec![false; space.population() as usize],
            failed_count: 0,
            population_size: space.population(),
        }
    }

    /// Creates a mask with no failures over the occupied identifiers of
    /// `population`; unoccupied identifiers read as failed.
    ///
    /// # Panics
    ///
    /// Panics if the space has more than `2^32` identifiers.
    #[must_use]
    pub fn none_over(population: &Population) -> Self {
        if population.is_full() {
            return FailureMask::none(population.space());
        }
        let space = population.space();
        assert!(
            space.bits() <= 32,
            "failure masks materialise every node; {}-bit spaces are analytical-only",
            space.bits()
        );
        let mut failed = vec![true; space.population() as usize];
        for node in population.iter_nodes() {
            failed[node.value() as usize] = false;
        }
        FailureMask {
            space,
            failed,
            failed_count: 0,
            population_size: population.node_count(),
        }
    }

    /// Samples a mask over a fully populated space in which every node fails
    /// independently with probability `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]` or the space is larger than `2^32`.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(space: KeySpace, q: f64, rng: &mut R) -> Self {
        Self::sample_over(&Population::full(space), q, rng)
    }

    /// Samples a mask in which every *occupied* node fails independently with
    /// probability `q` (unoccupied identifiers read as failed regardless).
    ///
    /// Over a full population this draws the identical mask (and RNG stream)
    /// as [`FailureMask::sample`].
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]` or the space is larger than `2^32`.
    #[must_use]
    pub fn sample_over<R: Rng + ?Sized>(population: &Population, q: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&q),
            "failure probability must be in [0,1]"
        );
        let mut mask = FailureMask::none_over(population);
        for node in population.iter_nodes() {
            if rng.gen_bool(q) {
                mask.failed[node.value() as usize] = true;
                mask.failed_count += 1;
            }
        }
        mask
    }

    /// Creates a mask over a fully populated space from an explicit list of
    /// failed identifiers.
    ///
    /// Identifiers outside the space are ignored; duplicates count once.
    #[must_use]
    pub fn from_failed_nodes<I>(space: KeySpace, nodes: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut mask = FailureMask::none(space);
        for node in nodes {
            let index = node.value() as usize;
            if node.bits() == space.bits() && !mask.failed[index] {
                mask.failed[index] = true;
                mask.failed_count += 1;
            }
        }
        mask
    }

    /// The identifier space this mask covers.
    #[must_use]
    pub fn key_space(&self) -> KeySpace {
        self.space
    }

    /// Number of occupied identifiers this mask tracks (`2^d` for masks over
    /// a full population).
    #[must_use]
    pub fn population_size(&self) -> u64 {
        self.population_size
    }

    /// Returns `true` if `node` failed (or is unoccupied, for masks over a
    /// sparse population).
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    #[must_use]
    pub fn is_failed(&self, node: NodeId) -> bool {
        assert_eq!(
            node.bits(),
            self.space.bits(),
            "node belongs to a different key space"
        );
        self.failed[node.value() as usize]
    }

    /// Returns `true` if `node` is an occupied identifier that survived.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    #[must_use]
    pub fn is_alive(&self, node: NodeId) -> bool {
        !self.is_failed(node)
    }

    /// Number of failed occupied nodes.
    #[must_use]
    pub fn failed_count(&self) -> u64 {
        self.failed_count
    }

    /// Number of surviving occupied nodes.
    #[must_use]
    pub fn alive_count(&self) -> u64 {
        self.population_size - self.failed_count
    }

    /// Iterates over the surviving node identifiers in ascending order.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let bits = self.space.bits();
        self.failed
            .iter()
            .enumerate()
            .filter_map(move |(index, &failed)| {
                if failed {
                    None
                } else {
                    Some(NodeId::from_raw(index as u64, bits).expect("index fits the key space"))
                }
            })
    }

    /// Marks a single node as failed (idempotent; a no-op for unoccupied
    /// identifiers, which already read as failed). Useful for
    /// targeted-failure experiments.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the mask's key space.
    pub fn fail_node(&mut self, node: NodeId) {
        assert_eq!(
            node.bits(),
            self.space.bits(),
            "node belongs to a different key space"
        );
        let slot = &mut self.failed[node.value() as usize];
        if !*slot {
            *slot = true;
            self.failed_count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space(bits: u32) -> KeySpace {
        KeySpace::new(bits).unwrap()
    }

    #[test]
    fn empty_mask_has_everyone_alive() {
        let mask = FailureMask::none(space(8));
        assert_eq!(mask.failed_count(), 0);
        assert_eq!(mask.alive_count(), 256);
        assert_eq!(mask.population_size(), 256);
        assert_eq!(mask.alive_nodes().count(), 256);
        assert!(mask.is_alive(space(8).wrap(17)));
    }

    #[test]
    fn sampling_matches_probability_roughly() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mask = FailureMask::sample(space(14), 0.3, &mut rng);
        let fraction = mask.failed_count() as f64 / 16384.0;
        assert!((fraction - 0.3).abs() < 0.02, "fraction = {fraction}");
        assert_eq!(mask.alive_count() + mask.failed_count(), 16384);
    }

    #[test]
    fn sampling_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(
            FailureMask::sample(space(8), 0.0, &mut rng).failed_count(),
            0
        );
        assert_eq!(
            FailureMask::sample(space(8), 1.0, &mut rng).failed_count(),
            256
        );
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let a = FailureMask::sample(space(10), 0.4, &mut ChaCha8Rng::seed_from_u64(9));
        let b = FailureMask::sample(space(10), 0.4, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_failures_and_fail_node() {
        let s = space(6);
        let mut mask = FailureMask::from_failed_nodes(s, [s.wrap(1), s.wrap(5), s.wrap(1)]);
        assert_eq!(mask.failed_count(), 2);
        assert!(mask.is_failed(s.wrap(1)));
        assert!(mask.is_alive(s.wrap(2)));
        mask.fail_node(s.wrap(2));
        mask.fail_node(s.wrap(2));
        assert_eq!(mask.failed_count(), 3);
    }

    #[test]
    fn alive_nodes_are_exactly_the_complement() {
        let s = space(5);
        let mask = FailureMask::from_failed_nodes(s, (0..16).map(|v| s.wrap(v)));
        let alive: Vec<u64> = mask.alive_nodes().map(|n| n.value()).collect();
        assert_eq!(alive, (16..32).collect::<Vec<u64>>());
    }

    #[test]
    fn sparse_population_masks_treat_unoccupied_as_failed() {
        let s = space(6);
        let population = Population::sparse(s, [s.wrap(3), s.wrap(40), s.wrap(41)]).unwrap();
        let mask = FailureMask::none_over(&population);
        assert_eq!(mask.population_size(), 3);
        assert_eq!(mask.failed_count(), 0);
        assert_eq!(mask.alive_count(), 3);
        assert!(mask.is_alive(s.wrap(3)));
        assert!(mask.is_failed(s.wrap(4)), "unoccupied ids read as failed");
        let alive: Vec<u64> = mask.alive_nodes().map(|n| n.value()).collect();
        assert_eq!(alive, vec![3, 40, 41]);
    }

    #[test]
    fn sampling_over_a_sparse_population_only_fails_occupied_nodes() {
        let s = space(10);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let population = Population::sample_uniform(s, 300, &mut rng).unwrap();
        let mask = FailureMask::sample_over(&population, 0.5, &mut rng);
        assert_eq!(mask.population_size(), 300);
        assert_eq!(mask.alive_count() + mask.failed_count(), 300);
        assert!(mask.failed_count() > 100 && mask.failed_count() < 200);
        for node in mask.alive_nodes() {
            assert!(population.contains(node));
        }
    }

    #[test]
    fn sample_over_full_population_matches_sample() {
        let s = space(9);
        let direct = FailureMask::sample(s, 0.3, &mut ChaCha8Rng::seed_from_u64(4));
        let via_population =
            FailureMask::sample_over(&Population::full(s), 0.3, &mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(direct, via_population);
    }

    #[test]
    fn failing_an_unoccupied_identifier_is_a_counted_noop() {
        let s = space(5);
        let population = Population::sparse(s, [s.wrap(1), s.wrap(2)]).unwrap();
        let mut mask = FailureMask::none_over(&population);
        mask.fail_node(s.wrap(9));
        assert_eq!(mask.failed_count(), 0, "unoccupied ids never count");
        mask.fail_node(s.wrap(1));
        assert_eq!(mask.failed_count(), 1);
    }

    #[test]
    #[should_panic(expected = "different key space")]
    fn mismatched_space_panics() {
        let mask = FailureMask::none(space(5));
        let other = KeySpace::new(6).unwrap();
        let _ = mask.is_failed(other.wrap(3));
    }
}
