//! The Symphony-style small-world overlay (§3.5 of the paper).

use crate::failure::FailureMask;
use crate::traits::{validate_bits, Overlay, OverlayError};
use dht_id::{distance::ring_distance, KeySpace, NodeId};
use rand::Rng;

/// A one-dimensional small-world overlay in the style of Symphony.
///
/// Every node keeps `k_n` near neighbours (its immediate clockwise
/// successors) and `k_s` long-range shortcuts whose clockwise distance is
/// drawn from the harmonic distribution `P(distance = x) ∝ 1/x` — Kleinberg's
/// exponent for a 1-D small world, which is what gives Symphony its
/// `O(log^2 N)` expected path length.
///
/// Routing is greedy on the clockwise distance and never overshoots the
/// target; when all of a node's connections have failed the message is
/// dropped.
///
/// # Example
///
/// ```rust
/// use dht_overlay::{Overlay, SymphonyOverlay};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(4);
/// let overlay = SymphonyOverlay::build(10, 1, 1, &mut rng)?;
/// assert_eq!(overlay.neighbors(overlay.key_space().wrap(0)).len(), 2);
/// # Ok::<(), dht_overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymphonyOverlay {
    space: KeySpace,
    near_neighbors: u32,
    shortcuts: u32,
    tables: Vec<Vec<NodeId>>,
}

impl SymphonyOverlay {
    /// Builds the fully populated small-world overlay with `near_neighbors`
    /// clockwise successors and `shortcuts` harmonic shortcuts per node.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::UnsupportedBits`] if `bits` is zero or larger than
    ///   [`crate::traits::MAX_OVERLAY_BITS`].
    /// * [`OverlayError::InvalidParameter`] if either connection count is
    ///   zero, or `near_neighbors >= 2^bits`.
    pub fn build<R: Rng + ?Sized>(
        bits: u32,
        near_neighbors: u32,
        shortcuts: u32,
        rng: &mut R,
    ) -> Result<Self, OverlayError> {
        let space = validate_bits(bits)?;
        if near_neighbors == 0 || shortcuts == 0 {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "Symphony needs at least one near neighbour and one shortcut, got k_n={near_neighbors}, k_s={shortcuts}"
                ),
            });
        }
        if u64::from(near_neighbors) >= space.population() {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "{near_neighbors} near neighbours do not fit a population of {}",
                    space.population()
                ),
            });
        }
        let population = space.population();
        let tables = space
            .iter_ids()
            .map(|node| {
                let mut table: Vec<NodeId> = (1..=u64::from(near_neighbors))
                    .map(|step| space.wrap(node.value().wrapping_add(step)))
                    .collect();
                for _ in 0..shortcuts {
                    let distance = harmonic_distance(population, rng);
                    table.push(space.wrap(node.value().wrapping_add(distance)));
                }
                table
            })
            .collect();
        Ok(SymphonyOverlay {
            space,
            near_neighbors,
            shortcuts,
            tables,
        })
    }

    /// Number of near neighbours per node (`k_n`).
    #[must_use]
    pub fn near_neighbors(&self) -> u32 {
        self.near_neighbors
    }

    /// Number of shortcuts per node (`k_s`).
    #[must_use]
    pub fn shortcuts(&self) -> u32 {
        self.shortcuts
    }
}

/// Draws a clockwise distance in `[1, population)` from the harmonic
/// distribution `P(x) ∝ 1/x` using inverse-transform sampling on the
/// continuous approximation `x = e^{U·ln population}`.
fn harmonic_distance<R: Rng + ?Sized>(population: u64, rng: &mut R) -> u64 {
    let ln_n = (population as f64).ln();
    let sample = (rng.gen::<f64>() * ln_n).exp();
    // Clamp into [1, population - 1] to stay on the ring.
    (sample.floor() as u64).clamp(1, population - 1)
}

impl Overlay for SymphonyOverlay {
    fn geometry_name(&self) -> &'static str {
        "symphony"
    }

    fn key_space(&self) -> KeySpace {
        self.space
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.tables[node.value() as usize]
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        let remaining = ring_distance(current, target);
        self.neighbors(current)
            .iter()
            .copied()
            .filter(|&n| {
                alive.is_alive(n) && {
                    let advance = ring_distance(current, n);
                    advance > 0 && advance <= remaining
                }
            })
            .min_by_key(|&n| ring_distance(n, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route, RouteOutcome};
    use dht_mathkit::RunningStats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(bits: u32, kn: u32, ks: u32, seed: u64) -> SymphonyOverlay {
        SymphonyOverlay::build(bits, kn, ks, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn table_sizes_match_parameters() {
        let overlay = build(10, 2, 3, 1);
        let space = overlay.key_space();
        assert_eq!(overlay.near_neighbors(), 2);
        assert_eq!(overlay.shortcuts(), 3);
        for node in space.iter_ids().step_by(57) {
            assert_eq!(overlay.neighbors(node).len(), 5);
        }
    }

    #[test]
    fn near_neighbors_are_the_immediate_successors() {
        let overlay = build(8, 3, 1, 2);
        let space = overlay.key_space();
        let node = space.wrap(250);
        let neighbors = overlay.neighbors(node);
        assert_eq!(neighbors[0], space.wrap(251));
        assert_eq!(neighbors[1], space.wrap(252));
        assert_eq!(neighbors[2], space.wrap(253));
    }

    #[test]
    fn shortcut_distances_follow_a_heavy_tail() {
        // The harmonic distribution has roughly uniform mass per distance
        // octave, so ln(distance) should be roughly uniform on [0, ln N).
        let overlay = build(14, 1, 1, 3);
        let space = overlay.key_space();
        let mut stats = RunningStats::new();
        for node in space.iter_ids() {
            let shortcut = overlay.neighbors(node)[1];
            stats.push((ring_distance(node, shortcut) as f64).ln());
        }
        let ln_n = (space.population() as f64).ln();
        let expected_mean = ln_n / 2.0;
        assert!(
            (stats.mean() - expected_mean).abs() < 0.35,
            "mean ln-distance {} vs expected {expected_mean}",
            stats.mean()
        );
        assert!(stats.max() > ln_n * 0.8, "no long shortcuts were drawn");
    }

    #[test]
    fn perfect_network_always_delivers() {
        let overlay = build(10, 1, 1, 4);
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..100 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            assert!(
                route(&overlay, source, target, &mask).is_delivered(),
                "greedy ring routing cannot fail without failures"
            );
        }
    }

    #[test]
    fn path_length_scales_like_log_squared() {
        // O(log^2 N / k_s) expected hops: for N = 2^12 and k_s = 1 that is on
        // the order of 100 hops; with k_s = 4 it drops well below that.
        let sparse = build(12, 1, 1, 5);
        let dense = build(12, 1, 4, 5);
        let space = sparse.key_space();
        let mask = FailureMask::none(space);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut sparse_hops = RunningStats::new();
        let mut dense_hops = RunningStats::new();
        for _ in 0..300 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            if let RouteOutcome::Delivered { hops } = route(&sparse, source, target, &mask) {
                sparse_hops.push(f64::from(hops));
            }
            if let RouteOutcome::Delivered { hops } = route(&dense, source, target, &mask) {
                dense_hops.push(f64::from(hops));
            }
        }
        assert!(sparse_hops.mean() > dense_hops.mean());
        assert!(
            sparse_hops.mean() < 12.0 * 12.0,
            "expected O(log^2 N) hops, got {}",
            sparse_hops.mean()
        );
    }

    #[test]
    fn drops_when_all_connections_of_a_node_fail() {
        let overlay = build(8, 1, 1, 7);
        let space = overlay.key_space();
        let source = space.wrap(10);
        let target = space.wrap(200);
        // Fail every neighbour of the source: the very first hop has nowhere
        // to go.
        let mask = FailureMask::from_failed_nodes(space, overlay.neighbors(source).to_vec());
        match route(&overlay, source, target, &mask) {
            RouteOutcome::Dropped { hops: 0, stuck_at } => assert_eq!(stuck_at, source),
            RouteOutcome::TargetFailed => {
                // Possible if a neighbour of the source happens to be the target.
                assert!(overlay.neighbors(source).contains(&target));
            }
            other => panic!("expected an immediate drop, got {other:?}"),
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(SymphonyOverlay::build(8, 0, 1, &mut rng).is_err());
        assert!(SymphonyOverlay::build(8, 1, 0, &mut rng).is_err());
        assert!(SymphonyOverlay::build(2, 4, 1, &mut rng).is_err());
        assert!(SymphonyOverlay::build(0, 1, 1, &mut rng).is_err());
    }
}
