//! The Symphony-style small-world overlay (§3.5 of the paper).

use crate::failure::FailureMask;
use crate::generic::{GeometryOverlay, GeometryStrategy};
use crate::traits::{validate_bits, Overlay, OverlayError};
use dht_id::{KeySpace, NodeId, Population};
use rand::Rng;

/// The small-world geometry as a [`GeometryStrategy`]: `k_n` clockwise
/// successors plus `k_s` harmonic shortcuts, greedy non-overshooting
/// forwarding.
///
/// Over a sparse population the near neighbours are the next `k_n` *occupied*
/// identifiers clockwise, and each shortcut draws a harmonic distance over
/// the `n`-node ring — `x ∈ [1, n]` with `P(x) ∝ 1/x`, scaled by `2^d / n`
/// into identifier space — and resolves to the successor of its landing
/// point, the draw-then-successor rule deployed Symphony uses. At full
/// occupancy the scale factor is 1 and the draw reduces exactly to the
/// paper's `e^{U·ln N}` sampler.
#[derive(Debug, Clone, Copy)]
pub struct SymphonyStrategy {
    near_neighbors: u32,
    shortcuts: u32,
}

impl SymphonyStrategy {
    /// A strategy with `near_neighbors` successors and `shortcuts` harmonic
    /// shortcuts per node (validated at overlay construction).
    #[must_use]
    pub fn new(near_neighbors: u32, shortcuts: u32) -> Self {
        SymphonyStrategy {
            near_neighbors,
            shortcuts,
        }
    }

    /// Number of near neighbours per node (`k_n`).
    #[must_use]
    pub fn near_neighbors(&self) -> u32 {
        self.near_neighbors
    }

    /// Number of shortcuts per node (`k_s`).
    #[must_use]
    pub fn shortcuts(&self) -> u32 {
        self.shortcuts
    }
}

impl GeometryStrategy for SymphonyStrategy {
    fn geometry_name(&self) -> &'static str {
        "symphony"
    }

    fn table_len_hint(&self, _population: &Population) -> usize {
        (self.near_neighbors + self.shortcuts) as usize
    }

    fn build_table<R: Rng + ?Sized>(
        &self,
        population: &Population,
        node: NodeId,
        rng: &mut R,
        table: &mut Vec<NodeId>,
    ) {
        let node_count = population.node_count();
        let rank = population
            .index_of(node)
            .expect("tables are built for occupied identifiers only");
        for step in 1..=u64::from(self.near_neighbors) {
            table.push(population.node_at((rank + step) % node_count));
        }
        let id_population = population.space().population();
        for _ in 0..self.shortcuts {
            let distance = harmonic_distance(node_count, id_population, rng);
            table.push(population.successor(node.value().wrapping_add(distance)));
        }
    }

    fn next_hop(
        &self,
        neighbors: &[NodeId],
        current: NodeId,
        target: NodeId,
        alive: &FailureMask,
    ) -> Option<NodeId> {
        crate::chord::ring_greedy_next_hop(neighbors, current, target, alive)
    }

    fn kernel_rule(&self) -> Option<crate::kernel::KernelRule> {
        // Near neighbours and shortcuts share the ring rule: the kernel
        // merges them into one advance-sorted plan per node.
        Some(crate::kernel::KernelRule::RingAdvance)
    }

    fn implicit_stream_words(&self, population: &Population) -> Option<u64> {
        // Near neighbours are positional (no draws); each shortcut draws one
        // `gen::<f64>()` — one `next_u64`, two words — inside
        // `harmonic_distance`. Fixed per node only over full populations
        // (sparse successor chains consume no randomness either, but the
        // implicit backend is full-population by contract).
        population.is_full().then(|| 2 * u64::from(self.shortcuts))
    }

    fn supports_live(&self) -> bool {
        true
    }

    fn live_table_width(&self, _population: &Population) -> usize {
        (self.near_neighbors + self.shortcuts) as usize
    }

    fn build_live_table(
        &self,
        population: &Population,
        node: NodeId,
        node_seed: u64,
        alive: &FailureMask,
        table: &mut Vec<NodeId>,
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(node_seed);
        // The near list is the chain of alive successors: each link starts
        // from the previous one, which is how deployed Symphony maintains its
        // successor list under churn. The chain may wrap back to the node
        // itself when few nodes are alive; such self entries are inert.
        let mut current = node.value();
        for _ in 0..self.near_neighbors {
            let next = crate::live::alive_successor(population, alive, current.wrapping_add(1));
            table.push(next);
            current = next.value();
        }
        // Shortcut distances are drawn before any alive resolution
        // (membership-independent draws, the live-family purity contract) and
        // land on the first alive node clockwise of the landing point.
        let node_count = population.node_count();
        let id_population = population.space().population();
        for _ in 0..self.shortcuts {
            let distance = harmonic_distance(node_count, id_population, &mut rng);
            table.push(crate::live::alive_successor(
                population,
                alive,
                node.value().wrapping_add(distance),
            ));
        }
    }

    fn live_repair_candidates(
        &self,
        population: &Population,
        node: NodeId,
        alive: &FailureMask,
        witnesses: &mut Vec<NodeId>,
        _direct: &mut Vec<NodeId>,
    ) {
        // Both the successor chain and the shortcuts resolve through
        // `alive_successor`; the first entry of any table that the join
        // changes was previously the joiner's own alive successor (the chain
        // argument: the first changed link's input point is unchanged, so its
        // old value is that successor).
        let witness = crate::live::alive_successor(population, alive, node.value().wrapping_add(1));
        if witness != node {
            witnesses.push(witness);
        }
    }
}

/// A one-dimensional small-world overlay in the style of Symphony.
///
/// Every node keeps `k_n` near neighbours (its immediate clockwise
/// successors) and `k_s` long-range shortcuts whose clockwise distance is
/// drawn from the harmonic distribution `P(distance = x) ∝ 1/x` — Kleinberg's
/// exponent for a 1-D small world, which is what gives Symphony its
/// `O(log^2 N)` expected path length.
///
/// Routing is greedy on the clockwise distance and never overshoots the
/// target; when all of a node's connections have failed the message is
/// dropped.
///
/// # Example
///
/// ```rust
/// use dht_overlay::{Overlay, SymphonyOverlay};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(4);
/// let overlay = SymphonyOverlay::build(10, 1, 1, &mut rng)?;
/// assert_eq!(overlay.neighbors(overlay.key_space().wrap(0)).len(), 2);
/// # Ok::<(), dht_overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymphonyOverlay {
    inner: GeometryOverlay<SymphonyStrategy>,
}

impl SymphonyOverlay {
    /// Builds the fully populated small-world overlay with `near_neighbors`
    /// clockwise successors and `shortcuts` harmonic shortcuts per node.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::UnsupportedBits`] if `bits` is zero or larger than
    ///   [`crate::traits::MAX_OVERLAY_BITS`] (the materialized ceiling —
    ///   [`crate::ImplicitOverlay::symphony`] routes larger full
    ///   populations).
    /// * [`OverlayError::InvalidParameter`] if either connection count is
    ///   zero, or `near_neighbors >= 2^bits`.
    pub fn build<R: Rng + ?Sized>(
        bits: u32,
        near_neighbors: u32,
        shortcuts: u32,
        rng: &mut R,
    ) -> Result<Self, OverlayError> {
        let space = validate_bits(bits)?;
        Self::build_over(Population::full(space), near_neighbors, shortcuts, rng)
    }

    /// Builds the overlay over an arbitrary (possibly sparse) population.
    ///
    /// # Errors
    ///
    /// As [`SymphonyOverlay::build`], with `near_neighbors` validated against
    /// the occupied node count.
    pub fn build_over<R: Rng + ?Sized>(
        population: Population,
        near_neighbors: u32,
        shortcuts: u32,
        rng: &mut R,
    ) -> Result<Self, OverlayError> {
        if near_neighbors == 0 || shortcuts == 0 {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "Symphony needs at least one near neighbour and one shortcut, got k_n={near_neighbors}, k_s={shortcuts}"
                ),
            });
        }
        if u64::from(near_neighbors) >= population.node_count() {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "{near_neighbors} near neighbours do not fit a population of {}",
                    population.node_count()
                ),
            });
        }
        Ok(SymphonyOverlay {
            inner: GeometryOverlay::build(
                population,
                SymphonyStrategy::new(near_neighbors, shortcuts),
                rng,
            )?,
        })
    }

    /// Number of near neighbours per node (`k_n`).
    #[must_use]
    pub fn near_neighbors(&self) -> u32 {
        self.inner.strategy().near_neighbors()
    }

    /// Number of shortcuts per node (`k_s`).
    #[must_use]
    pub fn shortcuts(&self) -> u32 {
        self.inner.strategy().shortcuts()
    }
}

/// Draws a clockwise identifier-space distance whose *ring rank* follows the
/// harmonic distribution: `x = e^{U·ln n} ∈ [1, n]` with `P(x) ∝ 1/x`
/// (inverse-transform sampling on the continuous approximation), scaled by
/// `2^d / n` onto identifiers. For a full population (`n = 2^d`) the scale is
/// 1 and this is exactly the paper's `e^{U·ln N}` draw; for a sparse one it
/// keeps Kleinberg's exponent over the `n` occupied nodes instead of wasting
/// mass on distances shorter than the mean successor gap.
fn harmonic_distance<R: Rng + ?Sized>(node_count: u64, id_population: u64, rng: &mut R) -> u64 {
    let ln_n = (node_count as f64).ln();
    let rank = (rng.gen::<f64>() * ln_n).exp();
    let scale = id_population as f64 / node_count as f64;
    // Clamp into [1, id_population - 1] to stay on the ring.
    ((rank * scale).floor() as u64).clamp(1, id_population - 1)
}

impl Overlay for SymphonyOverlay {
    fn geometry_name(&self) -> &'static str {
        self.inner.geometry_name()
    }

    fn key_space(&self) -> KeySpace {
        self.inner.key_space()
    }

    fn population(&self) -> &Population {
        self.inner.population()
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.inner.neighbors(node)
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        self.inner.next_hop(current, target, alive)
    }

    fn edge_count(&self) -> u64 {
        self.inner.edge_count()
    }

    fn kernel(&self) -> Option<&crate::kernel::RoutingKernel> {
        self.inner.routing_kernel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route, RouteOutcome};
    use dht_id::distance::ring_distance;
    use dht_mathkit::RunningStats;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(bits: u32, kn: u32, ks: u32, seed: u64) -> SymphonyOverlay {
        SymphonyOverlay::build(bits, kn, ks, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn table_sizes_match_parameters() {
        let overlay = build(10, 2, 3, 1);
        let space = overlay.key_space();
        assert_eq!(overlay.near_neighbors(), 2);
        assert_eq!(overlay.shortcuts(), 3);
        for node in space.iter_ids().step_by(57) {
            assert_eq!(overlay.neighbors(node).len(), 5);
        }
    }

    #[test]
    fn near_neighbors_are_the_immediate_successors() {
        let overlay = build(8, 3, 1, 2);
        let space = overlay.key_space();
        let node = space.wrap(250);
        let neighbors = overlay.neighbors(node);
        assert_eq!(neighbors[0], space.wrap(251));
        assert_eq!(neighbors[1], space.wrap(252));
        assert_eq!(neighbors[2], space.wrap(253));
    }

    #[test]
    fn shortcut_distances_follow_a_heavy_tail() {
        // The harmonic distribution has roughly uniform mass per distance
        // octave, so ln(distance) should be roughly uniform on [0, ln N).
        let overlay = build(14, 1, 1, 3);
        let space = overlay.key_space();
        let mut stats = RunningStats::new();
        for node in space.iter_ids() {
            let shortcut = overlay.neighbors(node)[1];
            stats.push((ring_distance(node, shortcut) as f64).ln());
        }
        let ln_n = (space.population() as f64).ln();
        let expected_mean = ln_n / 2.0;
        assert!(
            (stats.mean() - expected_mean).abs() < 0.35,
            "mean ln-distance {} vs expected {expected_mean}",
            stats.mean()
        );
        assert!(stats.max() > ln_n * 0.8, "no long shortcuts were drawn");
    }

    #[test]
    fn perfect_network_always_delivers() {
        let overlay = build(10, 1, 1, 4);
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..100 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            assert!(
                route(&overlay, source, target, &mask).is_delivered(),
                "greedy ring routing cannot fail without failures"
            );
        }
    }

    #[test]
    fn path_length_scales_like_log_squared() {
        // O(log^2 N / k_s) expected hops: for N = 2^12 and k_s = 1 that is on
        // the order of 100 hops; with k_s = 4 it drops well below that.
        let sparse = build(12, 1, 1, 5);
        let dense = build(12, 1, 4, 5);
        let space = sparse.key_space();
        let mask = FailureMask::none(space);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut sparse_hops = RunningStats::new();
        let mut dense_hops = RunningStats::new();
        for _ in 0..300 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            if let RouteOutcome::Delivered { hops } = route(&sparse, source, target, &mask) {
                sparse_hops.push(f64::from(hops));
            }
            if let RouteOutcome::Delivered { hops } = route(&dense, source, target, &mask) {
                dense_hops.push(f64::from(hops));
            }
        }
        assert!(sparse_hops.mean() > dense_hops.mean());
        assert!(
            sparse_hops.mean() < 12.0 * 12.0,
            "expected O(log^2 N) hops, got {}",
            sparse_hops.mean()
        );
    }

    #[test]
    fn drops_when_all_connections_of_a_node_fail() {
        let overlay = build(8, 1, 1, 7);
        let space = overlay.key_space();
        let source = space.wrap(10);
        let target = space.wrap(200);
        // Fail every neighbour of the source: the very first hop has nowhere
        // to go.
        let mask = FailureMask::from_failed_nodes(space, overlay.neighbors(source).to_vec());
        match route(&overlay, source, target, &mask) {
            RouteOutcome::Dropped { hops: 0, stuck_at } => assert_eq!(stuck_at, source),
            RouteOutcome::TargetFailed => {
                // Possible if a neighbour of the source happens to be the target.
                assert!(overlay.neighbors(source).contains(&target));
            }
            other => panic!("expected an immediate drop, got {other:?}"),
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(SymphonyOverlay::build(8, 0, 1, &mut rng).is_err());
        assert!(SymphonyOverlay::build(8, 1, 0, &mut rng).is_err());
        assert!(SymphonyOverlay::build(2, 4, 1, &mut rng).is_err());
        assert!(SymphonyOverlay::build(0, 1, 1, &mut rng).is_err());
    }

    #[test]
    fn sparse_near_neighbors_are_occupied_successors() {
        let space = KeySpace::new(8).unwrap();
        let occupied = [5u64, 9, 100, 200];
        let population =
            Population::sparse(space, occupied.into_iter().map(|v| space.wrap(v))).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let overlay = SymphonyOverlay::build_over(population, 2, 1, &mut rng).unwrap();
        let neighbors = overlay.neighbors(space.wrap(100));
        assert_eq!(neighbors[0], space.wrap(200));
        assert_eq!(neighbors[1], space.wrap(5), "successors wrap the ring");
        assert!(overlay.population().contains(neighbors[2]));
        // Too few occupied nodes for the requested near neighbours.
        let tiny = Population::sparse(space, [space.wrap(1), space.wrap(2)]).unwrap();
        assert!(SymphonyOverlay::build_over(tiny, 2, 1, &mut rng).is_err());
    }

    #[test]
    fn sparse_shortcuts_are_harmonic_over_ranks_not_identifiers() {
        // At 1/16 occupancy the draw is rescaled by 2^d / n, so shortcut
        // *rank* distances (number of occupied nodes skipped) must still be
        // heavy-tailed with mean ln-rank ≈ ln(n)/2 — not collapsed onto the
        // immediate successor as an unscaled identifier-space draw would be.
        let space = KeySpace::new(14).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let node_count = 1u64 << 10;
        let population = Population::sample_uniform(space, node_count, &mut rng).unwrap();
        let overlay = SymphonyOverlay::build_over(population, 1, 1, &mut rng).unwrap();
        let population = overlay.population();
        let mut stats = RunningStats::new();
        let mut successor_hits = 0u64;
        for node in population.iter_nodes() {
            let shortcut = overlay.neighbors(node)[1];
            let rank = population.index_of(node).unwrap();
            let shortcut_rank = population.index_of(shortcut).unwrap();
            let rank_distance = (shortcut_rank + node_count - rank) % node_count;
            if rank_distance <= 1 {
                successor_hits += 1;
            }
            stats.push((rank_distance.max(1) as f64).ln());
        }
        let ln_n = (node_count as f64).ln();
        assert!(
            (stats.mean() - ln_n / 2.0).abs() < 0.6,
            "mean ln rank-distance {} vs expected {}",
            stats.mean(),
            ln_n / 2.0
        );
        assert!(
            (successor_hits as f64) < 0.25 * node_count as f64,
            "{successor_hits} of {node_count} shortcuts collapsed onto the successor"
        );
    }

    #[test]
    fn sparse_intact_small_world_always_delivers() {
        let space = KeySpace::new(12).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let population = Population::sample_uniform(space, 1 << 9, &mut rng).unwrap();
        let overlay = SymphonyOverlay::build_over(population, 1, 2, &mut rng).unwrap();
        let mask = FailureMask::none_over(overlay.population());
        for _ in 0..100 {
            let source = overlay.population().random_node(&mut rng);
            let target = overlay.population().random_node(&mut rng);
            assert!(
                route(&overlay, source, target, &mask).is_delivered(),
                "the successor link keeps an intact sparse ring routable"
            );
        }
    }
}
