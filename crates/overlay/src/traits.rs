//! The [`Overlay`] abstraction shared by the five executable DHTs.

use crate::failure::FailureMask;
use dht_id::{KeySpace, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while building or querying an overlay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlayError {
    /// The identifier length is outside the supported range.
    ///
    /// Overlays materialise every node of the fully populated space, so the
    /// practical ceiling is well below the 64-bit limit of [`dht_id`].
    UnsupportedBits {
        /// The rejected identifier length.
        bits: u32,
        /// The largest supported identifier length for this overlay.
        max_bits: u32,
    },
    /// A node identifier does not belong to the overlay's key space.
    UnknownNode {
        /// The offending identifier value.
        value: u64,
    },
    /// A protocol parameter was invalid (e.g. zero Symphony shortcuts).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::UnsupportedBits { bits, max_bits } => write!(
                f,
                "overlay construction supports at most {max_bits}-bit identifier spaces, got {bits}"
            ),
            OverlayError::UnknownNode { value } => {
                write!(f, "node {value} does not belong to this overlay")
            }
            OverlayError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
        }
    }
}

impl std::error::Error for OverlayError {}

/// Largest identifier length an executable overlay will materialise.
///
/// `2^22` nodes with ~22 neighbours each is roughly 700 MB of routing state;
/// anything larger belongs to the analytical crates, not a simulator.
pub const MAX_OVERLAY_BITS: u32 = 22;

/// An executable DHT overlay over a fully populated identifier space.
///
/// Implementors expose their routing table ([`Overlay::neighbors`]) and their
/// greedy forwarding rule ([`Overlay::next_hop`]); the free function
/// [`crate::route`] drives the latter hop by hop under a frozen
/// [`FailureMask`].
pub trait Overlay {
    /// Short name of the routing geometry (matches the analytical crate),
    /// e.g. `"xor"`.
    fn geometry_name(&self) -> &'static str;

    /// The identifier space the overlay populates.
    fn key_space(&self) -> KeySpace;

    /// Number of nodes (always the full population `2^d`).
    fn node_count(&self) -> u64 {
        self.key_space().population()
    }

    /// The routing-table entries of `node`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `node` does not belong to the overlay's
    /// key space; use [`KeySpace::wrap`] or validated construction upstream.
    fn neighbors(&self, node: NodeId) -> &[NodeId];

    /// The greedy next hop from `current` towards `target`, honouring the
    /// protocol's own notion of progress, restricted to alive neighbours.
    ///
    /// Returns `None` when no alive neighbour makes progress — under the
    /// static-resilience model the message is then dropped (no backtracking,
    /// §4.1 of the paper).
    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId>;

    /// Total number of directed routing-table entries in the overlay.
    fn edge_count(&self) -> u64 {
        let space = self.key_space();
        space
            .iter_ids()
            .map(|node| self.neighbors(node).len() as u64)
            .sum()
    }
}

/// Validates an identifier length against [`MAX_OVERLAY_BITS`].
pub(crate) fn validate_bits(bits: u32) -> Result<KeySpace, OverlayError> {
    if bits == 0 || bits > MAX_OVERLAY_BITS {
        return Err(OverlayError::UnsupportedBits {
            bits,
            max_bits: MAX_OVERLAY_BITS,
        });
    }
    KeySpace::new(bits).map_err(|_| OverlayError::UnsupportedBits {
        bits,
        max_bits: MAX_OVERLAY_BITS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_bits_accepts_reasonable_sizes() {
        assert!(validate_bits(1).is_ok());
        assert!(validate_bits(16).is_ok());
        assert!(validate_bits(MAX_OVERLAY_BITS).is_ok());
    }

    #[test]
    fn validate_bits_rejects_extremes() {
        assert_eq!(
            validate_bits(0),
            Err(OverlayError::UnsupportedBits {
                bits: 0,
                max_bits: MAX_OVERLAY_BITS
            })
        );
        assert!(validate_bits(MAX_OVERLAY_BITS + 1).is_err());
        assert!(validate_bits(64).is_err());
    }

    #[test]
    fn error_display_is_descriptive() {
        let err = OverlayError::UnsupportedBits {
            bits: 40,
            max_bits: 22,
        };
        assert!(err.to_string().contains("40"));
        assert!(err.to_string().contains("22"));
        let err = OverlayError::InvalidParameter {
            message: "shortcuts must be positive".into(),
        };
        assert!(err.to_string().contains("shortcuts"));
    }
}
