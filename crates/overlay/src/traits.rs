//! The [`Overlay`] abstraction shared by the five executable DHTs.

use crate::failure::FailureMask;
use dht_id::{KeySpace, NodeId, Population};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while building or querying an overlay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlayError {
    /// The identifier length is outside the supported range.
    ///
    /// There are two ceilings, one per backend: materialized overlays store
    /// every table row in the CSR arena and stop at [`MAX_OVERLAY_BITS`];
    /// the implicit backend regenerates rows on demand and extends full
    /// populations to [`MAX_IMPLICIT_OVERLAY_BITS`]. `max_bits` records
    /// which ceiling the failed construction was checked against.
    UnsupportedBits {
        /// The rejected identifier length.
        bits: u32,
        /// The ceiling of the backend that rejected it: [`MAX_OVERLAY_BITS`]
        /// for materialized builds, [`MAX_IMPLICIT_OVERLAY_BITS`] for
        /// implicit ones.
        max_bits: u32,
    },
    /// A node identifier does not belong to the overlay's key space.
    UnknownNode {
        /// The offending identifier value.
        value: u64,
    },
    /// A protocol parameter was invalid (e.g. zero Symphony shortcuts).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::UnsupportedBits { bits, max_bits } => write!(
                f,
                "this backend supports at most {max_bits}-bit identifier spaces, got {bits} \
                 (materialized tables stop at {MAX_OVERLAY_BITS} bits; the implicit backend \
                 routes full populations up to {MAX_IMPLICIT_OVERLAY_BITS} bits)"
            ),
            OverlayError::UnknownNode { value } => {
                write!(f, "node {value} does not belong to this overlay")
            }
            OverlayError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
        }
    }
}

impl std::error::Error for OverlayError {}

/// Largest identifier length an executable overlay will **materialise**.
///
/// The CSR [`crate::RoutingArena`] stores all routing tables in one flat
/// allocation (no per-node `Vec` headers or allocator slop), which is what
/// lets this sit at `2^24`. This is the ceiling of the *materialized*
/// backend only: full populations can go up to
/// [`MAX_IMPLICIT_OVERLAY_BITS`] through the implicit backend
/// ([`crate::ImplicitOverlay`]), which regenerates each row from the seed on
/// demand instead of storing it.
pub const MAX_OVERLAY_BITS: u32 = 24;

/// Largest identifier length the **implicit** backend will route.
///
/// [`crate::ImplicitOverlay`] keeps no per-node state — a table row is
/// recomputed from `(seed, rank)` whenever routing needs it — so its ceiling
/// is set by the structures that *must* stay resident: the
/// [`FailureMask`] bitset (2^30 nodes = 128 MiB) and the trial engine's
/// pair-sampling index of the same order. The `dht_id` layer itself asserts
/// `bits <= 32` for full-population enumeration, so 30 leaves headroom while
/// keeping worst-case resident sets in the hundreds of megabytes.
pub const MAX_IMPLICIT_OVERLAY_BITS: u32 = 30;

/// An executable DHT overlay over the occupied identifiers of a
/// [`Population`] — fully populated (`N = 2^d`, the paper's model) or sparse
/// (`n < 2^d`, what deployed systems exhibit).
///
/// Implementors expose their routing table ([`Overlay::neighbors`]) and their
/// greedy forwarding rule ([`Overlay::next_hop`]); the free function
/// [`crate::route`] drives the latter hop by hop under a frozen
/// [`FailureMask`].
///
/// Overlays are `Send + Sync` by contract: routing tables are frozen after
/// construction and every query takes `&self`, which is what lets batch
/// drivers (`dht_sim`'s sharded trial engine, the concurrent sweep) fan one
/// overlay out across scoped threads without wrapper types.
pub trait Overlay: Send + Sync {
    /// Short name of the routing geometry (matches the analytical crate),
    /// e.g. `"xor"`.
    fn geometry_name(&self) -> &'static str;

    /// The occupied identifiers the overlay is built over.
    fn population(&self) -> &Population;

    /// The identifier space the overlay lives in.
    fn key_space(&self) -> KeySpace {
        self.population().space()
    }

    /// Number of nodes (`2^d` for a full population, the occupied count for a
    /// sparse one).
    fn node_count(&self) -> u64 {
        self.population().node_count()
    }

    /// The routing-table entries of `node`.
    ///
    /// `node` is wrapped into the overlay's key space (a width mismatch is a
    /// caller bug and trips a debug assertion rather than a panic in release
    /// builds); an identifier that is not occupied has no routing table and
    /// yields an empty slice.
    fn neighbors(&self, node: NodeId) -> &[NodeId];

    /// The greedy next hop from `current` towards `target`, honouring the
    /// protocol's own notion of progress, restricted to alive neighbours.
    ///
    /// Returns `None` when no alive neighbour makes progress — under the
    /// static-resilience model the message is then dropped (no backtracking,
    /// §4.1 of the paper).
    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId>;

    /// Total number of directed routing-table entries in the overlay.
    ///
    /// The default walks every occupied node; [`crate::GeometryOverlay`]
    /// overrides it with the O(1) entry count of its CSR arena.
    fn edge_count(&self) -> u64 {
        self.population()
            .iter_nodes()
            .map(|node| self.neighbors(node).len() as u64)
            .sum()
    }

    /// The compiled rank-space routing kernel, when the overlay can lower
    /// itself into one (see [`crate::kernel`]).
    ///
    /// Batch drivers (`dht_sim`'s trial engine) route through the kernel
    /// whenever it is available; its outcomes are bit-identical to
    /// [`Overlay::next_hop`] driven hop by hop, so callers never observe the
    /// difference except in speed. The default is `None`: scalar routing
    /// only. [`crate::GeometryOverlay`] compiles the kernel lazily on first
    /// call and caches it.
    fn kernel(&self) -> Option<&crate::kernel::RoutingKernel> {
        None
    }

    /// The implicit (generative) routing kernel, when the overlay computes
    /// table rows on demand instead of storing them (see
    /// [`crate::ImplicitOverlay`]).
    ///
    /// Batch drivers prefer [`Overlay::kernel`] when present, then fall back
    /// to this, then to scalar [`Overlay::next_hop`] routing. Implicit
    /// outcomes are bit-identical to the materialized kernel built from the
    /// same seed. The default is `None`.
    fn implicit_kernel(&self) -> Option<&crate::kernel::ImplicitKernel> {
        None
    }

    /// Bytes of routing state this overlay keeps resident in memory.
    ///
    /// Materialized overlays count their CSR arena plus any compiled kernel
    /// plan; the implicit backend counts only its constant-size descriptor
    /// (row caches are caller-owned scratch and accounted separately, as is
    /// the [`FailureMask`]). The default approximates a materialized table
    /// as one [`NodeId`] per directed edge.
    fn resident_bytes(&self) -> usize {
        self.edge_count() as usize * std::mem::size_of::<NodeId>()
    }
}

/// Validates an identifier length against [`MAX_OVERLAY_BITS`] (the
/// materialized-backend ceiling).
pub(crate) fn validate_bits(bits: u32) -> Result<KeySpace, OverlayError> {
    if bits == 0 || bits > MAX_OVERLAY_BITS {
        return Err(OverlayError::UnsupportedBits {
            bits,
            max_bits: MAX_OVERLAY_BITS,
        });
    }
    KeySpace::new(bits).map_err(|_| OverlayError::UnsupportedBits {
        bits,
        max_bits: MAX_OVERLAY_BITS,
    })
}

/// Validates an identifier length against [`MAX_IMPLICIT_OVERLAY_BITS`]
/// (the implicit-backend ceiling).
pub(crate) fn validate_implicit_bits(bits: u32) -> Result<KeySpace, OverlayError> {
    if bits == 0 || bits > MAX_IMPLICIT_OVERLAY_BITS {
        return Err(OverlayError::UnsupportedBits {
            bits,
            max_bits: MAX_IMPLICIT_OVERLAY_BITS,
        });
    }
    KeySpace::new(bits).map_err(|_| OverlayError::UnsupportedBits {
        bits,
        max_bits: MAX_IMPLICIT_OVERLAY_BITS,
    })
}

/// Validates a population for overlay construction: a supported identifier
/// length and at least two occupied identifiers (routing needs a pair).
pub(crate) fn validate_population(population: &Population) -> Result<(), OverlayError> {
    validate_bits(population.space().bits())?;
    if population.node_count() < 2 {
        return Err(OverlayError::InvalidParameter {
            message: format!(
                "an overlay needs at least two occupied identifiers, got {}",
                population.node_count()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_bits_accepts_reasonable_sizes() {
        assert!(validate_bits(1).is_ok());
        assert!(validate_bits(16).is_ok());
        assert!(validate_bits(MAX_OVERLAY_BITS).is_ok());
    }

    #[test]
    fn validate_bits_rejects_extremes() {
        assert_eq!(
            validate_bits(0),
            Err(OverlayError::UnsupportedBits {
                bits: 0,
                max_bits: MAX_OVERLAY_BITS
            })
        );
        assert!(validate_bits(MAX_OVERLAY_BITS + 1).is_err());
        assert!(validate_bits(64).is_err());
    }

    #[test]
    fn validate_implicit_bits_extends_the_ceiling_to_30() {
        assert!(validate_implicit_bits(MAX_OVERLAY_BITS + 1).is_ok());
        assert!(validate_implicit_bits(MAX_IMPLICIT_OVERLAY_BITS).is_ok());
        assert_eq!(
            validate_implicit_bits(MAX_IMPLICIT_OVERLAY_BITS + 1),
            Err(OverlayError::UnsupportedBits {
                bits: MAX_IMPLICIT_OVERLAY_BITS + 1,
                max_bits: MAX_IMPLICIT_OVERLAY_BITS
            })
        );
        assert!(validate_implicit_bits(0).is_err());
    }

    #[test]
    fn validate_population_needs_two_nodes() {
        let space = KeySpace::new(8).unwrap();
        assert!(validate_population(&Population::full(space)).is_ok());
        let pair = Population::sparse(space, [space.wrap(1), space.wrap(2)]).unwrap();
        assert!(validate_population(&pair).is_ok());
        let single = Population::sparse(space, [space.wrap(1)]).unwrap();
        assert!(matches!(
            validate_population(&single),
            Err(OverlayError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn error_display_is_descriptive() {
        let err = OverlayError::UnsupportedBits {
            bits: 40,
            max_bits: 24,
        };
        assert!(err.to_string().contains("40"));
        assert!(err.to_string().contains("24"));
        let err = OverlayError::InvalidParameter {
            message: "shortcuts must be positive".into(),
        };
        assert!(err.to_string().contains("shortcuts"));
    }
}
