//! Structured fault-injection plans: declarative descriptions of *how* an
//! overlay fails, lowered deterministically into [`FailureMask`]s.
//!
//! The static-resilience model of the paper fails nodes independently and
//! uniformly with probability `q`. Deployed DHTs rarely fail that politely:
//! racks and autonomous systems take out *contiguous* identifier spans,
//! Kademlia-style subtrees disappear bucket-aligned, adversaries target the
//! best-connected nodes, and overload cascades along overlay edges. A
//! [`FailurePlan`] captures each of these regimes as data — serializable, so
//! campaign grids can be driven from declarative scenario specs — and
//! [`FailurePlan::lower`] turns a plan plus a seed into a concrete mask.
//!
//! # Determinism
//!
//! Lowering is single-threaded and pure: the same plan, overlay and seed
//! produce a bit-identical mask on every call, on every thread count, and
//! across processes. Randomized plans derive their streams from the seed with
//! the same splitmix64 child derivation `dht_sim::SeedSequence` uses
//! (`child(i) = splitmix64(seed + i + 1)`), so campaign drivers can hand each
//! grid point an independent child seed without stream collisions.
//!
//! # Population awareness
//!
//! Plans only ever fail *occupied* identifiers: every lowering starts from
//! [`FailureMask::none_over`] the overlay's [`Population`](dht_id::Population) and kills through
//! [`FailureMask::kill`], which is a counted no-op for unoccupied slots.
//! Fractions are always relative to the occupied count (except
//! [`FailurePlan::PrefixSubtree`], which selects a fraction of the *subtree
//! prefixes* — over a full population that is the same thing).

use crate::failure::FailureMask;
use crate::live::splitmix64;
use crate::traits::{Overlay, OverlayError};
use dht_id::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Largest `prefix_bits` a [`FailurePlan::PrefixSubtree`] plan accepts.
///
/// Lowering materialises one slot per subtree prefix for the partial
/// Fisher–Yates draw, so the prefix length is capped well below the 32-bit
/// mask ceiling; 2^16 subtrees is already far finer than any bucket
/// structure the overlays build.
pub const MAX_SUBTREE_PREFIX_BITS: u32 = 16;

/// A declarative fault-injection plan: *how* nodes fail, independent of any
/// particular overlay instance or seed.
///
/// Plans are plain serializable data. [`FailurePlan::lower`] binds a plan to
/// an overlay and a seed, producing a concrete [`FailureMask`]; see the
/// [module docs](self) for the determinism and population contracts.
///
/// ```rust
/// use dht_overlay::{FailurePlan, KademliaOverlay, Overlay};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let overlay = KademliaOverlay::build(8, &mut rng)?;
/// let plan = FailurePlan::AdaptiveAdversary { fraction: 0.25, rounds: 4 };
/// let mask = plan.lower(&overlay, 42);
/// assert_eq!(mask.failed_count(), 64); // exactly round(0.25 * 2^8)
/// assert_eq!(mask.words(), plan.lower(&overlay, 42).words()); // bit-identical
/// # Ok::<(), dht_overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FailurePlan {
    /// The paper's regime: every occupied node fails independently with
    /// probability `fraction`. Lowers to exactly the mask (and RNG stream)
    /// of [`FailureMask::sample_over`], for baseline parity with every
    /// existing experiment.
    Uniform {
        /// Independent per-node failure probability `q ∈ [0, 1]`.
        fraction: f64,
    },
    /// Rack/AS-style correlated failure: `segments` contiguous spans of the
    /// identifier space fail, together covering `fraction` of the occupied
    /// nodes (exactly `round(fraction · n)` of them). Span starts are drawn
    /// uniformly; spans walk the occupied set in identifier order, so over a
    /// sparse population a "span" is contiguous in the occupied ordering,
    /// the way a rack of real nodes is.
    SegmentCorrelated {
        /// Fraction of occupied nodes failed, `∈ [0, 1]`.
        fraction: f64,
        /// Number of contiguous failed spans (≥ 1). More segments at equal
        /// `fraction` means shorter spans — closer to uniform.
        segments: u32,
    },
    /// Bucket-aligned subtree failure: `round(fraction · 2^prefix_bits)`
    /// distinct `prefix_bits`-bit prefixes are drawn uniformly and every
    /// occupied identifier under them fails — the id-space shape of a
    /// Kademlia bucket or Plaxton digit block dropping out wholesale.
    PrefixSubtree {
        /// Fraction of subtree prefixes failed, `∈ [0, 1]`.
        fraction: f64,
        /// Prefix length in bits, `1 ..= min(space bits,`
        /// [`MAX_SUBTREE_PREFIX_BITS`]`)`.
        prefix_bits: u32,
    },
    /// An informed adversary: kill the survivors with the highest in-degree
    /// (most incoming routing-table entries), re-assessing between rounds.
    /// The total budget `round(fraction · n)` is split evenly across
    /// `rounds`; within a round the in-degree snapshot is frozen (ties break
    /// towards the smaller identifier) and the reverse-edge index is
    /// maintained incrementally as victims drop. Deterministic — no
    /// randomness at all.
    AdaptiveAdversary {
        /// Fraction of occupied nodes killed, `∈ [0, 1]`.
        fraction: f64,
        /// Number of kill/re-assess rounds (≥ 1). One round is a blind
        /// hub-list strike; more rounds let the adversary adapt to the
        /// damage it has already done.
        rounds: u32,
    },
    /// Epidemic cascade: occupied nodes fail independently with probability
    /// `seed_fraction`, then each newly failed node fails each still-alive
    /// out-neighbor independently with probability `propagation`, round by
    /// round, until no new failures occur. Models correlated overload
    /// collapse along overlay edges; the realized failed fraction exceeds
    /// `seed_fraction` whenever `propagation > 0`.
    Cascade {
        /// Independent seeding failure probability, `∈ [0, 1]`.
        seed_fraction: f64,
        /// Per-edge propagation probability, `∈ [0, 1]`.
        propagation: f64,
    },
}

impl FailurePlan {
    /// Short snake_case name of the plan kind (stable; used as the campaign
    /// table/CSV label).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FailurePlan::Uniform { .. } => "uniform",
            FailurePlan::SegmentCorrelated { .. } => "segment_correlated",
            FailurePlan::PrefixSubtree { .. } => "prefix_subtree",
            FailurePlan::AdaptiveAdversary { .. } => "adaptive_adversary",
            FailurePlan::Cascade { .. } => "cascade",
        }
    }

    /// The plan's primary intensity knob: the failure (or, for
    /// [`FailurePlan::Cascade`], seeding) fraction. Campaign grids sweep
    /// this via [`FailurePlan::with_fraction`].
    #[must_use]
    pub fn target_fraction(&self) -> f64 {
        match self {
            FailurePlan::Uniform { fraction }
            | FailurePlan::SegmentCorrelated { fraction, .. }
            | FailurePlan::PrefixSubtree { fraction, .. }
            | FailurePlan::AdaptiveAdversary { fraction, .. } => *fraction,
            FailurePlan::Cascade { seed_fraction, .. } => *seed_fraction,
        }
    }

    /// The same plan re-targeted at failure fraction `fraction`, structural
    /// parameters (segments, prefix length, rounds, propagation) unchanged.
    /// This is how a campaign grid sweeps one plan template across its
    /// failed-fraction axis.
    #[must_use]
    pub fn with_fraction(&self, fraction: f64) -> FailurePlan {
        let mut plan = self.clone();
        match &mut plan {
            FailurePlan::Uniform { fraction: f }
            | FailurePlan::SegmentCorrelated { fraction: f, .. }
            | FailurePlan::PrefixSubtree { fraction: f, .. }
            | FailurePlan::AdaptiveAdversary { fraction: f, .. }
            | FailurePlan::Cascade {
                seed_fraction: f, ..
            } => *f = fraction,
        }
        plan
    }

    /// Checks every parameter range.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::InvalidParameter`] naming the violated
    /// constraint: fractions and probabilities must be finite and in
    /// `[0, 1]`, `segments` and `rounds` must be ≥ 1, and `prefix_bits`
    /// must be in `1 ..= `[`MAX_SUBTREE_PREFIX_BITS`].
    pub fn validate(&self) -> Result<(), OverlayError> {
        let invalid = |message: String| Err(OverlayError::InvalidParameter { message });
        let check_fraction = |label: &str, value: f64| {
            if value.is_finite() && (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                invalid(format!("{label} must be in [0, 1], got {value}"))
            }
        };
        match self {
            FailurePlan::Uniform { fraction } => check_fraction("uniform fraction", *fraction),
            FailurePlan::SegmentCorrelated { fraction, segments } => {
                check_fraction("segment_correlated fraction", *fraction)?;
                if *segments == 0 {
                    return invalid("segment_correlated needs at least 1 segment".to_owned());
                }
                Ok(())
            }
            FailurePlan::PrefixSubtree {
                fraction,
                prefix_bits,
            } => {
                check_fraction("prefix_subtree fraction", *fraction)?;
                if !(1..=MAX_SUBTREE_PREFIX_BITS).contains(prefix_bits) {
                    return invalid(format!(
                        "prefix_subtree prefix_bits must be in 1..={MAX_SUBTREE_PREFIX_BITS}, \
                         got {prefix_bits}"
                    ));
                }
                Ok(())
            }
            FailurePlan::AdaptiveAdversary { fraction, rounds } => {
                check_fraction("adaptive_adversary fraction", *fraction)?;
                if *rounds == 0 {
                    return invalid("adaptive_adversary needs at least 1 round".to_owned());
                }
                Ok(())
            }
            FailurePlan::Cascade {
                seed_fraction,
                propagation,
            } => {
                check_fraction("cascade seed_fraction", *seed_fraction)?;
                check_fraction("cascade propagation", *propagation)
            }
        }
    }

    /// Lowers the plan into a concrete [`FailureMask`] over `overlay`'s
    /// population, deterministically from `seed`.
    ///
    /// Single-threaded and pure: equal `(plan, overlay, seed)` always yield
    /// bit-identical masks. Randomized plans consume splitmix64 child
    /// streams of `seed` (see the [module docs](self)); the adaptive
    /// adversary consumes none.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FailurePlan::validate`], or if a
    /// [`FailurePlan::PrefixSubtree`] plan's `prefix_bits` exceeds the
    /// overlay's identifier length.
    #[must_use]
    pub fn lower<O: Overlay + ?Sized>(&self, overlay: &O, seed: u64) -> FailureMask {
        if let Err(err) = self.validate() {
            panic!("cannot lower invalid failure plan: {err}");
        }
        match self {
            FailurePlan::Uniform { fraction } => {
                FailureMask::sample_over(overlay.population(), *fraction, &mut child_rng(seed, 0))
            }
            FailurePlan::SegmentCorrelated { fraction, segments } => {
                lower_segments(overlay, *fraction, *segments, seed)
            }
            FailurePlan::PrefixSubtree {
                fraction,
                prefix_bits,
            } => lower_prefixes(overlay, *fraction, *prefix_bits, seed),
            FailurePlan::AdaptiveAdversary { fraction, rounds } => {
                lower_adaptive(overlay, *fraction, *rounds)
            }
            FailurePlan::Cascade {
                seed_fraction,
                propagation,
            } => lower_cascade(overlay, *seed_fraction, *propagation, seed),
        }
    }
}

/// The `index`-th child RNG of `seed`, matching `dht_sim::SeedSequence`'s
/// `child(i) = splitmix64(master + i + 1)` derivation.
fn child_rng(seed: u64, index: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(splitmix64(seed.wrapping_add(index).wrapping_add(1)))
}

/// Exact kill budget for `fraction` of `n` occupied nodes.
fn kill_budget(fraction: f64, n: u64) -> u64 {
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rounded = (fraction * n as f64).round() as u64;
    rounded.min(n)
}

fn lower_segments<O: Overlay + ?Sized>(
    overlay: &O,
    fraction: f64,
    segments: u32,
    seed: u64,
) -> FailureMask {
    let population = overlay.population();
    let n = population.node_count();
    let mut mask = FailureMask::none_over(population);
    let total = kill_budget(fraction, n);
    if total == 0 {
        return mask;
    }
    let mut rng = child_rng(seed, 0);
    // No more spans than kills: a span must fail at least one node.
    let spans = u64::from(segments).min(total);
    for span in 0..spans {
        let mut span_budget = total / spans + u64::from(span < total % spans);
        let mut rank = rng.gen_range(0..n);
        // Walk the occupied set cyclically from the drawn start, skipping
        // nodes an earlier (overlapping) span already felled. `total <= n`
        // guarantees an alive node exists while any budget remains.
        while span_budget > 0 {
            if mask.kill(population.node_at(rank)) {
                span_budget -= 1;
            }
            rank = (rank + 1) % n;
        }
    }
    mask
}

fn lower_prefixes<O: Overlay + ?Sized>(
    overlay: &O,
    fraction: f64,
    prefix_bits: u32,
    seed: u64,
) -> FailureMask {
    let population = overlay.population();
    let space = population.space();
    assert!(
        prefix_bits <= space.bits(),
        "prefix_subtree prefix_bits ({prefix_bits}) exceeds the overlay's \
         identifier length ({})",
        space.bits()
    );
    let mut mask = FailureMask::none_over(population);
    let subtrees = 1u64 << prefix_bits;
    let chosen = kill_budget(fraction, subtrees);
    if chosen == 0 {
        return mask;
    }
    let mut rng = child_rng(seed, 0);
    // Partial Fisher–Yates: the first `chosen` slots end up holding a
    // uniform draw of distinct prefixes.
    let mut slots: Vec<u64> = (0..subtrees).collect();
    for i in 0..chosen {
        let j = rng.gen_range(i..subtrees);
        #[allow(clippy::cast_possible_truncation)]
        slots.swap(i as usize, j as usize);
    }
    let shift = space.bits() - prefix_bits;
    #[allow(clippy::cast_possible_truncation)]
    for &prefix in &slots[..chosen as usize] {
        let base = prefix << shift;
        for value in base..base + (1u64 << shift) {
            // Counted no-op for unoccupied identifiers.
            let _ = mask.kill(space.wrap(value));
        }
    }
    mask
}

fn lower_adaptive<O: Overlay + ?Sized>(overlay: &O, fraction: f64, rounds: u32) -> FailureMask {
    let population = overlay.population();
    let n = population.node_count();
    let mut mask = FailureMask::none_over(population);
    let total = kill_budget(fraction, n);
    if total == 0 {
        return mask;
    }
    // Reverse-edge index over the whole identifier space: indeg[v] = number
    // of *alive* occupied nodes whose routing table points at v. Built once,
    // then maintained incrementally as victims drop.
    #[allow(clippy::cast_possible_truncation)]
    let mut indeg = vec![0u32; population.space().population() as usize];
    for node in population.iter_nodes() {
        for &entry in overlay.neighbors(node) {
            indeg[entry.value() as usize] += 1;
        }
    }
    let rounds = u64::from(rounds).min(total);
    let mut candidates: Vec<NodeId> = Vec::new();
    for round in 0..rounds {
        let round_budget = total / rounds + u64::from(round < total % rounds);
        // Freeze this round's in-degree snapshot: highest in-degree first,
        // ties towards the smaller identifier.
        candidates.clear();
        candidates.extend(mask.alive_nodes());
        candidates.sort_unstable_by(|a, b| {
            indeg[b.value() as usize]
                .cmp(&indeg[a.value() as usize])
                .then(a.value().cmp(&b.value()))
        });
        #[allow(clippy::cast_possible_truncation)]
        for &victim in &candidates[..round_budget as usize] {
            let _ = mask.kill(victim);
            for &entry in overlay.neighbors(victim) {
                let slot = &mut indeg[entry.value() as usize];
                *slot = slot.saturating_sub(1);
            }
        }
    }
    mask
}

fn lower_cascade<O: Overlay + ?Sized>(
    overlay: &O,
    seed_fraction: f64,
    propagation: f64,
    seed: u64,
) -> FailureMask {
    let population = overlay.population();
    let mut mask = FailureMask::none_over(population);
    // Child 0 seeds (sample_over's exact stream shape), child 1 propagates —
    // separate streams so the seeding pattern at a given seed is independent
    // of the propagation parameter.
    let mut seeder = child_rng(seed, 0);
    let mut frontier: Vec<NodeId> = Vec::new();
    for node in population.iter_nodes() {
        if seeder.gen_bool(seed_fraction) && mask.kill(node) {
            frontier.push(node);
        }
    }
    let mut rng = child_rng(seed, 1);
    let mut next: Vec<NodeId> = Vec::new();
    while !frontier.is_empty() {
        next.clear();
        for &failed in &frontier {
            for &neighbor in overlay.neighbors(failed) {
                // One Bernoulli draw per (failed node, alive neighbor) edge,
                // in deterministic table order.
                if mask.is_alive(neighbor) && rng.gen_bool(propagation) && mask.kill(neighbor) {
                    next.push(neighbor);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chord::{ChordOverlay, ChordVariant};
    use crate::generic::NoRandomness;
    use crate::kademlia::KademliaOverlay;
    use dht_id::{KeySpace, Population};

    fn ring(bits: u32) -> ChordOverlay {
        ChordOverlay::build(bits, ChordVariant::Deterministic).unwrap()
    }

    fn xor(bits: u32) -> KademliaOverlay {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        KademliaOverlay::build(bits, &mut rng).unwrap()
    }

    fn all_plans(fraction: f64) -> Vec<FailurePlan> {
        vec![
            FailurePlan::Uniform { fraction },
            FailurePlan::SegmentCorrelated {
                fraction,
                segments: 4,
            },
            FailurePlan::PrefixSubtree {
                fraction,
                prefix_bits: 3,
            },
            FailurePlan::AdaptiveAdversary {
                fraction,
                rounds: 3,
            },
            FailurePlan::Cascade {
                seed_fraction: fraction,
                propagation: 0.3,
            },
        ]
    }

    #[test]
    fn uniform_lowering_matches_the_existing_sampling_regime() {
        let overlay = ring(8);
        let plan = FailurePlan::Uniform { fraction: 0.3 };
        let lowered = plan.lower(&overlay, 99);
        let mut rng = ChaCha8Rng::seed_from_u64(splitmix64(100));
        let sampled = FailureMask::sample_over(overlay.population(), 0.3, &mut rng);
        assert_eq!(lowered.words(), sampled.words());
        assert_eq!(lowered.failed_count(), sampled.failed_count());
    }

    #[test]
    fn every_plan_lowers_bit_identically_for_a_fixed_seed() {
        let overlay = xor(8);
        for plan in all_plans(0.35) {
            let first = plan.lower(&overlay, 4242);
            let second = plan.lower(&overlay, 4242);
            assert_eq!(first.words(), second.words(), "{} drifted", plan.name());
            assert_eq!(first.failed_count(), second.failed_count());
            let other_seed = plan.lower(&overlay, 4243);
            if !matches!(plan, FailurePlan::AdaptiveAdversary { .. }) {
                assert_ne!(
                    first.words(),
                    other_seed.words(),
                    "{} ignored its seed",
                    plan.name()
                );
            }
        }
    }

    #[test]
    fn segment_and_adaptive_budgets_are_exact() {
        let overlay = ring(9);
        let n = overlay.node_count();
        for q in [0.1, 0.25, 0.5] {
            let expected = (q * n as f64).round() as u64;
            for plan in [
                FailurePlan::SegmentCorrelated {
                    fraction: q,
                    segments: 5,
                },
                FailurePlan::AdaptiveAdversary {
                    fraction: q,
                    rounds: 4,
                },
            ] {
                let mask = plan.lower(&overlay, 11);
                assert_eq!(mask.failed_count(), expected, "{} at q={q}", plan.name());
            }
        }
    }

    #[test]
    fn prefix_subtree_failures_are_bucket_aligned() {
        let overlay = xor(9);
        let prefix_bits = 3;
        let plan = FailurePlan::PrefixSubtree {
            fraction: 0.25,
            prefix_bits,
        };
        let mask = plan.lower(&overlay, 5);
        let chosen = (0.25f64 * 8.0).round() as u64;
        let subtree = 1u64 << (9 - prefix_bits);
        assert_eq!(mask.failed_count(), chosen * subtree);
        let shift = 9 - prefix_bits;
        let failed_prefixes: std::collections::BTreeSet<u64> = overlay
            .population()
            .iter_nodes()
            .filter(|&node| mask.is_failed(node))
            .map(|node| node.value() >> shift)
            .collect();
        assert_eq!(failed_prefixes.len() as u64, chosen);
        for prefix in failed_prefixes {
            for value in prefix << shift..(prefix + 1) << shift {
                assert!(mask.is_failed(overlay.key_space().wrap(value)));
            }
        }
    }

    #[test]
    fn adaptive_adversary_prefers_high_in_degree_nodes() {
        // A sparse ring has uneven in-degree (successor/finger resolution
        // concentrates on some nodes); the adversary's victims must have
        // in-degree at least as high as every survivor in round one.
        let space = KeySpace::new(8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let population = Population::sample_uniform(space, 100, &mut rng).unwrap();
        let overlay =
            ChordOverlay::build_over(population, ChordVariant::Deterministic, &mut NoRandomness)
                .unwrap();
        let plan = FailurePlan::AdaptiveAdversary {
            fraction: 0.2,
            rounds: 1,
        };
        let mask = plan.lower(&overlay, 0);
        let mut indeg = vec![0u32; space.population() as usize];
        for node in overlay.population().iter_nodes() {
            for &entry in overlay.neighbors(node) {
                indeg[entry.value() as usize] += 1;
            }
        }
        let min_victim = overlay
            .population()
            .iter_nodes()
            .filter(|&node| mask.is_failed(node))
            .map(|node| indeg[node.value() as usize])
            .min()
            .unwrap();
        let max_survivor = overlay
            .population()
            .iter_nodes()
            .filter(|&node| mask.is_alive(node))
            .map(|node| indeg[node.value() as usize])
            .max()
            .unwrap();
        assert!(min_victim >= max_survivor);
    }

    #[test]
    fn cascade_without_propagation_is_exactly_its_seeding() {
        let overlay = ring(8);
        let seeded = FailurePlan::Cascade {
            seed_fraction: 0.3,
            propagation: 0.0,
        }
        .lower(&overlay, 17);
        let uniform = FailurePlan::Uniform { fraction: 0.3 }.lower(&overlay, 17);
        assert_eq!(seeded.words(), uniform.words());
        let spread = FailurePlan::Cascade {
            seed_fraction: 0.3,
            propagation: 0.5,
        }
        .lower(&overlay, 17);
        assert!(spread.failed_count() > seeded.failed_count());
        for node in overlay.population().iter_nodes() {
            if seeded.is_failed(node) {
                assert!(spread.is_failed(node), "cascade dropped a seed failure");
            }
        }
    }

    #[test]
    fn plans_respect_sparse_occupancy() {
        let space = KeySpace::new(10).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let population = Population::sample_uniform(space, 200, &mut rng).unwrap();
        let overlay = ChordOverlay::build_over(
            population.clone(),
            ChordVariant::Deterministic,
            &mut NoRandomness,
        )
        .unwrap();
        for plan in all_plans(0.4) {
            let mask = plan.lower(&overlay, 8);
            assert_eq!(mask.population_size(), 200);
            assert!(mask.failed_count() <= 200, "{}", plan.name());
            assert_eq!(
                mask.alive_count() + mask.failed_count(),
                200,
                "{} touched unoccupied identifiers",
                plan.name()
            );
            for node in mask.alive_nodes() {
                assert!(population.contains(node));
            }
        }
    }

    #[test]
    fn with_fraction_retargets_every_plan() {
        for plan in all_plans(0.1) {
            let retargeted = plan.with_fraction(0.6);
            assert_eq!(retargeted.target_fraction(), 0.6);
            assert_eq!(retargeted.name(), plan.name());
        }
    }

    #[test]
    fn plans_round_trip_through_json() {
        for plan in all_plans(0.25) {
            let json = serde_json::to_string(&plan).unwrap();
            let back: FailurePlan = serde_json::from_str(&json).unwrap();
            assert_eq!(back, plan);
        }
    }

    #[test]
    fn validation_rejects_out_of_range_parameters() {
        let bad = [
            FailurePlan::Uniform { fraction: -0.1 },
            FailurePlan::Uniform { fraction: f64::NAN },
            FailurePlan::SegmentCorrelated {
                fraction: 0.3,
                segments: 0,
            },
            FailurePlan::PrefixSubtree {
                fraction: 0.3,
                prefix_bits: 0,
            },
            FailurePlan::PrefixSubtree {
                fraction: 0.3,
                prefix_bits: MAX_SUBTREE_PREFIX_BITS + 1,
            },
            FailurePlan::AdaptiveAdversary {
                fraction: 0.3,
                rounds: 0,
            },
            FailurePlan::Cascade {
                seed_fraction: 0.3,
                propagation: 1.5,
            },
        ];
        for plan in bad {
            assert!(
                matches!(plan.validate(), Err(OverlayError::InvalidParameter { .. })),
                "{plan:?} passed validation"
            );
        }
        for plan in all_plans(0.0) {
            plan.validate().unwrap();
        }
    }
}
