//! The CAN-style hypercube overlay (§3.2 of the paper).

use crate::failure::FailureMask;
use crate::traits::{validate_bits, Overlay, OverlayError};
use dht_id::{distance::hamming, KeySpace, NodeId};

/// A binary hypercube overlay: node identifiers are coordinates in a
/// `d`-dimensional binary space and each node is connected to the `d` nodes
/// that differ from it in exactly one bit.
///
/// Routing is greedy on the Hamming distance and may correct the differing
/// bits in any order, which is what makes the geometry robust: a hop fails
/// only when *all* neighbours that would correct a bit are down.
///
/// # Example
///
/// ```rust
/// use dht_overlay::{CanOverlay, FailureMask, Overlay, RouteOutcome, route};
///
/// let overlay = CanOverlay::build(3)?; // the 8-node cube of Fig. 1
/// let space = overlay.key_space();
/// let mask = FailureMask::none(space);
/// let outcome = route(&overlay, space.wrap(0b011), space.wrap(0b100), &mask);
/// assert_eq!(outcome, RouteOutcome::Delivered { hops: 3 });
/// # Ok::<(), dht_overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CanOverlay {
    space: KeySpace,
    tables: Vec<Vec<NodeId>>,
}

impl CanOverlay {
    /// Builds the fully populated `d`-dimensional binary hypercube.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] if `bits` is zero or larger
    /// than [`crate::traits::MAX_OVERLAY_BITS`].
    pub fn build(bits: u32) -> Result<Self, OverlayError> {
        let space = validate_bits(bits)?;
        let tables = space
            .iter_ids()
            .map(|node| {
                (0..bits)
                    .map(|bit| {
                        node.flip_bit(bit)
                            .expect("bit index is within the key space")
                    })
                    .collect()
            })
            .collect();
        Ok(CanOverlay { space, tables })
    }
}

impl Overlay for CanOverlay {
    fn geometry_name(&self) -> &'static str {
        "hypercube"
    }

    fn key_space(&self) -> KeySpace {
        self.space
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.tables[node.value() as usize]
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        let current_distance = hamming(current, target);
        // Any alive neighbour that corrects one of the differing bits is a
        // valid greedy hop; prefer the one correcting the highest-order bit to
        // keep the choice deterministic.
        self.neighbors(current)
            .iter()
            .copied()
            .filter(|&n| alive.is_alive(n) && hamming(n, target) < current_distance)
            .min_by_key(|n| n.value() ^ target.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route, RouteOutcome};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn every_node_has_d_neighbors_at_hamming_distance_one() {
        let overlay = CanOverlay::build(6).unwrap();
        let space = overlay.key_space();
        for node in space.iter_ids() {
            let neighbors = overlay.neighbors(node);
            assert_eq!(neighbors.len(), 6);
            for &n in neighbors {
                assert_eq!(hamming(node, n), 1);
            }
        }
        assert_eq!(overlay.edge_count(), 64 * 6);
    }

    #[test]
    fn perfect_network_routes_in_hamming_distance_hops() {
        let overlay = CanOverlay::build(8).unwrap();
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..200 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            let expected = hamming(source, target);
            assert_eq!(
                route(&overlay, source, target, &mask),
                RouteOutcome::Delivered { hops: expected }
            );
        }
    }

    #[test]
    fn figure_one_worked_example() {
        // Fig. 1–3: routing from 011 to 100 in the 8-node cube crosses three
        // dimensions; 3 choices for the first hop, 2 for the second, 1 last.
        let overlay = CanOverlay::build(3).unwrap();
        let space = overlay.key_space();
        let source = space.wrap(0b011);
        assert_eq!(overlay.neighbors(source).len(), 3);
        let mask = FailureMask::none(space);
        assert_eq!(
            route(&overlay, source, space.wrap(0b100), &mask),
            RouteOutcome::Delivered { hops: 3 }
        );
    }

    #[test]
    fn routes_around_a_failed_intermediate() {
        let overlay = CanOverlay::build(3).unwrap();
        let space = overlay.key_space();
        // Kill one of the three possible first hops from 011 to 100; the
        // greedy rule must pick another dimension and still deliver.
        let mask = FailureMask::from_failed_nodes(space, [space.wrap(0b111)]);
        assert_eq!(
            route(&overlay, space.wrap(0b011), space.wrap(0b100), &mask),
            RouteOutcome::Delivered { hops: 3 }
        );
    }

    #[test]
    fn drops_when_every_corrective_neighbor_failed() {
        let overlay = CanOverlay::build(3).unwrap();
        let space = overlay.key_space();
        // All three neighbours of 011 that make progress towards 100 are
        // 111, 001 and 010; failing them strands the message immediately.
        let mask = FailureMask::from_failed_nodes(
            space,
            [space.wrap(0b111), space.wrap(0b001), space.wrap(0b010)],
        );
        match route(&overlay, space.wrap(0b011), space.wrap(0b100), &mask) {
            RouteOutcome::Dropped { hops, stuck_at } => {
                assert_eq!(hops, 0);
                assert_eq!(stuck_at, space.wrap(0b011));
            }
            other => panic!("expected drop, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_spaces() {
        assert!(CanOverlay::build(0).is_err());
        assert!(CanOverlay::build(40).is_err());
    }
}
