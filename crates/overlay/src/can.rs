//! The CAN-style hypercube overlay (§3.2 of the paper).

use crate::failure::FailureMask;
use crate::generic::{GeometryOverlay, GeometryStrategy, NoRandomness};
use crate::traits::{validate_bits, Overlay, OverlayError};
use dht_id::{distance::hamming, KeySpace, NodeId, Population};
use rand::Rng;

/// The hypercube geometry as a [`GeometryStrategy`]: one link per dimension,
/// greedy forwarding on the Hamming distance.
///
/// Over a sparse population only the occupied single-bit flips are linked, so
/// node degrees shrink with the occupancy and — unlike the ring and prefix
/// geometries — an intact sparse hypercube is *not* guaranteed to be
/// routable: greedy Hamming routing has no detour around a missing
/// coordinate neighbour.
#[derive(Debug, Clone, Copy, Default)]
pub struct CanStrategy;

impl GeometryStrategy for CanStrategy {
    fn geometry_name(&self) -> &'static str {
        "hypercube"
    }

    fn table_len_hint(&self, population: &Population) -> usize {
        // Expected degree d·occupancy; sizing for the full d only wastes
        // capacity at low occupancy.
        (population.space().bits() as f64 * population.occupancy()).ceil() as usize
    }

    fn build_table<R: Rng + ?Sized>(
        &self,
        population: &Population,
        node: NodeId,
        _rng: &mut R,
        table: &mut Vec<NodeId>,
    ) {
        for bit in 0..population.space().bits() {
            let neighbor = node
                .flip_bit(bit)
                .expect("bit index is within the key space");
            if population.contains(neighbor) {
                table.push(neighbor);
            }
        }
    }

    fn next_hop(
        &self,
        neighbors: &[NodeId],
        current: NodeId,
        target: NodeId,
        alive: &FailureMask,
    ) -> Option<NodeId> {
        let current_distance = hamming(current, target);
        // Any alive neighbour that corrects one of the differing bits is a
        // valid greedy hop; prefer the one correcting the highest-order bit to
        // keep the choice deterministic.
        neighbors
            .iter()
            .copied()
            .filter(|&n| alive.is_alive(n) && hamming(n, target) < current_distance)
            .min_by_key(|n| n.value() ^ target.value())
    }

    fn kernel_rule(&self) -> Option<crate::kernel::KernelRule> {
        // Hop key: each link's flipped-bit weight, most significant first —
        // the first weight still set in the XOR diff is the scalar minimum.
        Some(crate::kernel::KernelRule::HypercubeBit)
    }

    fn implicit_stream_words(&self, population: &Population) -> Option<u64> {
        // Hypercube links are fully determined by the identifier: no draws.
        population.is_full().then_some(0)
    }

    fn supports_live(&self) -> bool {
        true
    }

    fn live_table_width(&self, population: &Population) -> usize {
        // Unlike the variable-width static tables, the live family keeps one
        // slot per dimension (self placeholders for unoccupied or dead flips)
        // so in-place repair never resizes a row.
        population.space().bits() as usize
    }

    fn build_live_table(
        &self,
        population: &Population,
        node: NodeId,
        _node_seed: u64,
        alive: &FailureMask,
        table: &mut Vec<NodeId>,
    ) {
        for bit in 0..population.space().bits() {
            let neighbor = node
                .flip_bit(bit)
                .expect("bit index is within the key space");
            if population.contains(neighbor) && alive.is_alive(neighbor) {
                table.push(neighbor);
            } else {
                table.push(node);
            }
        }
    }

    fn live_repair_candidates(
        &self,
        population: &Population,
        node: NodeId,
        alive: &FailureMask,
        _witnesses: &mut Vec<NodeId>,
        direct: &mut Vec<NodeId>,
    ) {
        // A hypercube link is mutual: the only tables a join changes are the
        // occupied alive single-bit flips, whose stale entries were self
        // placeholders (no reverse edge records them, hence `direct`).
        for bit in 0..population.space().bits() {
            let neighbor = node
                .flip_bit(bit)
                .expect("bit index is within the key space");
            if population.contains(neighbor) && alive.is_alive(neighbor) {
                direct.push(neighbor);
            }
        }
    }
}

/// A binary hypercube overlay: node identifiers are coordinates in a
/// `d`-dimensional binary space and each node is connected to the `d` nodes
/// that differ from it in exactly one bit.
///
/// Routing is greedy on the Hamming distance and may correct the differing
/// bits in any order, which is what makes the geometry robust: a hop fails
/// only when *all* neighbours that would correct a bit are down.
///
/// # Example
///
/// ```rust
/// use dht_overlay::{CanOverlay, FailureMask, Overlay, RouteOutcome, route};
///
/// let overlay = CanOverlay::build(3)?; // the 8-node cube of Fig. 1
/// let space = overlay.key_space();
/// let mask = FailureMask::none(space);
/// let outcome = route(&overlay, space.wrap(0b011), space.wrap(0b100), &mask);
/// assert_eq!(outcome, RouteOutcome::Delivered { hops: 3 });
/// # Ok::<(), dht_overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CanOverlay {
    inner: GeometryOverlay<CanStrategy>,
}

impl CanOverlay {
    /// Builds the fully populated `d`-dimensional binary hypercube.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] if `bits` is zero or larger
    /// than [`crate::traits::MAX_OVERLAY_BITS`] (the materialized ceiling —
    /// [`crate::ImplicitOverlay::hypercube`] routes larger full populations).
    pub fn build(bits: u32) -> Result<Self, OverlayError> {
        let space = validate_bits(bits)?;
        Self::build_over(Population::full(space))
    }

    /// Builds the overlay over an arbitrary (possibly sparse) population;
    /// each node links to the occupied identifiers one bit-flip away.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] or
    /// [`OverlayError::InvalidParameter`] as in [`GeometryOverlay::build`].
    pub fn build_over(population: Population) -> Result<Self, OverlayError> {
        Ok(CanOverlay {
            inner: GeometryOverlay::build(population, CanStrategy, &mut NoRandomness)?,
        })
    }
}

impl Overlay for CanOverlay {
    fn geometry_name(&self) -> &'static str {
        self.inner.geometry_name()
    }

    fn key_space(&self) -> KeySpace {
        self.inner.key_space()
    }

    fn population(&self) -> &Population {
        self.inner.population()
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.inner.neighbors(node)
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        self.inner.next_hop(current, target, alive)
    }

    fn edge_count(&self) -> u64 {
        self.inner.edge_count()
    }

    fn kernel(&self) -> Option<&crate::kernel::RoutingKernel> {
        self.inner.routing_kernel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route, RouteOutcome};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn every_node_has_d_neighbors_at_hamming_distance_one() {
        let overlay = CanOverlay::build(6).unwrap();
        let space = overlay.key_space();
        for node in space.iter_ids() {
            let neighbors = overlay.neighbors(node);
            assert_eq!(neighbors.len(), 6);
            for &n in neighbors {
                assert_eq!(hamming(node, n), 1);
            }
        }
        assert_eq!(overlay.edge_count(), 64 * 6);
    }

    #[test]
    fn perfect_network_routes_in_hamming_distance_hops() {
        let overlay = CanOverlay::build(8).unwrap();
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..200 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            let expected = hamming(source, target);
            assert_eq!(
                route(&overlay, source, target, &mask),
                RouteOutcome::Delivered { hops: expected }
            );
        }
    }

    #[test]
    fn figure_one_worked_example() {
        // Fig. 1–3: routing from 011 to 100 in the 8-node cube crosses three
        // dimensions; 3 choices for the first hop, 2 for the second, 1 last.
        let overlay = CanOverlay::build(3).unwrap();
        let space = overlay.key_space();
        let source = space.wrap(0b011);
        assert_eq!(overlay.neighbors(source).len(), 3);
        let mask = FailureMask::none(space);
        assert_eq!(
            route(&overlay, source, space.wrap(0b100), &mask),
            RouteOutcome::Delivered { hops: 3 }
        );
    }

    #[test]
    fn routes_around_a_failed_intermediate() {
        let overlay = CanOverlay::build(3).unwrap();
        let space = overlay.key_space();
        // Kill one of the three possible first hops from 011 to 100; the
        // greedy rule must pick another dimension and still deliver.
        let mask = FailureMask::from_failed_nodes(space, [space.wrap(0b111)]);
        assert_eq!(
            route(&overlay, space.wrap(0b011), space.wrap(0b100), &mask),
            RouteOutcome::Delivered { hops: 3 }
        );
    }

    #[test]
    fn drops_when_every_corrective_neighbor_failed() {
        let overlay = CanOverlay::build(3).unwrap();
        let space = overlay.key_space();
        // All three neighbours of 011 that make progress towards 100 are
        // 111, 001 and 010; failing them strands the message immediately.
        let mask = FailureMask::from_failed_nodes(
            space,
            [space.wrap(0b111), space.wrap(0b001), space.wrap(0b010)],
        );
        match route(&overlay, space.wrap(0b011), space.wrap(0b100), &mask) {
            RouteOutcome::Dropped { hops, stuck_at } => {
                assert_eq!(hops, 0);
                assert_eq!(stuck_at, space.wrap(0b011));
            }
            other => panic!("expected drop, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_spaces() {
        assert!(CanOverlay::build(0).is_err());
        assert!(CanOverlay::build(40).is_err());
    }

    #[test]
    fn sparse_hypercube_links_only_occupied_flips() {
        let space = KeySpace::new(4).unwrap();
        // 0000, 0001, 0011: 0000 links only to 0001; 0001 to both others.
        let population = Population::sparse(
            space,
            [space.wrap(0b0000), space.wrap(0b0001), space.wrap(0b0011)],
        )
        .unwrap();
        let overlay = CanOverlay::build_over(population).unwrap();
        assert_eq!(overlay.neighbors(space.wrap(0b0000)), &[space.wrap(0b0001)]);
        assert_eq!(overlay.neighbors(space.wrap(0b0001)).len(), 2);
        assert_eq!(overlay.edge_count(), 4);
        // 0000 -> 0011 routes through 0001.
        let mask = FailureMask::none_over(overlay.population());
        assert_eq!(
            route(&overlay, space.wrap(0b0000), space.wrap(0b0011), &mask),
            RouteOutcome::Delivered { hops: 2 }
        );
    }

    #[test]
    fn sparse_hypercube_can_strand_messages_even_intact() {
        let space = KeySpace::new(4).unwrap();
        // 0000 and 0011 differ in two bits but neither intermediate (0001,
        // 0010) is occupied: greedy Hamming routing has nowhere to go.
        let population =
            Population::sparse(space, [space.wrap(0b0000), space.wrap(0b0011)]).unwrap();
        let overlay = CanOverlay::build_over(population).unwrap();
        let mask = FailureMask::none_over(overlay.population());
        match route(&overlay, space.wrap(0b0000), space.wrap(0b0011), &mask) {
            RouteOutcome::Dropped { hops: 0, stuck_at } => {
                assert_eq!(stuck_at, space.wrap(0b0000));
            }
            other => panic!("expected an immediate drop, got {other:?}"),
        }
    }
}
