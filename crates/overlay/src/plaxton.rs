//! The Plaxton-style tree overlay (§3.1 of the paper).

use crate::failure::FailureMask;
use crate::generic::{GeometryOverlay, GeometryStrategy};
use crate::kademlia::build_prefix_table;
use crate::traits::{validate_bits, Overlay, OverlayError};
use dht_id::{prefix::highest_differing_bit, KeySpace, NodeId, Population};
use rand::Rng;

/// The tree geometry as a [`GeometryStrategy`]: prefix tables (structurally
/// the XOR tables; see [`crate::kademlia`]) with the rigid forwarding rule —
/// every hop must correct the highest-order differing bit, no fallback.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlaxtonStrategy;

impl GeometryStrategy for PlaxtonStrategy {
    fn geometry_name(&self) -> &'static str {
        "tree"
    }

    fn table_len_hint(&self, population: &Population) -> usize {
        population.space().bits() as usize
    }

    fn build_table<R: Rng + ?Sized>(
        &self,
        population: &Population,
        node: NodeId,
        rng: &mut R,
        table: &mut Vec<NodeId>,
    ) {
        build_prefix_table(population, node, rng, table);
    }

    fn next_hop(
        &self,
        neighbors: &[NodeId],
        current: NodeId,
        target: NodeId,
        alive: &FailureMask,
    ) -> Option<NodeId> {
        let level = highest_differing_bit(current, target)?;
        let entry = *neighbors.get(level as usize)?;
        // A self-entry is the sparse placeholder for an empty level — the
        // protocol has nowhere to forward. Otherwise the entry may happen not
        // to share the target's next bits and that is fine — it corrects the
        // highest-order bit, and later hops fix the rest — but it must be
        // alive, because the protocol has no fallback.
        if entry == current {
            return None;
        }
        alive.is_alive(entry).then_some(entry)
    }

    fn kernel_rule(&self) -> Option<crate::kernel::KernelRule> {
        // Hop key: the entry's value at its level position; a single
        // leading-zero-dispatched probe, no fallback.
        Some(crate::kernel::KernelRule::PrefixTree)
    }

    fn implicit_stream_words(&self, population: &Population) -> Option<u64> {
        // Same construction family as the XOR geometry: one `random_id` (two
        // words) per level over a full population.
        population
            .is_full()
            .then(|| 2 * u64::from(population.space().bits()))
    }

    fn supports_live(&self) -> bool {
        true
    }

    fn live_table_width(&self, population: &Population) -> usize {
        population.space().bits() as usize
    }

    fn build_live_table(
        &self,
        population: &Population,
        node: NodeId,
        node_seed: u64,
        alive: &FailureMask,
        table: &mut Vec<NodeId>,
    ) {
        // Same live family as the XOR geometry — the tables are structurally
        // identical, only the forwarding rule differs.
        crate::kademlia::build_live_prefix_table(population, node, node_seed, alive, table);
    }

    fn live_repair_candidates(
        &self,
        population: &Population,
        node: NodeId,
        alive: &FailureMask,
        witnesses: &mut Vec<NodeId>,
        direct: &mut Vec<NodeId>,
    ) {
        crate::kademlia::live_prefix_repair_candidates(population, node, alive, witnesses, direct);
    }
}

/// A prefix-routing (tree) overlay in the style of Plaxton, Tapestry and
/// Pastry's routing table (without leaf sets — the paper analyses the basic
/// geometry).
///
/// The `i`-th routing-table entry of a node matches its first `i − 1` bits,
/// differs in the `i`-th bit, and has uniformly random lower-order bits.
/// Routing must correct the highest-order differing bit on every hop; if that
/// single neighbour has failed the message is dropped, which is what makes
/// the geometry fragile (`Q(m) = q`).
///
/// # Example
///
/// ```rust
/// use dht_overlay::{Overlay, PlaxtonOverlay};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(5);
/// let overlay = PlaxtonOverlay::build(8, &mut rng)?;
/// assert_eq!(overlay.node_count(), 256);
/// assert_eq!(overlay.neighbors(overlay.key_space().wrap(0)).len(), 8);
/// # Ok::<(), dht_overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PlaxtonOverlay {
    inner: GeometryOverlay<PlaxtonStrategy>,
}

impl PlaxtonOverlay {
    /// Builds the fully populated tree overlay, drawing the random suffix of
    /// every routing-table entry from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] if `bits` is zero or larger
    /// than [`crate::traits::MAX_OVERLAY_BITS`] (the materialized ceiling —
    /// [`crate::ImplicitOverlay::tree`] routes larger full populations).
    pub fn build<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> Result<Self, OverlayError> {
        let space = validate_bits(bits)?;
        Self::build_over(Population::full(space), rng)
    }

    /// Builds the overlay over an arbitrary (possibly sparse) population;
    /// each level's entry is drawn uniformly from the occupied identifiers of
    /// the matching subtree.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] or
    /// [`OverlayError::InvalidParameter`] as in [`GeometryOverlay::build`].
    pub fn build_over<R: Rng + ?Sized>(
        population: Population,
        rng: &mut R,
    ) -> Result<Self, OverlayError> {
        Ok(PlaxtonOverlay {
            inner: GeometryOverlay::build(population, PlaxtonStrategy, rng)?,
        })
    }

    /// The routing-table entry that corrects bit `level` (0 = most
    /// significant), i.e. the entry consulted when the current node and the
    /// target first differ at `level`. Over a sparse population an empty
    /// level reports the node itself.
    ///
    /// # Panics
    ///
    /// Panics if `level >= d` or `node` is not an occupied identifier of the
    /// overlay.
    #[must_use]
    pub fn entry_for_level(&self, node: NodeId, level: u32) -> NodeId {
        self.inner.neighbors(node)[level as usize]
    }
}

impl Overlay for PlaxtonOverlay {
    fn geometry_name(&self) -> &'static str {
        self.inner.geometry_name()
    }

    fn key_space(&self) -> KeySpace {
        self.inner.key_space()
    }

    fn population(&self) -> &Population {
        self.inner.population()
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.inner.neighbors(node)
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        self.inner.next_hop(current, target, alive)
    }

    fn edge_count(&self) -> u64 {
        self.inner.edge_count()
    }

    fn kernel(&self) -> Option<&crate::kernel::RoutingKernel> {
        self.inner.routing_kernel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route, RouteOutcome};
    use dht_id::prefix::common_prefix_len;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(bits: u32, seed: u64) -> PlaxtonOverlay {
        PlaxtonOverlay::build(bits, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn table_entries_have_the_prefix_property() {
        let overlay = build(8, 1);
        let space = overlay.key_space();
        for node in space.iter_ids() {
            for level in 0..8u32 {
                let entry = overlay.entry_for_level(node, level);
                assert!(
                    common_prefix_len(node, entry) == level,
                    "prefix must break exactly at the level"
                );
                assert_ne!(entry.bit(level).unwrap(), node.bit(level).unwrap());
            }
        }
    }

    #[test]
    fn perfect_network_always_delivers_within_d_hops() {
        let overlay = build(10, 2);
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..200 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            match route(&overlay, source, target, &mask) {
                RouteOutcome::Delivered { hops } => assert!(hops <= 10),
                other => panic!("route failed without failures: {other:?}"),
            }
        }
    }

    #[test]
    fn each_hop_extends_the_matched_prefix() {
        let overlay = build(10, 3);
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let target = space.wrap(0b1100110011);
        let mut current = space.wrap(0b0011001100);
        let mut matched = common_prefix_len(current, target);
        while current != target {
            let next = overlay.next_hop(current, target, &mask).unwrap();
            let next_matched = common_prefix_len(next, target);
            assert!(next_matched > matched);
            matched = next_matched;
            current = next;
        }
    }

    #[test]
    fn drops_exactly_when_the_required_entry_failed() {
        let overlay = build(8, 4);
        let space = overlay.key_space();
        let source = space.wrap(0b0000_0000);
        let target = space.wrap(0b1000_0000);
        let required = overlay.entry_for_level(source, 0);
        let mask = FailureMask::from_failed_nodes(space, [required]);
        match route(&overlay, source, target, &mask) {
            RouteOutcome::Dropped { hops: 0, stuck_at } => assert_eq!(stuck_at, source),
            RouteOutcome::TargetFailed => {
                // The random entry may coincide with the target itself, in
                // which case the failure is reported as a target failure.
                assert_eq!(required, target);
            }
            other => panic!("expected an immediate drop, got {other:?}"),
        }
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = build(8, 9);
        let b = build(8, 9);
        let space = a.key_space();
        for node in space.iter_ids() {
            assert_eq!(a.neighbors(node), b.neighbors(node));
        }
    }

    #[test]
    fn rejects_oversized_spaces() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(PlaxtonOverlay::build(0, &mut rng).is_err());
        assert!(PlaxtonOverlay::build(63, &mut rng).is_err());
    }

    #[test]
    fn sparse_intact_tree_always_delivers() {
        // The subtree containing the target is never empty (it contains the
        // target), so prefix routing stays complete over sparse populations.
        let space = KeySpace::new(12).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let population = Population::sample_uniform(space, 1 << 9, &mut rng).unwrap();
        let overlay = PlaxtonOverlay::build_over(population, &mut rng).unwrap();
        let mask = FailureMask::none_over(overlay.population());
        for _ in 0..200 {
            let source = overlay.population().random_node(&mut rng);
            let target = overlay.population().random_node(&mut rng);
            match route(&overlay, source, target, &mask) {
                RouteOutcome::Delivered { hops } => assert!(hops <= 12),
                other => panic!("sparse tree route failed without failures: {other:?}"),
            }
        }
    }

    #[test]
    fn sparse_empty_levels_stop_the_protocol_cleanly() {
        // Two occupied nodes differing in the top bit: every level below the
        // first is empty on both sides, and next_hop must treat the
        // self-placeholder as "no entry" rather than forwarding in place.
        let space = KeySpace::new(6).unwrap();
        let population =
            Population::sparse(space, [space.wrap(0b000000), space.wrap(0b100000)]).unwrap();
        let overlay =
            PlaxtonOverlay::build_over(population, &mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        let a = space.wrap(0b000000);
        let b = space.wrap(0b100000);
        assert_eq!(overlay.entry_for_level(a, 0), b);
        assert_eq!(overlay.entry_for_level(a, 3), a, "empty level placeholder");
        let mask = FailureMask::none_over(overlay.population());
        assert_eq!(
            route(&overlay, a, b, &mask),
            RouteOutcome::Delivered { hops: 1 }
        );
        // An unoccupied target can never be routed to; the mask reports it
        // as failed before any hop is taken.
        assert_eq!(
            route(&overlay, a, space.wrap(0b000001), &mask),
            RouteOutcome::TargetFailed
        );
    }
}
