//! The Plaxton-style tree overlay (§3.1 of the paper).

use crate::failure::FailureMask;
use crate::traits::{validate_bits, Overlay, OverlayError};
use dht_id::{prefix::highest_differing_bit, KeySpace, NodeId};
use rand::Rng;

/// A prefix-routing (tree) overlay in the style of Plaxton, Tapestry and
/// Pastry's routing table (without leaf sets — the paper analyses the basic
/// geometry).
///
/// The `i`-th routing-table entry of a node matches its first `i − 1` bits,
/// differs in the `i`-th bit, and has uniformly random lower-order bits.
/// Routing must correct the highest-order differing bit on every hop; if that
/// single neighbour has failed the message is dropped, which is what makes
/// the geometry fragile (`Q(m) = q`).
///
/// # Example
///
/// ```rust
/// use dht_overlay::{Overlay, PlaxtonOverlay};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(5);
/// let overlay = PlaxtonOverlay::build(8, &mut rng)?;
/// assert_eq!(overlay.node_count(), 256);
/// assert_eq!(overlay.neighbors(overlay.key_space().wrap(0)).len(), 8);
/// # Ok::<(), dht_overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PlaxtonOverlay {
    space: KeySpace,
    tables: Vec<Vec<NodeId>>,
}

impl PlaxtonOverlay {
    /// Builds the fully populated tree overlay, drawing the random suffix of
    /// every routing-table entry from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] if `bits` is zero or larger
    /// than [`crate::traits::MAX_OVERLAY_BITS`].
    pub fn build<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> Result<Self, OverlayError> {
        let space = validate_bits(bits)?;
        let tables = space
            .iter_ids()
            .map(|node| {
                (0..bits)
                    .map(|level| prefix_neighbor(space, node, level, rng))
                    .collect()
            })
            .collect();
        Ok(PlaxtonOverlay { space, tables })
    }

    /// The routing-table entry that corrects bit `level` (0 = most
    /// significant), i.e. the entry consulted when the current node and the
    /// target first differ at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= d` or `node` is outside the key space.
    #[must_use]
    pub fn entry_for_level(&self, node: NodeId, level: u32) -> NodeId {
        self.tables[node.value() as usize][level as usize]
    }
}

/// Builds the neighbour that matches `node` on bits `0..level`, differs at
/// `level`, and is random below it.
fn prefix_neighbor<R: Rng + ?Sized>(
    space: KeySpace,
    node: NodeId,
    level: u32,
    rng: &mut R,
) -> NodeId {
    let random_suffix = space.random_id(rng);
    node.flip_bit(level)
        .expect("level is within the key space")
        .splice_prefix(level + 1, random_suffix)
        .expect("identifier widths match")
}

impl Overlay for PlaxtonOverlay {
    fn geometry_name(&self) -> &'static str {
        "tree"
    }

    fn key_space(&self) -> KeySpace {
        self.space
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.tables[node.value() as usize]
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        let level = highest_differing_bit(current, target)?;
        let entry = self.entry_for_level(current, level);
        // If the entry happens not to share the target's next bits that is
        // fine — it corrects the highest-order bit, and later hops fix the
        // rest — but it must be alive, otherwise the protocol has no fallback.
        alive.is_alive(entry).then_some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route, RouteOutcome};
    use dht_id::prefix::common_prefix_len;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(bits: u32, seed: u64) -> PlaxtonOverlay {
        PlaxtonOverlay::build(bits, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn table_entries_have_the_prefix_property() {
        let overlay = build(8, 1);
        let space = overlay.key_space();
        for node in space.iter_ids() {
            for level in 0..8u32 {
                let entry = overlay.entry_for_level(node, level);
                assert!(
                    common_prefix_len(node, entry) == level,
                    "prefix must break exactly at the level"
                );
                assert_ne!(entry.bit(level).unwrap(), node.bit(level).unwrap());
            }
        }
    }

    #[test]
    fn perfect_network_always_delivers_within_d_hops() {
        let overlay = build(10, 2);
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..200 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            match route(&overlay, source, target, &mask) {
                RouteOutcome::Delivered { hops } => assert!(hops <= 10),
                other => panic!("route failed without failures: {other:?}"),
            }
        }
    }

    #[test]
    fn each_hop_extends_the_matched_prefix() {
        let overlay = build(10, 3);
        let space = overlay.key_space();
        let mask = FailureMask::none(space);
        let target = space.wrap(0b1100110011);
        let mut current = space.wrap(0b0011001100);
        let mut matched = common_prefix_len(current, target);
        while current != target {
            let next = overlay.next_hop(current, target, &mask).unwrap();
            let next_matched = common_prefix_len(next, target);
            assert!(next_matched > matched);
            matched = next_matched;
            current = next;
        }
    }

    #[test]
    fn drops_exactly_when_the_required_entry_failed() {
        let overlay = build(8, 4);
        let space = overlay.key_space();
        let source = space.wrap(0b0000_0000);
        let target = space.wrap(0b1000_0000);
        let required = overlay.entry_for_level(source, 0);
        let mask = FailureMask::from_failed_nodes(space, [required]);
        match route(&overlay, source, target, &mask) {
            RouteOutcome::Dropped { hops: 0, stuck_at } => assert_eq!(stuck_at, source),
            RouteOutcome::TargetFailed => {
                // The random entry may coincide with the target itself, in
                // which case the failure is reported as a target failure.
                assert_eq!(required, target);
            }
            other => panic!("expected an immediate drop, got {other:?}"),
        }
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = build(8, 9);
        let b = build(8, 9);
        let space = a.key_space();
        for node in space.iter_ids() {
            assert_eq!(a.neighbors(node), b.neighbors(node));
        }
    }

    #[test]
    fn rejects_oversized_spaces() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(PlaxtonOverlay::build(0, &mut rng).is_err());
        assert!(PlaxtonOverlay::build(63, &mut rng).is_err());
    }
}
