//! The Chord-style ring overlay (§3.4 of the paper).

use crate::failure::FailureMask;
use crate::traits::{validate_bits, Overlay, OverlayError};
use dht_id::{distance::ring_distance, KeySpace, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the finger targets are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChordVariant {
    /// Classic Chord: the `i`-th finger of node `a` points exactly at
    /// `a + 2^{i−1} (mod 2^d)`.
    Deterministic,
    /// Randomised Chord, the variant the paper analyses: the `i`-th finger is
    /// drawn uniformly from clockwise distance `[2^{i−1}, 2^i)`.
    Randomized,
}

/// A ring overlay with `d` fingers per node and greedy clockwise routing.
///
/// Routing forwards the message to the alive finger that is closest to the
/// target without overshooting it. When the optimal finger is dead a shorter
/// finger still makes progress, and — unlike XOR routing — the progress made
/// by such suboptimal hops is preserved in later phases, which is why the
/// analytical expression of §4.3.3 is only a lower bound on routability.
///
/// # Example
///
/// ```rust
/// use dht_overlay::{ChordOverlay, ChordVariant, Overlay};
///
/// let overlay = ChordOverlay::build(12, ChordVariant::Deterministic)?;
/// let space = overlay.key_space();
/// assert_eq!(overlay.neighbors(space.wrap(0)).len(), 12);
/// # Ok::<(), dht_overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ChordOverlay {
    space: KeySpace,
    variant: ChordVariant,
    tables: Vec<Vec<NodeId>>,
}

impl ChordOverlay {
    /// Builds a deterministic-finger overlay (no randomness needed).
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] if `bits` is zero or larger
    /// than [`crate::traits::MAX_OVERLAY_BITS`].
    pub fn build(bits: u32, variant: ChordVariant) -> Result<Self, OverlayError> {
        match variant {
            ChordVariant::Deterministic => Self::build_impl(bits, variant, |_, _| 0),
            ChordVariant::Randomized => Err(OverlayError::InvalidParameter {
                message: "randomised fingers need an RNG; use build_randomized".into(),
            }),
        }
    }

    /// Builds a randomised-finger overlay (the paper's variant).
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] if `bits` is zero or larger
    /// than [`crate::traits::MAX_OVERLAY_BITS`].
    pub fn build_randomized<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> Result<Self, OverlayError> {
        Self::build_impl(bits, ChordVariant::Randomized, |span, _finger| {
            if span <= 1 {
                0
            } else {
                rng.gen_range(0..span)
            }
        })
    }

    fn build_impl<F>(
        bits: u32,
        variant: ChordVariant,
        mut offset_within_span: F,
    ) -> Result<Self, OverlayError>
    where
        F: FnMut(u64, u32) -> u64,
    {
        let space = validate_bits(bits)?;
        let tables = space
            .iter_ids()
            .map(|node| {
                (1..=bits)
                    .map(|finger| {
                        // Finger `finger` covers clockwise distance
                        // [2^{finger-1}, 2^finger).
                        let base = 1u64 << (finger - 1);
                        let span = base; // width of the interval
                        let distance = base + offset_within_span(span, finger);
                        space.wrap(node.value().wrapping_add(distance))
                    })
                    .collect()
            })
            .collect();
        Ok(ChordOverlay {
            space,
            variant,
            tables,
        })
    }

    /// Which finger-selection variant this overlay was built with.
    #[must_use]
    pub fn variant(&self) -> ChordVariant {
        self.variant
    }

    /// The `i`-th finger (1-based, covering distance `[2^{i−1}, 2^i)`).
    ///
    /// # Panics
    ///
    /// Panics if `finger` is zero or exceeds `d`, or `node` is outside the key
    /// space.
    #[must_use]
    pub fn finger(&self, node: NodeId, finger: u32) -> NodeId {
        assert!(finger >= 1, "fingers are 1-based");
        self.tables[node.value() as usize][(finger - 1) as usize]
    }
}

impl Overlay for ChordOverlay {
    fn geometry_name(&self) -> &'static str {
        "ring"
    }

    fn key_space(&self) -> KeySpace {
        self.space
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.tables[node.value() as usize]
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        let remaining = ring_distance(current, target);
        // Greedy without overshooting: the finger must land within the arc
        // (current, target], and among those the one closest to the target
        // (i.e. the longest admissible finger) wins.
        self.neighbors(current)
            .iter()
            .copied()
            .filter(|&n| {
                alive.is_alive(n) && {
                    let advance = ring_distance(current, n);
                    advance > 0 && advance <= remaining
                }
            })
            .min_by_key(|&n| ring_distance(n, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route, RouteOutcome};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn deterministic_fingers_are_powers_of_two_away() {
        let overlay = ChordOverlay::build(8, ChordVariant::Deterministic).unwrap();
        let space = overlay.key_space();
        for node in space.iter_ids().step_by(17) {
            for finger in 1..=8u32 {
                let distance = ring_distance(node, overlay.finger(node, finger));
                assert_eq!(distance, 1 << (finger - 1));
            }
        }
        assert_eq!(overlay.variant(), ChordVariant::Deterministic);
    }

    #[test]
    fn randomized_fingers_stay_within_their_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let overlay = ChordOverlay::build_randomized(10, &mut rng).unwrap();
        let space = overlay.key_space();
        for node in space.iter_ids().step_by(41) {
            for finger in 1..=10u32 {
                let distance = ring_distance(node, overlay.finger(node, finger));
                let lower = 1u64 << (finger - 1);
                let upper = 1u64 << finger;
                assert!(
                    distance >= lower && distance < upper,
                    "finger {finger}: distance {distance} outside [{lower}, {upper})"
                );
            }
        }
    }

    #[test]
    fn perfect_network_routes_within_d_hops() {
        for overlay in [
            ChordOverlay::build(10, ChordVariant::Deterministic).unwrap(),
            ChordOverlay::build_randomized(10, &mut ChaCha8Rng::seed_from_u64(8)).unwrap(),
        ] {
            let space = overlay.key_space();
            let mask = FailureMask::none(space);
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            for _ in 0..200 {
                let source = space.random_id(&mut rng);
                let target = space.random_id(&mut rng);
                match route(&overlay, source, target, &mask) {
                    RouteOutcome::Delivered { hops } => assert!(hops <= 10),
                    other => panic!("route failed without failures: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn never_overshoots_the_target() {
        let overlay = ChordOverlay::build(10, ChordVariant::Deterministic).unwrap();
        let space = overlay.key_space();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mask = FailureMask::sample(space, 0.3, &mut rng);
        for _ in 0..100 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            if mask.is_failed(source) || mask.is_failed(target) {
                continue;
            }
            let mut current = source;
            let mut remaining = ring_distance(current, target);
            while let Some(next) = overlay.next_hop(current, target, &mask) {
                let next_remaining = ring_distance(next, target);
                assert!(
                    next_remaining < remaining,
                    "hops must make clockwise progress"
                );
                current = next;
                remaining = next_remaining;
                if current == target {
                    break;
                }
            }
        }
    }

    #[test]
    fn suboptimal_progress_is_preserved() {
        // The §4.3.3 discussion: killing the long finger forces a shorter
        // first hop, but the route still completes because the progress is
        // kept. Deterministic fingers make the scenario easy to construct.
        let overlay = ChordOverlay::build(8, ChordVariant::Deterministic).unwrap();
        let space = overlay.key_space();
        let source = space.wrap(0);
        // Distance 192: the optimal first hop is the 128-finger; kill it.
        let target = space.wrap(0b1100_0000);
        let optimal = overlay.finger(source, 8);
        let mask = FailureMask::from_failed_nodes(space, [optimal]);
        match route(&overlay, source, target, &mask) {
            RouteOutcome::Delivered { hops } => assert!(hops >= 2),
            other => panic!("expected delivery around the failed finger, got {other:?}"),
        }
    }

    #[test]
    fn drops_only_when_no_finger_makes_progress() {
        let overlay = ChordOverlay::build(6, ChordVariant::Deterministic).unwrap();
        let space = overlay.key_space();
        let source = space.wrap(0);
        let target = space.wrap(1);
        // The only way to reach a target at distance 1 is the 1-finger.
        let mask = FailureMask::from_failed_nodes(space, [overlay.finger(source, 1)]);
        assert_eq!(
            route(&overlay, source, target, &mask),
            RouteOutcome::TargetFailed
        );
        // Distance 3: the optimal route uses the 2-finger then the 1-finger.
        // Killing the source's 2-finger forces a short first hop, after which
        // the intermediate node's own 2-finger completes the route.
        let target = space.wrap(3);
        let mask = FailureMask::from_failed_nodes(space, [overlay.finger(source, 2)]);
        assert_eq!(
            route(&overlay, source, target, &mask),
            RouteOutcome::Delivered { hops: 2 }
        );
    }

    #[test]
    fn build_variant_mismatch_is_rejected() {
        assert!(ChordOverlay::build(8, ChordVariant::Randomized).is_err());
        assert!(ChordOverlay::build(0, ChordVariant::Deterministic).is_err());
    }
}
