//! The Chord-style ring overlay (§3.4 of the paper).

use crate::failure::FailureMask;
use crate::generic::{GeometryOverlay, GeometryStrategy, NoRandomness};
use crate::traits::{validate_bits, Overlay, OverlayError};
use dht_id::{distance::ring_distance, KeySpace, NodeId, Population};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the finger targets are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChordVariant {
    /// Classic Chord: the `i`-th finger of node `a` points exactly at
    /// `a + 2^{i−1} (mod 2^d)`.
    Deterministic,
    /// Randomised Chord, the variant the paper analyses: the `i`-th finger is
    /// drawn uniformly from clockwise distance `[2^{i−1}, 2^i)`.
    Randomized,
}

/// The ring geometry as a [`GeometryStrategy`]: `d` fingers per node, greedy
/// clockwise forwarding that never overshoots.
///
/// Over a sparse population each finger points at the *successor* of its
/// target point — the first occupied identifier clockwise from
/// `a + 2^{i−1} (+ offset)` — exactly as deployed Chord resolves fingers. The
/// finger covering distance 1 therefore always holds the node's immediate
/// successor, so an intact sparse ring remains fully routable.
#[derive(Debug, Clone, Copy)]
pub struct ChordStrategy {
    variant: ChordVariant,
}

impl ChordStrategy {
    /// A strategy for the given finger-selection variant.
    #[must_use]
    pub fn new(variant: ChordVariant) -> Self {
        ChordStrategy { variant }
    }

    /// Which finger-selection variant this strategy applies.
    #[must_use]
    pub fn variant(&self) -> ChordVariant {
        self.variant
    }
}

impl GeometryStrategy for ChordStrategy {
    fn geometry_name(&self) -> &'static str {
        "ring"
    }

    fn table_len_hint(&self, population: &Population) -> usize {
        population.space().bits() as usize
    }

    fn build_table<R: Rng + ?Sized>(
        &self,
        population: &Population,
        node: NodeId,
        rng: &mut R,
        table: &mut Vec<NodeId>,
    ) {
        let bits = population.space().bits();
        for finger in 1..=bits {
            // Finger `finger` covers clockwise distance [2^{finger-1}, 2^finger).
            let base = 1u64 << (finger - 1);
            let span = base; // width of the interval
            let offset = match self.variant {
                ChordVariant::Deterministic => 0,
                ChordVariant::Randomized => {
                    if span <= 1 {
                        0
                    } else {
                        rng.gen_range(0..span)
                    }
                }
            };
            let target_point = node.value().wrapping_add(base + offset);
            table.push(population.successor(target_point));
        }
    }

    fn next_hop(
        &self,
        neighbors: &[NodeId],
        current: NodeId,
        target: NodeId,
        alive: &FailureMask,
    ) -> Option<NodeId> {
        ring_greedy_next_hop(neighbors, current, target, alive)
    }

    fn kernel_rule(&self) -> Option<crate::kernel::KernelRule> {
        // Hop key: each finger's clockwise advance, fixed at build time.
        Some(crate::kernel::KernelRule::RingAdvance)
    }

    fn implicit_stream_words(&self, population: &Population) -> Option<u64> {
        if !population.is_full() {
            return None;
        }
        match self.variant {
            // Deterministic fingers draw nothing.
            ChordVariant::Deterministic => Some(0),
            // Every finger above the first draws one `gen_range` over a
            // power-of-two span — exactly one `next_u64` (two words) with the
            // vendored Lemire sampler, which never rejects on power-of-two
            // spans. Finger 1 has span 1 and draws nothing.
            ChordVariant::Randomized => {
                Some(2 * u64::from(population.space().bits().saturating_sub(1)))
            }
        }
    }

    fn supports_live(&self) -> bool {
        true
    }

    fn live_table_width(&self, population: &Population) -> usize {
        population.space().bits() as usize
    }

    fn build_live_table(
        &self,
        population: &Population,
        node: NodeId,
        node_seed: u64,
        alive: &FailureMask,
        table: &mut Vec<NodeId>,
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(node_seed);
        let bits = population.space().bits();
        for finger in 1..=bits {
            let base = 1u64 << (finger - 1);
            let span = base;
            // The offset is drawn for every finger, alive set unseen —
            // membership-independent draws keep the table a pure function of
            // the alive set (the live-family purity contract).
            let offset = match self.variant {
                ChordVariant::Deterministic => 0,
                ChordVariant::Randomized => {
                    if span <= 1 {
                        0
                    } else {
                        rng.gen_range(0..span)
                    }
                }
            };
            let target_point = node.value().wrapping_add(base + offset);
            table.push(crate::live::alive_successor(
                population,
                alive,
                target_point,
            ));
        }
    }

    fn live_repair_candidates(
        &self,
        population: &Population,
        node: NodeId,
        alive: &FailureMask,
        witnesses: &mut Vec<NodeId>,
        _direct: &mut Vec<NodeId>,
    ) {
        // Every live finger is `alive_successor(p)` for a fixed point `p`,
        // and reviving `node` changes that resolution only where the old
        // result was the first alive node clockwise of `node` — so every
        // table entry that should now point at the joiner currently points
        // at that single successor.
        let witness = crate::live::alive_successor(population, alive, node.value().wrapping_add(1));
        if witness != node {
            witnesses.push(witness);
        }
    }
}

/// The greedy non-overshooting ring rule shared by the Chord and Symphony
/// geometries: the hop must land within the arc `(current, target]`, and
/// among those the one closest to the target (i.e. the longest admissible
/// connection) wins.
pub(crate) fn ring_greedy_next_hop(
    neighbors: &[NodeId],
    current: NodeId,
    target: NodeId,
    alive: &FailureMask,
) -> Option<NodeId> {
    let remaining = ring_distance(current, target);
    neighbors
        .iter()
        .copied()
        .filter(|&n| {
            alive.is_alive(n) && {
                let advance = ring_distance(current, n);
                advance > 0 && advance <= remaining
            }
        })
        .min_by_key(|&n| ring_distance(n, target))
}

/// A ring overlay with `d` fingers per node and greedy clockwise routing.
///
/// Routing forwards the message to the alive finger that is closest to the
/// target without overshooting it. When the optimal finger is dead a shorter
/// finger still makes progress, and — unlike XOR routing — the progress made
/// by such suboptimal hops is preserved in later phases, which is why the
/// analytical expression of §4.3.3 is only a lower bound on routability.
///
/// # Example
///
/// ```rust
/// use dht_overlay::{ChordOverlay, ChordVariant, Overlay};
///
/// let overlay = ChordOverlay::build(12, ChordVariant::Deterministic)?;
/// let space = overlay.key_space();
/// assert_eq!(overlay.neighbors(space.wrap(0)).len(), 12);
/// # Ok::<(), dht_overlay::OverlayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ChordOverlay {
    inner: GeometryOverlay<ChordStrategy>,
}

impl ChordOverlay {
    /// Builds a deterministic-finger overlay over the full population (no
    /// randomness needed).
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] if `bits` is zero or larger
    /// than [`crate::traits::MAX_OVERLAY_BITS`] (the materialized ceiling —
    /// [`crate::ImplicitOverlay::ring`] routes larger full populations), or
    /// [`OverlayError::InvalidParameter`] for the randomised variant (which
    /// needs an RNG; use [`ChordOverlay::build_randomized`]).
    pub fn build(bits: u32, variant: ChordVariant) -> Result<Self, OverlayError> {
        match variant {
            ChordVariant::Deterministic => {
                let space = validate_bits(bits)?;
                Self::build_over(Population::full(space), variant, &mut NoRandomness)
            }
            ChordVariant::Randomized => Err(OverlayError::InvalidParameter {
                message: "randomised fingers need an RNG; use build_randomized".into(),
            }),
        }
    }

    /// Builds a randomised-finger overlay over the full population (the
    /// paper's variant).
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] if `bits` is zero or larger
    /// than [`crate::traits::MAX_OVERLAY_BITS`] (the materialized ceiling —
    /// [`crate::ImplicitOverlay::ring`] routes larger full populations).
    pub fn build_randomized<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> Result<Self, OverlayError> {
        let space = validate_bits(bits)?;
        Self::build_over(Population::full(space), ChordVariant::Randomized, rng)
    }

    /// Builds the overlay over an arbitrary (possibly sparse) population;
    /// fingers resolve to successors among the occupied identifiers.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnsupportedBits`] or
    /// [`OverlayError::InvalidParameter`] as in [`GeometryOverlay::build`].
    pub fn build_over<R: Rng + ?Sized>(
        population: Population,
        variant: ChordVariant,
        rng: &mut R,
    ) -> Result<Self, OverlayError> {
        Ok(ChordOverlay {
            inner: GeometryOverlay::build(population, ChordStrategy::new(variant), rng)?,
        })
    }

    /// Which finger-selection variant this overlay was built with.
    #[must_use]
    pub fn variant(&self) -> ChordVariant {
        self.inner.strategy().variant()
    }

    /// The `i`-th finger (1-based, covering distance `[2^{i−1}, 2^i)`).
    ///
    /// # Panics
    ///
    /// Panics if `finger` is zero or exceeds `d`, or `node` is not an occupied
    /// identifier of the overlay.
    #[must_use]
    pub fn finger(&self, node: NodeId, finger: u32) -> NodeId {
        assert!(finger >= 1, "fingers are 1-based");
        self.inner.neighbors(node)[(finger - 1) as usize]
    }
}

impl Overlay for ChordOverlay {
    fn geometry_name(&self) -> &'static str {
        self.inner.geometry_name()
    }

    fn key_space(&self) -> KeySpace {
        self.inner.key_space()
    }

    fn population(&self) -> &Population {
        self.inner.population()
    }

    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.inner.neighbors(node)
    }

    fn next_hop(&self, current: NodeId, target: NodeId, alive: &FailureMask) -> Option<NodeId> {
        self.inner.next_hop(current, target, alive)
    }

    fn edge_count(&self) -> u64 {
        self.inner.edge_count()
    }

    fn kernel(&self) -> Option<&crate::kernel::RoutingKernel> {
        self.inner.routing_kernel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{route, RouteOutcome};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn deterministic_fingers_are_powers_of_two_away() {
        let overlay = ChordOverlay::build(8, ChordVariant::Deterministic).unwrap();
        let space = overlay.key_space();
        for node in space.iter_ids().step_by(17) {
            for finger in 1..=8u32 {
                let distance = ring_distance(node, overlay.finger(node, finger));
                assert_eq!(distance, 1 << (finger - 1));
            }
        }
        assert_eq!(overlay.variant(), ChordVariant::Deterministic);
    }

    #[test]
    fn randomized_fingers_stay_within_their_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let overlay = ChordOverlay::build_randomized(10, &mut rng).unwrap();
        let space = overlay.key_space();
        for node in space.iter_ids().step_by(41) {
            for finger in 1..=10u32 {
                let distance = ring_distance(node, overlay.finger(node, finger));
                let lower = 1u64 << (finger - 1);
                let upper = 1u64 << finger;
                assert!(
                    distance >= lower && distance < upper,
                    "finger {finger}: distance {distance} outside [{lower}, {upper})"
                );
            }
        }
    }

    #[test]
    fn perfect_network_routes_within_d_hops() {
        for overlay in [
            ChordOverlay::build(10, ChordVariant::Deterministic).unwrap(),
            ChordOverlay::build_randomized(10, &mut ChaCha8Rng::seed_from_u64(8)).unwrap(),
        ] {
            let space = overlay.key_space();
            let mask = FailureMask::none(space);
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            for _ in 0..200 {
                let source = space.random_id(&mut rng);
                let target = space.random_id(&mut rng);
                match route(&overlay, source, target, &mask) {
                    RouteOutcome::Delivered { hops } => assert!(hops <= 10),
                    other => panic!("route failed without failures: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn never_overshoots_the_target() {
        let overlay = ChordOverlay::build(10, ChordVariant::Deterministic).unwrap();
        let space = overlay.key_space();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mask = FailureMask::sample(space, 0.3, &mut rng);
        for _ in 0..100 {
            let source = space.random_id(&mut rng);
            let target = space.random_id(&mut rng);
            if mask.is_failed(source) || mask.is_failed(target) {
                continue;
            }
            let mut current = source;
            let mut remaining = ring_distance(current, target);
            while let Some(next) = overlay.next_hop(current, target, &mask) {
                let next_remaining = ring_distance(next, target);
                assert!(
                    next_remaining < remaining,
                    "hops must make clockwise progress"
                );
                current = next;
                remaining = next_remaining;
                if current == target {
                    break;
                }
            }
        }
    }

    #[test]
    fn suboptimal_progress_is_preserved() {
        // The §4.3.3 discussion: killing the long finger forces a shorter
        // first hop, but the route still completes because the progress is
        // kept. Deterministic fingers make the scenario easy to construct.
        let overlay = ChordOverlay::build(8, ChordVariant::Deterministic).unwrap();
        let space = overlay.key_space();
        let source = space.wrap(0);
        // Distance 192: the optimal first hop is the 128-finger; kill it.
        let target = space.wrap(0b1100_0000);
        let optimal = overlay.finger(source, 8);
        let mask = FailureMask::from_failed_nodes(space, [optimal]);
        match route(&overlay, source, target, &mask) {
            RouteOutcome::Delivered { hops } => assert!(hops >= 2),
            other => panic!("expected delivery around the failed finger, got {other:?}"),
        }
    }

    #[test]
    fn drops_only_when_no_finger_makes_progress() {
        let overlay = ChordOverlay::build(6, ChordVariant::Deterministic).unwrap();
        let space = overlay.key_space();
        let source = space.wrap(0);
        let target = space.wrap(1);
        // The only way to reach a target at distance 1 is the 1-finger.
        let mask = FailureMask::from_failed_nodes(space, [overlay.finger(source, 1)]);
        assert_eq!(
            route(&overlay, source, target, &mask),
            RouteOutcome::TargetFailed
        );
        // Distance 3: the optimal route uses the 2-finger then the 1-finger.
        // Killing the source's 2-finger forces a short first hop, after which
        // the intermediate node's own 2-finger completes the route.
        let target = space.wrap(3);
        let mask = FailureMask::from_failed_nodes(space, [overlay.finger(source, 2)]);
        assert_eq!(
            route(&overlay, source, target, &mask),
            RouteOutcome::Delivered { hops: 2 }
        );
    }

    #[test]
    fn build_variant_mismatch_is_rejected() {
        assert!(ChordOverlay::build(8, ChordVariant::Randomized).is_err());
        assert!(ChordOverlay::build(0, ChordVariant::Deterministic).is_err());
    }

    #[test]
    fn sparse_fingers_resolve_to_successors() {
        let space = KeySpace::new(8).unwrap();
        let population = Population::sparse(
            space,
            [10u64, 60, 130, 200].into_iter().map(|v| space.wrap(v)),
        )
        .unwrap();
        let overlay =
            ChordOverlay::build_over(population, ChordVariant::Deterministic, &mut NoRandomness)
                .unwrap();
        let node = space.wrap(10);
        // Finger 1 targets 11 -> successor 60; finger 8 targets 138 -> 200.
        assert_eq!(overlay.finger(node, 1), space.wrap(60));
        assert_eq!(overlay.finger(node, 8), space.wrap(200));
        // Every finger of every node lands on an occupied identifier.
        for n in overlay.population().iter_nodes() {
            for &f in overlay.neighbors(n) {
                assert!(overlay.population().contains(f));
            }
        }
        // Unoccupied identifiers expose no routing table.
        assert!(overlay.neighbors(space.wrap(11)).is_empty());
    }

    #[test]
    fn sparse_intact_ring_always_delivers() {
        let space = KeySpace::new(12).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let population = Population::sample_uniform(space, 1 << 10, &mut rng).unwrap();
        let overlay =
            ChordOverlay::build_over(population.clone(), ChordVariant::Randomized, &mut rng)
                .unwrap();
        let mask = FailureMask::none_over(overlay.population());
        for _ in 0..200 {
            let source = overlay.population().random_node(&mut rng);
            let target = overlay.population().random_node(&mut rng);
            assert!(
                route(&overlay, source, target, &mask).is_delivered(),
                "sparse ring must deliver without failures"
            );
        }
        assert_eq!(overlay.node_count(), 1 << 10);
        assert_eq!(overlay.edge_count(), (1 << 10) * 12);
    }
}
