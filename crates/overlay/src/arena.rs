//! The shared compressed-sparse-row store for overlay routing tables.

use dht_id::NodeId;

/// A compressed-sparse-row arena holding every routing-table entry of an
/// overlay in one flat allocation.
///
/// The seed implementation stored one `Vec<NodeId>` per node, which cost a
/// pointer chase per `neighbors()` call and a separate heap allocation per
/// node. The arena flattens all tables into a single `entries` vector with an
/// `offsets` prefix-sum, so a node's table is a contiguous slice, construction
/// performs O(1) allocations, and the total entry count — the overlay's edge
/// count — is a field read instead of an O(N) walk.
///
/// Nodes are addressed by their *rank* in the overlay's
/// [`Population`](dht_id::Population) (for a full population the rank equals
/// the identifier value), in the order the tables were pushed.
///
/// # Example
///
/// ```rust
/// use dht_id::KeySpace;
/// use dht_overlay::RoutingArena;
///
/// let space = KeySpace::new(4)?;
/// let mut arena = RoutingArena::new();
/// arena.push_table(&[space.wrap(1), space.wrap(2)]);
/// arena.push_table(&[space.wrap(3)]);
/// assert_eq!(arena.node_count(), 2);
/// assert_eq!(arena.entry_count(), 3);
/// assert_eq!(arena.neighbors(1), &[space.wrap(3)]);
/// # Ok::<(), dht_id::IdError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingArena {
    /// `offsets[i]..offsets[i + 1]` delimits the table of the rank-`i` node.
    offsets: Vec<u32>,
    /// Every routing-table entry, tables back to back in rank order.
    entries: Vec<NodeId>,
}

impl Default for RoutingArena {
    fn default() -> Self {
        RoutingArena::new()
    }
}

impl RoutingArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        RoutingArena {
            offsets: vec![0],
            entries: Vec::new(),
        }
    }

    /// An empty arena with room for `nodes` tables totalling `entries`
    /// entries, so construction does not reallocate.
    #[must_use]
    pub fn with_capacity(nodes: usize, entries: usize) -> Self {
        let mut offsets = Vec::with_capacity(nodes + 1);
        offsets.push(0);
        RoutingArena {
            offsets,
            entries: Vec::with_capacity(entries),
        }
    }

    /// Appends the routing table of the next node and returns its rank.
    ///
    /// # Panics
    ///
    /// Panics if the total entry count would exceed `u32::MAX` (a `2^24`-node
    /// overlay with full tables stays well below this).
    pub fn push_table(&mut self, table: &[NodeId]) -> usize {
        let rank = self.node_count();
        self.entries.extend_from_slice(table);
        let end = u32::try_from(self.entries.len())
            .expect("routing arenas hold at most u32::MAX entries");
        self.offsets.push(end);
        rank
    }

    /// Number of node tables stored.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed routing-table entries, in O(1).
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// `true` when no table has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Bytes of heap the arena keeps resident: the entry slab plus the
    /// offsets prefix-sum (counted at `len`, not capacity — construction
    /// pre-sizes both exactly).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<NodeId>()
            + self.offsets.len() * std::mem::size_of::<u32>()
    }

    /// The routing table of the node with the given rank, as a slice into the
    /// arena.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= node_count()`.
    #[must_use]
    pub fn neighbors(&self, rank: usize) -> &[NodeId] {
        let start = self.offsets[rank] as usize;
        let end = self.offsets[rank + 1] as usize;
        &self.entries[start..end]
    }

    /// Overwrites the routing table of the rank-`rank` node in place.
    ///
    /// Delta-patching for live churn: the CSR layout is preserved (offsets
    /// untouched), so the replacement must have exactly the existing row's
    /// width — live overlays use fixed-width tables precisely so repairs
    /// never resize rows.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= node_count()` or `table.len()` differs from the
    /// stored row width.
    pub fn rewrite_table(&mut self, rank: usize, table: &[NodeId]) {
        let start = self.offsets[rank] as usize;
        let end = self.offsets[rank + 1] as usize;
        assert_eq!(
            table.len(),
            end - start,
            "rewrite_table must preserve the row width"
        );
        self.entries[start..end].copy_from_slice(table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_id::KeySpace;

    fn ids(space: KeySpace, values: &[u64]) -> Vec<NodeId> {
        values.iter().map(|&v| space.wrap(v)).collect()
    }

    #[test]
    fn empty_arena_has_no_nodes_or_entries() {
        let arena = RoutingArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.node_count(), 0);
        assert_eq!(arena.entry_count(), 0);
        assert_eq!(arena, RoutingArena::default());
    }

    #[test]
    fn tables_round_trip_in_rank_order() {
        let space = KeySpace::new(6).unwrap();
        let mut arena = RoutingArena::with_capacity(3, 6);
        assert_eq!(arena.push_table(&ids(space, &[1, 2, 3])), 0);
        assert_eq!(arena.push_table(&[]), 1);
        assert_eq!(arena.push_table(&ids(space, &[9, 10])), 2);
        assert_eq!(arena.node_count(), 3);
        assert_eq!(arena.entry_count(), 5);
        assert_eq!(arena.neighbors(0), ids(space, &[1, 2, 3]).as_slice());
        assert_eq!(arena.neighbors(1), &[]);
        assert_eq!(arena.neighbors(2), ids(space, &[9, 10]).as_slice());
    }

    #[test]
    fn rewrite_table_patches_a_row_in_place() {
        let space = KeySpace::new(6).unwrap();
        let mut arena = RoutingArena::new();
        arena.push_table(&ids(space, &[1, 2, 3]));
        arena.push_table(&ids(space, &[9, 10]));
        arena.rewrite_table(0, &ids(space, &[4, 5, 6]));
        assert_eq!(arena.neighbors(0), ids(space, &[4, 5, 6]).as_slice());
        assert_eq!(arena.neighbors(1), ids(space, &[9, 10]).as_slice());
        assert_eq!(arena.entry_count(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rewrite_table_rejects_width_changes() {
        let space = KeySpace::new(6).unwrap();
        let mut arena = RoutingArena::new();
        arena.push_table(&ids(space, &[1, 2]));
        arena.rewrite_table(0, &ids(space, &[1]));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_range_rank_panics() {
        let arena = RoutingArena::new();
        let _ = arena.neighbors(0);
    }
}
