//! Executable DHT overlay networks with static-resilience routing.
//!
//! The RCM paper validates its analytical predictions against protocol
//! simulations (the data points of Fig. 6, originally from Gummadi et al.,
//! SIGCOMM'03). This crate rebuilds that simulation substrate: it constructs
//! the *basic* routing geometry of each of the five DHTs and routes messages
//! greedily across a frozen failure pattern — the *static resilience* model:
//!
//! * nodes fail independently with probability `q` ([`FailureMask`]);
//! * routing tables are **not** repaired (hence "static");
//! * messages are forwarded greedily with no backtracking;
//! * a message is dropped as soon as no alive neighbour makes progress.
//!
//! The five overlays are [`PlaxtonOverlay`] (tree), [`CanOverlay`]
//! (hypercube), [`KademliaOverlay`] (XOR), [`ChordOverlay`] (ring) and
//! [`SymphonyOverlay`] (small world). All of them implement [`Overlay`], and
//! [`route`] drives any of them hop by hop.
//!
//! # Architecture
//!
//! Each overlay is a thin wrapper over one [`GeometryOverlay`], which pairs a
//! per-geometry [`generic::GeometryStrategy`] (table construction plus the
//! greedy next-hop rule) with a [`dht_id::Population`] and stores every
//! routing table in a single flat CSR [`RoutingArena`] — `neighbors()` is a
//! slice into that arena and the edge count is O(1). Populations may be full
//! (`N = 2^d`, the paper's model) or sparse (`n < 2^d` occupied
//! identifiers), in which case fingers, bucket contacts and successors
//! resolve against the occupied set, the way deployed DHTs do.
//!
//! For batch measurement, every geometry also lowers into a compiled
//! rank-space [`RoutingKernel`] (see [`kernel`]): per-entry hop keys are
//! precomputed at build time and alive checks become direct bit tests by
//! occupied rank, with outcomes bit-identical to the scalar path. The
//! kernel compiles lazily on first [`Overlay::kernel`] call; `dht_sim`'s
//! trial engine routes through it automatically.
//!
//! Beyond the frozen snapshots, [`LiveOverlay`] (see [`live`]) runs the same
//! five geometries under *live churn*: nodes of a fixed universe depart and
//! return while lookups run, and each event delta-patches the arena, the
//! reverse edge index and the compiled kernel plan in place (dirty-rank
//! invalidation) instead of rebuilding. Every geometry's repair protocol is
//! expressed through the [`GeometryStrategy`] live hooks, and the maintained
//! state is provably identical to a from-scratch rebuild at the current
//! liveness — the `incremental_equivalence` property suite asserts it entry
//! for entry. `dht_sim::events` drives these overlays from its discrete-event
//! scheduler.
//!
//! # Example
//!
//! ```rust
//! use dht_overlay::{route, FailureMask, KademliaOverlay, Overlay, RouteOutcome};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let overlay = KademliaOverlay::build(10, &mut rng)?; // 2^10 nodes
//! let space = overlay.key_space();
//! let mask = FailureMask::sample(space, 0.1, &mut rng);
//! let source = space.wrap(17);
//! let target = space.wrap(900);
//! if mask.is_alive(source) && mask.is_alive(target) {
//!     match route(&overlay, source, target, &mask) {
//!         RouteOutcome::Delivered { hops } => assert!(hops <= 10),
//!         RouteOutcome::Dropped { .. } => {}
//!         other => panic!("unexpected outcome {other:?}"),
//!     }
//! }
//! # Ok::<(), dht_overlay::OverlayError>(())
//! ```

// `deny` rather than `forbid`: the batched router's software-prefetch shim
// (`kernel::batch::prefetch_read`) carries the crate's only `allow` — a
// bounds-checked cache hint that cannot fault. Everything else stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod can;
pub mod chord;
pub mod failure;
pub mod faults;
pub mod generic;
pub mod kademlia;
pub mod kernel;
pub mod live;
pub mod plaxton;
pub mod router;
pub mod symphony;
pub mod traits;

pub use arena::RoutingArena;
pub use can::CanOverlay;
pub use chord::{ChordOverlay, ChordVariant};
pub use failure::{select_in_word, FailureMask};
pub use faults::{FailurePlan, MAX_SUBTREE_PREFIX_BITS};
pub use generic::{GeometryOverlay, GeometryStrategy};
pub use kademlia::KademliaOverlay;
pub use kernel::{
    ImplicitKernel, ImplicitOverlay, ImplicitRowCache, KernelMask, KernelRule, RouteBatch,
    RoutingKernel, DEFAULT_BATCH_WIDTH,
};
pub use live::LiveOverlay;
pub use plaxton::PlaxtonOverlay;
pub use router::{
    default_route_hop_limit, route, route_prevalidated, route_with_limit, RouteOutcome,
};
pub use symphony::SymphonyOverlay;
pub use traits::{Overlay, OverlayError, MAX_IMPLICIT_OVERLAY_BITS, MAX_OVERLAY_BITS};
