//! Section 5 of the paper: scalability of DHT routing geometries under
//! random failure.
//!
//! Definition 2 calls a geometry *scalable* when its routability converges to
//! a positive value as `N → ∞` for `0 < q < 1 − p_c`. Via Eq. 8 this is
//! equivalent to `lim_{h→∞} p(h, q) > 0`, and by Knopp's theorem (Theorem 1)
//! to the convergence of `Σ_m Q(m)`.
//!
//! [`classify`] combines the analytical verdict carried by each geometry with
//! a numerical probe of the `Q(m)` series, so user-defined geometries without
//! a hand-derived verdict can still be classified, and the hand-derived
//! verdicts of the five paper geometries are continuously re-validated.

use crate::error::RcmError;
use crate::geometry::{validate_failure_probability, RoutingGeometry, ScalabilityClass};
use dht_mathkit::series::{SeriesProbe, SeriesVerdict};
use serde::{Deserialize, Serialize};

/// Outcome of a scalability assessment at a particular failure probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityReport {
    /// Geometry name the report refers to.
    pub geometry: String,
    /// Failure probability used for the numerical probe.
    pub failure_probability: f64,
    /// The analytical verdict of §5 carried by the geometry.
    pub analytic: ScalabilityClass,
    /// The verdict of the numerical series probe on `Σ Q(m)`.
    pub numeric: SeriesVerdict,
    /// Partial sum `Σ_{m=1}^{probe budget} Q(m)` (diagnostic).
    pub partial_sum: f64,
    /// Estimated limit of `p(h, q)` as `h → ∞`: `exp(−Σ Q(m))`-style lower
    /// bound when the series converges, `0` when it diverges.
    pub limiting_success_probability: f64,
    /// `true` when the analytical and numerical verdicts agree.
    pub consistent: bool,
}

/// Identifier length used when probing geometries whose `Q` depends on `d`
/// (Symphony). Mirrors the asymptotic evaluations of Fig. 7(a).
const PROBE_BITS: u32 = 100;

/// Classifies a geometry at failure probability `q`.
///
/// # Errors
///
/// Returns [`RcmError::InvalidFailureProbability`] unless `q ∈ [0, 1)`.
///
/// # Example
///
/// ```rust
/// use dht_rcm_core::scalability::classify;
/// use dht_rcm_core::{ScalabilityClass, TreeGeometry, XorGeometry};
///
/// let tree = classify(&TreeGeometry::new(), 0.1)?;
/// assert_eq!(tree.analytic, ScalabilityClass::Unscalable);
/// assert!(tree.consistent);
///
/// let xor = classify(&XorGeometry::new(), 0.1)?;
/// assert_eq!(xor.analytic, ScalabilityClass::Scalable);
/// assert!(xor.limiting_success_probability > 0.8);
/// # Ok::<(), dht_rcm_core::RcmError>(())
/// ```
pub fn classify<G>(geometry: &G, q: f64) -> Result<ScalabilityReport, RcmError>
where
    G: RoutingGeometry + ?Sized,
{
    validate_failure_probability(q)?;
    let probe = SeriesProbe::default();
    let terms = |m: u32| geometry.phase_failure_probability(m, q, PROBE_BITS);
    let numeric = if q == 0.0 {
        // Σ 0 converges trivially; the probe agrees but short-circuit anyway.
        SeriesVerdict::Converges
    } else {
        probe.classify(terms)
    };
    let partial_sum = probe.partial_sum(terms, probe.max_terms);

    // Limiting p(h, q): evaluate the infinite product far enough out that the
    // remaining factors are indistinguishable from one (convergent case), or
    // report zero (divergent case).
    let limiting_success_probability = match numeric {
        SeriesVerdict::Converges => {
            let mut ln_p = 0.0;
            for m in 1..=probe.max_terms {
                let failure = terms(m).clamp(0.0, 1.0);
                if failure >= 1.0 {
                    ln_p = f64::NEG_INFINITY;
                    break;
                }
                if failure > 0.0 {
                    ln_p += dht_mathkit::logprob::ln_one_minus_exp(failure.ln());
                }
            }
            ln_p.exp()
        }
        SeriesVerdict::Diverges | SeriesVerdict::Inconclusive => 0.0,
    };

    let numeric_class = match numeric {
        SeriesVerdict::Converges => Some(ScalabilityClass::Scalable),
        SeriesVerdict::Diverges => Some(ScalabilityClass::Unscalable),
        SeriesVerdict::Inconclusive => None,
    };
    let analytic = geometry.analytic_scalability();
    let consistent = numeric_class.is_none_or(|n| n == analytic);

    Ok(ScalabilityReport {
        geometry: geometry.name().to_owned(),
        failure_probability: q,
        analytic,
        numeric,
        partial_sum,
        limiting_success_probability,
        consistent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::{
        HypercubeGeometry, RingGeometry, SymphonyGeometry, TreeGeometry, XorGeometry,
    };

    #[test]
    fn paper_verdicts_are_reproduced_numerically() {
        let q = 0.1;
        let scalable: Vec<Box<dyn RoutingGeometry>> = vec![
            Box::new(HypercubeGeometry::new()),
            Box::new(XorGeometry::new()),
            Box::new(RingGeometry::new()),
        ];
        for geometry in &scalable {
            let report = classify(geometry.as_ref(), q).unwrap();
            assert_eq!(
                report.analytic,
                ScalabilityClass::Scalable,
                "{}",
                report.geometry
            );
            assert_eq!(
                report.numeric,
                SeriesVerdict::Converges,
                "{}",
                report.geometry
            );
            assert!(report.consistent);
            assert!(report.limiting_success_probability > 0.0);
        }
        let unscalable: Vec<Box<dyn RoutingGeometry>> = vec![
            Box::new(TreeGeometry::new()),
            Box::new(SymphonyGeometry::new(1, 1).unwrap()),
        ];
        for geometry in &unscalable {
            let report = classify(geometry.as_ref(), q).unwrap();
            assert_eq!(
                report.analytic,
                ScalabilityClass::Unscalable,
                "{}",
                report.geometry
            );
            assert_eq!(
                report.numeric,
                SeriesVerdict::Diverges,
                "{}",
                report.geometry
            );
            assert!(report.consistent);
            assert_eq!(report.limiting_success_probability, 0.0);
        }
    }

    #[test]
    fn verdicts_hold_across_the_failure_grid() {
        for &q in &[0.01, 0.05, 0.2, 0.5, 0.8] {
            assert_eq!(
                classify(&XorGeometry::new(), q).unwrap().numeric,
                SeriesVerdict::Converges,
                "q={q}"
            );
            assert_eq!(
                classify(&TreeGeometry::new(), q).unwrap().numeric,
                SeriesVerdict::Diverges,
                "q={q}"
            );
        }
    }

    #[test]
    fn limiting_probability_matches_hypercube_euler_product() {
        // lim p(h, 0.5) = ∏ (1 - 0.5^m) ≈ 0.288788 (Euler function at 1/2).
        let report = classify(&HypercubeGeometry::new(), 0.5).unwrap();
        assert!((report.limiting_success_probability - 0.288_788).abs() < 1e-4);
    }

    #[test]
    fn zero_failure_probability_is_trivially_scalable_numerically() {
        let report = classify(&TreeGeometry::new(), 0.0).unwrap();
        assert_eq!(report.numeric, SeriesVerdict::Converges);
        assert_eq!(report.limiting_success_probability, 1.0);
        // The analytic verdict concerns q > 0, so consistency is not required
        // to hold here; the report simply records both.
        assert_eq!(report.analytic, ScalabilityClass::Unscalable);
    }

    #[test]
    fn partial_sums_reflect_divergence_speed() {
        let tree = classify(&TreeGeometry::new(), 0.2).unwrap();
        let xor = classify(&XorGeometry::new(), 0.2).unwrap();
        assert!(tree.partial_sum > 100.0);
        assert!(xor.partial_sum < 1.0);
    }

    #[test]
    fn invalid_q_is_rejected() {
        assert!(classify(&TreeGeometry::new(), 1.0).is_err());
        assert!(classify(&TreeGeometry::new(), -0.2).is_err());
    }
}
