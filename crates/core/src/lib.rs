//! The Reachable Component Method (RCM) for analysing the scalability and
//! performance of DHT routing systems under random node failure.
//!
//! This crate is a faithful implementation of the analytical framework of
//! *"A General Framework for Scalability and Performance Analysis of DHT
//! Routing Systems"* (Kong, Bridgewater, Roychowdhury — DSN 2006). It answers,
//! in closed form, the question: **if every node of a DHT fails independently
//! with probability `q`, what fraction of the surviving node pairs can still
//! route to each other?**
//!
//! # The method in five steps (§4.1 of the paper)
//!
//! 1. Pick a root node and build its routing topology.
//! 2. Derive the distance distribution `n(h)` — how many nodes sit `h` hops
//!    or phases away ([`RoutingGeometry::ln_nodes_at_distance`]).
//! 3. Model a single route as an absorbing Markov chain and extract the
//!    per-phase failure probability `Q(m)`
//!    ([`RoutingGeometry::phase_failure_probability`]); the success
//!    probability over `h` phases is `p(h, q) = ∏ (1 − Q(m))` ([`phase`]).
//! 4. The expected reachable component is `E[S] = Σ n(h) p(h, q)`.
//! 5. Routability is `r = E[S] / ((1 − q)·N − 1)` ([`routability()`]).
//!
//! # The five geometries (§3, §4.3)
//!
//! [`TreeGeometry`] (Plaxton), [`HypercubeGeometry`] (CAN), [`XorGeometry`]
//! (Kademlia), [`RingGeometry`] (Chord) and [`SymphonyGeometry`] implement
//! the paper's closed forms; [`Geometry`] bundles them for sweeps. The §5
//! verdicts — tree and Symphony unscalable, the rest scalable — are exposed
//! through [`scalability::classify`] and re-checked numerically.
//!
//! # Example
//!
//! ```rust
//! use dht_rcm_core::prelude::*;
//!
//! let size = SystemSize::power_of_two(16)?; // N = 2^16, as in Fig. 6
//! let xor = Geometry::xor();
//! let report = xor.routability(size, 0.3)?;
//! assert!(report.failed_path_percent < 35.0);
//!
//! let verdict = xor.scalability(0.3)?;
//! assert_eq!(verdict.analytic, ScalabilityClass::Scalable);
//! assert!(verdict.consistent);
//! # Ok::<(), dht_rcm_core::RcmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asymptotic;
pub mod catalog;
pub mod closed_form;
pub mod error;
pub mod geometry;
pub mod phase;
pub mod routability;
pub mod scalability;

pub use catalog::Geometry;
pub use closed_form::{
    HypercubeGeometry, RingGeometry, SymphonyGeometry, TreeGeometry, XorGeometry,
};
pub use error::RcmError;
pub use geometry::{RoutingGeometry, ScalabilityClass, SystemSize};
pub use phase::{ln_success_probability, success_probability};
pub use routability::{failed_path_percent, routability, routability_value, RoutabilityReport};
pub use scalability::{classify, ScalabilityReport};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::asymptotic::{sweep_failure_probability, sweep_system_size};
    pub use crate::catalog::Geometry;
    pub use crate::closed_form::{
        HypercubeGeometry, RingGeometry, SymphonyGeometry, TreeGeometry, XorGeometry,
    };
    pub use crate::error::RcmError;
    pub use crate::geometry::{RoutingGeometry, ScalabilityClass, SystemSize};
    pub use crate::routability::{routability, RoutabilityReport};
    pub use crate::scalability::{classify, ScalabilityReport};
}
