//! A convenience catalogue of the five paper geometries behind one enum.
//!
//! The [`Geometry`] enum lets callers sweep "all systems the paper analyses"
//! without naming each concrete type, which is what the experiment harnesses
//! and examples do. Library users who implement their own
//! [`RoutingGeometry`] are not restricted to this catalogue — every framework
//! function accepts any implementor.

use crate::closed_form::{
    HypercubeGeometry, RingGeometry, SymphonyGeometry, TreeGeometry, XorGeometry,
};
use crate::error::RcmError;
use crate::geometry::{RoutingGeometry, ScalabilityClass, SystemSize};
use crate::routability::{routability, RoutabilityReport};
use crate::scalability::{classify, ScalabilityReport};
use serde::{Deserialize, Serialize};

/// One of the five DHT routing geometries analysed by the paper.
///
/// # Example
///
/// ```rust
/// use dht_rcm_core::{Geometry, SystemSize};
///
/// let size = SystemSize::power_of_two(16)?;
/// for geometry in Geometry::all_with_default_parameters() {
///     let report = geometry.routability(size, 0.1)?;
///     assert!(report.routability > 0.0 && report.routability <= 1.0);
/// }
/// # Ok::<(), dht_rcm_core::RcmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Geometry {
    /// Tree / Plaxton prefix routing.
    Tree(TreeGeometry),
    /// Hypercube / CAN routing.
    Hypercube(HypercubeGeometry),
    /// XOR / Kademlia routing.
    Xor(XorGeometry),
    /// Ring / Chord routing.
    Ring(RingGeometry),
    /// Small-world / Symphony routing.
    Symphony(SymphonyGeometry),
}

impl Geometry {
    /// The tree (Plaxton) geometry.
    #[must_use]
    pub fn tree() -> Self {
        Geometry::Tree(TreeGeometry::new())
    }

    /// The hypercube (CAN) geometry.
    #[must_use]
    pub fn hypercube() -> Self {
        Geometry::Hypercube(HypercubeGeometry::new())
    }

    /// The XOR (Kademlia) geometry.
    #[must_use]
    pub fn xor() -> Self {
        Geometry::Xor(XorGeometry::new())
    }

    /// The ring (Chord) geometry.
    #[must_use]
    pub fn ring() -> Self {
        Geometry::Ring(RingGeometry::new())
    }

    /// The small-world (Symphony) geometry with `k_n` near neighbours and
    /// `k_s` shortcuts.
    ///
    /// # Errors
    ///
    /// Returns [`RcmError::InvalidParameter`] if either count is zero.
    pub fn symphony(near_neighbors: u32, shortcuts: u32) -> Result<Self, RcmError> {
        Ok(Geometry::Symphony(SymphonyGeometry::new(
            near_neighbors,
            shortcuts,
        )?))
    }

    /// All five geometries with the parameters used in the paper's figures
    /// (Symphony with `k_n = k_s = 1`).
    #[must_use]
    pub fn all_with_default_parameters() -> Vec<Geometry> {
        vec![
            Geometry::tree(),
            Geometry::hypercube(),
            Geometry::xor(),
            Geometry::ring(),
            Geometry::Symphony(SymphonyGeometry::new(1, 1).expect("k_n = k_s = 1 is always valid")),
        ]
    }

    /// Borrows the underlying geometry as a trait object.
    #[must_use]
    pub fn as_routing_geometry(&self) -> &dyn RoutingGeometry {
        match self {
            Geometry::Tree(g) => g,
            Geometry::Hypercube(g) => g,
            Geometry::Xor(g) => g,
            Geometry::Ring(g) => g,
            Geometry::Symphony(g) => g,
        }
    }

    /// Evaluates the RCM routability at `size` and failure probability `q`.
    ///
    /// # Errors
    ///
    /// See [`crate::routability()`].
    pub fn routability(&self, size: SystemSize, q: f64) -> Result<RoutabilityReport, RcmError> {
        routability(self.as_routing_geometry(), size, q)
    }

    /// Runs the §5 scalability classification at failure probability `q`.
    ///
    /// # Errors
    ///
    /// See [`crate::scalability::classify`].
    pub fn scalability(&self, q: f64) -> Result<ScalabilityReport, RcmError> {
        classify(self.as_routing_geometry(), q)
    }
}

impl RoutingGeometry for Geometry {
    fn name(&self) -> &'static str {
        self.as_routing_geometry().name()
    }

    fn system(&self) -> &'static str {
        self.as_routing_geometry().system()
    }

    fn max_distance(&self, d: u32) -> u32 {
        self.as_routing_geometry().max_distance(d)
    }

    fn ln_nodes_at_distance(&self, d: u32, h: u32) -> f64 {
        self.as_routing_geometry().ln_nodes_at_distance(d, h)
    }

    fn phase_failure_probability(&self, m: u32, q: f64, d: u32) -> f64 {
        self.as_routing_geometry()
            .phase_failure_probability(m, q, d)
    }

    fn analytic_scalability(&self) -> ScalabilityClass {
        self.as_routing_geometry().analytic_scalability()
    }
}

impl std::fmt::Display for Geometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name(), self.system())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_contains_all_five_systems() {
        let all = Geometry::all_with_default_parameters();
        assert_eq!(all.len(), 5);
        let names: Vec<&str> = all.iter().map(|g| g.name()).collect();
        assert_eq!(names, vec!["tree", "hypercube", "xor", "ring", "symphony"]);
        let systems: Vec<&str> = all.iter().map(|g| g.system()).collect();
        assert_eq!(
            systems,
            vec!["Plaxton", "CAN", "Kademlia", "Chord", "Symphony"]
        );
    }

    #[test]
    fn display_includes_both_names() {
        assert_eq!(Geometry::xor().to_string(), "xor (Kademlia)");
        assert_eq!(Geometry::ring().to_string(), "ring (Chord)");
    }

    #[test]
    fn enum_delegates_to_concrete_geometry() {
        let direct = XorGeometry::new();
        let via_enum = Geometry::xor();
        let size = SystemSize::power_of_two(16).unwrap();
        let a = routability(&direct, size, 0.25).unwrap();
        let b = via_enum.routability(size, 0.25).unwrap();
        assert!((a.routability - b.routability).abs() < 1e-15);
        assert_eq!(
            via_enum.phase_failure_probability(3, 0.25, 16),
            direct.phase_failure_probability(3, 0.25, 16)
        );
    }

    #[test]
    fn scalability_verdicts_match_the_paper_table() {
        let verdicts: Vec<(String, ScalabilityClass)> = Geometry::all_with_default_parameters()
            .iter()
            .map(|g| (g.name().to_owned(), g.analytic_scalability()))
            .collect();
        assert_eq!(verdicts[0].1, ScalabilityClass::Unscalable); // tree
        assert_eq!(verdicts[1].1, ScalabilityClass::Scalable); // hypercube
        assert_eq!(verdicts[2].1, ScalabilityClass::Scalable); // xor
        assert_eq!(verdicts[3].1, ScalabilityClass::Scalable); // ring
        assert_eq!(verdicts[4].1, ScalabilityClass::Unscalable); // symphony
    }

    #[test]
    fn symphony_constructor_validates() {
        assert!(Geometry::symphony(0, 1).is_err());
        assert!(Geometry::symphony(2, 2).is_ok());
    }

    #[test]
    fn geometries_round_trip_through_serde() {
        for geometry in Geometry::all_with_default_parameters() {
            let json = serde_json::to_string(&geometry).unwrap();
            let back: Geometry = serde_json::from_str(&json).unwrap();
            assert_eq!(geometry, back);
        }
    }
}
