//! Step 3 of the reachable component method: the success probability
//! `p(h, q)` of routing to a node `h` hops or phases away.
//!
//! Every geometry in the paper satisfies Eq. 5:
//!
//! ```text
//! p(h, q) = ∏_{m=1}^{h} (1 − Q(m))
//! ```
//!
//! where `Q(m)` is the per-phase failure probability extracted from the
//! routing Markov chain. This module evaluates the product in log space so it
//! stays meaningful even when `h` is in the hundreds and the product is
//! astronomically small (tree and Symphony geometries at Fig. 7a scale).

use crate::error::RcmError;
use crate::geometry::{validate_failure_probability, RoutingGeometry};
use dht_mathkit::logprob::ln_one_minus_exp;

/// Natural logarithm of `p(h, q)` for the given geometry in a `d`-bit system.
///
/// Returns `-∞` when any phase fails with certainty.
///
/// # Errors
///
/// * [`RcmError::InvalidFailureProbability`] unless `q ∈ [0, 1)`.
/// * [`RcmError::InvalidParameter`] if `h` exceeds the geometry's maximum
///   routing distance for `d` bits or if a geometry returns an out-of-range
///   `Q(m)`.
pub fn ln_success_probability<G>(geometry: &G, d: u32, h: u32, q: f64) -> Result<f64, RcmError>
where
    G: RoutingGeometry + ?Sized,
{
    validate_failure_probability(q)?;
    if h > geometry.max_distance(d) {
        return Err(RcmError::InvalidParameter {
            message: format!(
                "distance h = {h} exceeds the maximum routing distance {} of the {} geometry at d = {d}",
                geometry.max_distance(d),
                geometry.name()
            ),
        });
    }
    let mut ln_p = 0.0f64;
    for m in 1..=h {
        let failure = geometry.phase_failure_probability(m, q, d);
        if !(0.0..=1.0 + 1e-9).contains(&failure) || failure.is_nan() {
            return Err(RcmError::InvalidParameter {
                message: format!(
                    "geometry {} produced an invalid phase failure probability Q({m}) = {failure}",
                    geometry.name()
                ),
            });
        }
        let failure = failure.min(1.0);
        if failure >= 1.0 {
            return Ok(f64::NEG_INFINITY);
        }
        // ln(1 - Q(m)) via the stable two-branch formula.
        ln_p += if failure == 0.0 {
            0.0
        } else {
            ln_one_minus_exp(failure.ln())
        };
    }
    Ok(ln_p)
}

/// Linear-space `p(h, q)`; see [`ln_success_probability`].
///
/// # Errors
///
/// Same as [`ln_success_probability`].
pub fn success_probability<G>(geometry: &G, d: u32, h: u32, q: f64) -> Result<f64, RcmError>
where
    G: RoutingGeometry + ?Sized,
{
    Ok(ln_success_probability(geometry, d, h, q)?.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::{HypercubeGeometry, TreeGeometry, XorGeometry};
    use crate::geometry::ScalabilityClass;

    #[test]
    fn zero_distance_always_succeeds() {
        let geometry = HypercubeGeometry::new();
        assert_eq!(ln_success_probability(&geometry, 16, 0, 0.5).unwrap(), 0.0);
        assert_eq!(success_probability(&geometry, 16, 0, 0.5).unwrap(), 1.0);
    }

    #[test]
    fn zero_failure_probability_is_certain_success() {
        let geometry = XorGeometry::new();
        for h in 0..=16 {
            assert!((success_probability(&geometry, 16, h, 0.0).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tree_matches_closed_form() {
        let geometry = TreeGeometry::new();
        for h in 1..=20u32 {
            for &q in &[0.1f64, 0.5, 0.9] {
                let expected = (1.0 - q).powi(h as i32);
                let got = success_probability(&geometry, 20, h, q).unwrap();
                assert!((got - expected).abs() < 1e-12, "h={h} q={q}");
            }
        }
    }

    #[test]
    fn success_probability_is_monotone_in_distance() {
        let geometry = HypercubeGeometry::new();
        let mut previous = 1.0;
        for h in 1..=32 {
            let p = success_probability(&geometry, 32, h, 0.3).unwrap();
            assert!(p <= previous + 1e-12);
            previous = p;
        }
    }

    #[test]
    fn distance_beyond_diameter_is_rejected() {
        let geometry = TreeGeometry::new();
        assert!(matches!(
            ln_success_probability(&geometry, 8, 9, 0.1),
            Err(RcmError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn invalid_q_is_rejected() {
        let geometry = TreeGeometry::new();
        assert!(ln_success_probability(&geometry, 8, 4, 1.0).is_err());
        assert!(ln_success_probability(&geometry, 8, 4, -0.5).is_err());
    }

    #[test]
    fn misbehaving_geometry_is_reported() {
        struct Bogus;
        impl RoutingGeometry for Bogus {
            fn name(&self) -> &'static str {
                "bogus"
            }
            fn system(&self) -> &'static str {
                "Bogus"
            }
            fn ln_nodes_at_distance(&self, _d: u32, _h: u32) -> f64 {
                0.0
            }
            fn phase_failure_probability(&self, _m: u32, _q: f64, _d: u32) -> f64 {
                1.7
            }
            fn analytic_scalability(&self) -> ScalabilityClass {
                ScalabilityClass::Unscalable
            }
        }
        assert!(matches!(
            ln_success_probability(&Bogus, 8, 4, 0.1),
            Err(RcmError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn works_through_a_trait_object() {
        let geometry: Box<dyn RoutingGeometry> = Box::new(HypercubeGeometry::new());
        let p = success_probability(geometry.as_ref(), 16, 8, 0.2).unwrap();
        assert!(p > 0.0 && p < 1.0);
    }
}
