//! The ring (Chord) geometry, §3.4 / §4.3.3 of the paper.

use super::ln_doubling_distance_count;
use crate::geometry::{RoutingGeometry, ScalabilityClass};
use serde::{Deserialize, Serialize};

/// Ring routing with fingers as used by (randomised) Chord.
///
/// Nodes sit on a ring; the `i`-th finger covers numeric distance
/// `[2^{d−i}, 2^{d−i+1})`, and routing is greedy clockwise. The distance
/// distribution is `n(h) = 2^{h−1}` (half of all nodes are one phase away,
/// a quarter two phases away, and so on).
///
/// The paper's chain (Fig. 8a) deliberately ignores the fact that suboptimal
/// hops preserve their progress in later phases — accounting for it would
/// blow up the state space — so the resulting
///
/// ```text
/// Q_ring(m) = q^m · (1 − [q(1 − q^{m−1})]^{2^{m−1}}) / (1 − q(1 − q^{m−1}))
/// ```
///
/// yields a **lower bound** on routability (an upper bound on failed paths,
/// Fig. 6b), tight for `q ≲ 20%`. Since `Q_ring(m) ≥ Q_xor(m)` term-wise is
/// false — it is the other way around — the XOR convergence argument carries
/// over and the geometry is **scalable** (§5.4).
///
/// # Example
///
/// ```rust
/// use dht_rcm_core::{routability, RingGeometry, SystemSize};
///
/// let size = SystemSize::power_of_two(16)?;
/// let r = routability(&RingGeometry::new(), size, 0.1)?;
/// // Fig. 6(b): below 10% of paths fail at q = 10%.
/// assert!(r.failed_path_percent < 10.0);
/// # Ok::<(), dht_rcm_core::RcmError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RingGeometry;

impl RingGeometry {
    /// Creates the ring geometry.
    #[must_use]
    pub fn new() -> Self {
        RingGeometry
    }

    /// Evaluates the §4.3.3 closed form for `Q_ring(m)`.
    #[must_use]
    pub fn phase_failure_exact(&self, m: u32, q: f64) -> f64 {
        if q == 0.0 || m == 0 {
            return 0.0;
        }
        let q_to_m = q.powi(m as i32);
        if q_to_m == 0.0 {
            return 0.0;
        }
        // r is the probability of taking a suboptimal hop.
        let r = q * (1.0 - q.powi(m.saturating_sub(1) as i32));
        if r == 0.0 {
            // m = 1 (or q = 1): no detours possible, Q = q^m.
            return q_to_m.min(1.0);
        }
        // r^(2^(m-1)) evaluated in log space; the exponent itself may exceed
        // f64 range for large m, in which case the power underflows to zero.
        let exponent = 2f64.powi(m as i32 - 1);
        let tail = (exponent * r.ln()).exp();
        (q_to_m * (1.0 - tail) / (1.0 - r)).clamp(0.0, 1.0)
    }
}

impl RoutingGeometry for RingGeometry {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn system(&self) -> &'static str {
        "Chord"
    }

    fn ln_nodes_at_distance(&self, d: u32, h: u32) -> f64 {
        ln_doubling_distance_count(d, h)
    }

    fn phase_failure_probability(&self, m: u32, q: f64, _d: u32) -> f64 {
        self.phase_failure_exact(m, q)
    }

    fn analytic_scalability(&self) -> ScalabilityClass {
        ScalabilityClass::Scalable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::success_probability;
    use crate::routability::routability;
    use crate::SystemSize;
    use dht_markov::chains::ring_chain;

    #[test]
    fn phase_success_matches_markov_chain() {
        let geometry = RingGeometry::new();
        for h in 1..=14u32 {
            for &q in &[0.05, 0.3, 0.6, 0.9] {
                let analytical = success_probability(&geometry, 14, h, q).unwrap();
                let chain = ring_chain(h, q).unwrap().success_probability().unwrap();
                assert!(
                    (analytical - chain).abs() < 1e-9,
                    "h={h} q={q}: {analytical} vs {chain}"
                );
            }
        }
    }

    #[test]
    fn first_phase_failure_is_q() {
        let geometry = RingGeometry::new();
        for &q in &[0.1, 0.5, 0.9] {
            assert!((geometry.phase_failure_exact(1, q) - q).abs() < 1e-12);
        }
    }

    #[test]
    fn q2_matches_hand_expansion() {
        // Q_ring(2) = q^2 (1 + q(1 - q)).
        let geometry = RingGeometry::new();
        for &q in &[0.1, 0.4, 0.8] {
            let expected = q * q * (1.0 + q * (1.0 - q));
            assert!((geometry.phase_failure_exact(2, q) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn ring_phase_failure_is_below_xor() {
        // §5.4: ring detours keep all m finger choices alive, so per-phase
        // failure is at most the XOR one; this makes ring scalable.
        let ring = RingGeometry::new();
        let xor = super::super::XorGeometry::new();
        for m in 1..=20u32 {
            for &q in &[0.1, 0.3, 0.5, 0.7, 0.9] {
                assert!(
                    ring.phase_failure_exact(m, q) <= xor.phase_failure_exact(m, q) + 1e-12,
                    "m={m} q={q}"
                );
            }
        }
    }

    #[test]
    fn ring_routability_exceeds_xor_routability() {
        let ring = RingGeometry::new();
        let xor = super::super::XorGeometry::new();
        let size = SystemSize::power_of_two(16).unwrap();
        for &q in &[0.1, 0.3, 0.5] {
            let rr = routability(&ring, size, q).unwrap().routability;
            let rx = routability(&xor, size, q).unwrap().routability;
            assert!(rr >= rx - 1e-12, "q={q}: ring {rr} vs xor {rx}");
        }
    }

    #[test]
    fn large_phase_failure_underflows_gracefully() {
        let geometry = RingGeometry::new();
        let value = geometry.phase_failure_exact(500, 0.5);
        assert!((0.0..1e-100).contains(&value));
        // And stays a probability near q -> 1.
        let value = geometry.phase_failure_exact(64, 0.999);
        assert!((0.0..=1.0).contains(&value));
    }

    #[test]
    fn metadata_is_stable() {
        let geometry = RingGeometry::new();
        assert_eq!(geometry.name(), "ring");
        assert_eq!(geometry.system(), "Chord");
        assert_eq!(geometry.analytic_scalability(), ScalabilityClass::Scalable);
    }
}
