//! Closed-form `n(h)` and `Q(m)` expressions for the five paper geometries
//! (§4.3), each implementing [`crate::RoutingGeometry`].
//!
//! | Type | Geometry | DHT | `n(h)` | Scalability (§5) |
//! |------|----------|-----|--------|------------------|
//! | [`TreeGeometry`] | prefix-correcting tree | Plaxton/Tapestry/Pastry-style | `C(d,h)` | unscalable |
//! | [`HypercubeGeometry`] | hypercube | CAN | `C(d,h)` | scalable |
//! | [`XorGeometry`] | XOR | Kademlia (eDonkey/Kad) | `C(d,h)` | scalable |
//! | [`RingGeometry`] | ring with fingers | Chord | `2^{h−1}` | scalable (lower bound) |
//! | [`SymphonyGeometry`] | 1-D small world | Symphony | `2^{h−1}` | unscalable |
//!
//! Every module carries unit tests pinning the closed forms against the
//! routing Markov chains of the `dht-markov` crate, i.e. against the model the
//! formulas were derived from.

mod hypercube;
mod ring;
mod symphony;
mod tree;
mod xor;

pub use hypercube::HypercubeGeometry;
pub use ring::RingGeometry;
pub use symphony::SymphonyGeometry;
pub use tree::TreeGeometry;
pub use xor::XorGeometry;

/// `ln n(h)` for the binomial distance distribution `n(h) = C(d, h)` shared by
/// the tree, hypercube and XOR geometries.
pub(crate) fn ln_binomial_distance_count(d: u32, h: u32) -> f64 {
    dht_mathkit::binomial::ln_binomial(u64::from(d), u64::from(h))
}

/// `ln n(h)` for the doubling distance distribution `n(h) = 2^{h−1}` shared by
/// the ring and Symphony geometries.
pub(crate) fn ln_doubling_distance_count(d: u32, h: u32) -> f64 {
    if h == 0 || h > d {
        f64::NEG_INFINITY
    } else {
        f64::from(h - 1) * std::f64::consts::LN_2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::RoutingGeometry;
    use dht_mathkit::logsum::LogSumExp;

    /// Step 2 sanity check: every geometry's distance distribution must cover
    /// exactly the other `2^d − 1` nodes of the fully populated space.
    #[test]
    fn distance_distributions_cover_the_population() {
        let geometries: Vec<Box<dyn RoutingGeometry>> = vec![
            Box::new(TreeGeometry::new()),
            Box::new(HypercubeGeometry::new()),
            Box::new(XorGeometry::new()),
            Box::new(RingGeometry::new()),
            Box::new(SymphonyGeometry::new(1, 1).unwrap()),
        ];
        for d in [4u32, 8, 16, 32] {
            for geometry in &geometries {
                let mut total = LogSumExp::new();
                for h in 1..=geometry.max_distance(d) {
                    total.push(geometry.ln_nodes_at_distance(d, h));
                }
                let expected = (2f64.powi(d as i32) - 1.0).ln();
                assert!(
                    (total.sum() - expected).abs() < 1e-9,
                    "{} at d={d}: coverage {} vs {}",
                    geometry.name(),
                    total.sum(),
                    expected
                );
            }
        }
    }

    /// Q(m) must be a probability for every geometry over a broad grid.
    #[test]
    fn phase_failure_probabilities_are_probabilities() {
        let geometries: Vec<Box<dyn RoutingGeometry>> = vec![
            Box::new(TreeGeometry::new()),
            Box::new(HypercubeGeometry::new()),
            Box::new(XorGeometry::new()),
            Box::new(RingGeometry::new()),
            Box::new(SymphonyGeometry::new(2, 3).unwrap()),
        ];
        for geometry in &geometries {
            for m in 1..=64u32 {
                for &q in &[0.0, 0.01, 0.1, 0.5, 0.9, 0.99] {
                    let failure = geometry.phase_failure_probability(m, q, 64);
                    assert!(
                        (0.0..=1.0).contains(&failure),
                        "{} Q({m}) at q={q}: {failure}",
                        geometry.name()
                    );
                }
            }
        }
    }

    #[test]
    fn binomial_and_doubling_counts_match_direct_formulas() {
        assert!((ln_binomial_distance_count(16, 8).exp() - 12870.0).abs() < 1e-6);
        assert!((ln_doubling_distance_count(16, 1)).abs() < 1e-12);
        assert!((ln_doubling_distance_count(16, 16) - 15.0 * std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(ln_doubling_distance_count(16, 17), f64::NEG_INFINITY);
        assert_eq!(ln_doubling_distance_count(16, 0), f64::NEG_INFINITY);
    }
}
