//! The XOR (Kademlia) geometry, §3.3 / §4.3.2 of the paper.

use super::ln_binomial_distance_count;
use crate::geometry::{RoutingGeometry, ScalabilityClass};
use serde::{Deserialize, Serialize};

/// XOR routing as used by Kademlia (and therefore by the eDonkey/Kad
/// network the paper's introduction motivates).
///
/// Choosing the `i`-th neighbour uniformly from XOR distance
/// `[2^{d−i}, 2^{d−i+1})` is equivalent to matching the first `i − 1` bits,
/// flipping the `i`-th and randomising the rest, so the distance distribution
/// is the Plaxton one, `n(h) = C(d, h)`. Unlike the tree, a failed optimal
/// neighbour lets the message fall back to lower-order bits — but that
/// progress is not preserved across phases, giving the per-phase failure
/// probability of Eq. 6:
///
/// ```text
/// Q_xor(m) = q^m + Σ_{k=1}^{m−1} q^m ∏_{j=m−k}^{m−1} (1 − q^j)
/// ```
///
/// `Q_xor(m)` decays like `m·q^m`, so `Σ Q_xor(m)` converges and the geometry
/// is **scalable** (§5.3) — consistent with eDonkey scaling to millions of
/// nodes.
///
/// # Example
///
/// ```rust
/// use dht_rcm_core::{routability, SystemSize, XorGeometry};
///
/// let size = SystemSize::power_of_two(16)?;
/// let r = routability(&XorGeometry::new(), size, 0.3)?;
/// // Fig. 6(a): ~25% failed paths at q = 30% for N = 2^16.
/// assert!(r.failed_path_percent > 15.0 && r.failed_path_percent < 35.0);
/// # Ok::<(), dht_rcm_core::RcmError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct XorGeometry;

impl XorGeometry {
    /// Creates the XOR geometry.
    #[must_use]
    pub fn new() -> Self {
        XorGeometry
    }

    /// Evaluates Eq. 6 exactly (the finite sum, not the paper's
    /// `1 − x ≈ e^{−x}` approximation).
    #[must_use]
    pub fn phase_failure_exact(&self, m: u32, q: f64) -> f64 {
        if m == 0 {
            return 0.0;
        }
        let q_to_m = q.powi(m as i32);
        if q_to_m == 0.0 {
            return 0.0;
        }
        // Running product ∏_{j=m-k}^{m-1} (1 - q^j), built up as k grows.
        let mut product = 1.0;
        let mut sum = 1.0; // k = 0 term of Σ_{k=0}^{m-1} ∏ ...
        for k in 1..m {
            product *= 1.0 - q.powi((m - k) as i32);
            sum += product;
        }
        (q_to_m * sum).min(1.0)
    }

    /// The paper's closed-form approximation of Eq. 6, provided for
    /// comparison with [`Self::phase_failure_exact`]:
    /// `Q(m) ≈ q^m (m + q/(1−q)·(q^{m−1}(m−1) − (1 − q^{m+1})/(1 − q)))`.
    #[must_use]
    pub fn phase_failure_approximation(&self, m: u32, q: f64) -> f64 {
        if q == 0.0 {
            return 0.0;
        }
        if q >= 1.0 {
            return 1.0;
        }
        let m_f = f64::from(m);
        let q_to_m = q.powi(m as i32);
        let inner = q.powi(m as i32 - 1) * (m_f - 1.0) - (1.0 - q.powi(m as i32 + 1)) / (1.0 - q);
        (q_to_m * (m_f + q / (1.0 - q) * inner)).clamp(0.0, 1.0)
    }
}

impl RoutingGeometry for XorGeometry {
    fn name(&self) -> &'static str {
        "xor"
    }

    fn system(&self) -> &'static str {
        "Kademlia"
    }

    fn ln_nodes_at_distance(&self, d: u32, h: u32) -> f64 {
        ln_binomial_distance_count(d, h)
    }

    fn phase_failure_probability(&self, m: u32, q: f64, _d: u32) -> f64 {
        self.phase_failure_exact(m, q)
    }

    fn analytic_scalability(&self) -> ScalabilityClass {
        ScalabilityClass::Scalable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::success_probability;
    use crate::routability::routability;
    use crate::SystemSize;
    use dht_markov::chains::xor_chain;

    #[test]
    fn phase_success_matches_markov_chain() {
        let geometry = XorGeometry::new();
        for h in 1..=16u32 {
            for &q in &[0.05, 0.3, 0.6, 0.9] {
                let analytical = success_probability(&geometry, 16, h, q).unwrap();
                let chain = xor_chain(h, q).unwrap().success_probability().unwrap();
                assert!(
                    (analytical - chain).abs() < 1e-9,
                    "h={h} q={q}: {analytical} vs {chain}"
                );
            }
        }
    }

    #[test]
    fn first_phase_failure_is_q() {
        let geometry = XorGeometry::new();
        for &q in &[0.1, 0.5, 0.9] {
            assert!((geometry.phase_failure_exact(1, q) - q).abs() < 1e-12);
        }
    }

    #[test]
    fn q2_matches_hand_expansion() {
        // Q_xor(2) = q^2 + q^2 (1 - q) = q^2 (2 - q).
        let geometry = XorGeometry::new();
        for &q in &[0.1, 0.4, 0.8] {
            let expected = q * q * (2.0 - q);
            assert!((geometry.phase_failure_exact(2, q) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_and_paper_approximation_agree_for_small_q() {
        let geometry = XorGeometry::new();
        for m in 2..=12u32 {
            for &q in &[0.01, 0.05, 0.1] {
                let exact = geometry.phase_failure_exact(m, q);
                let approx = geometry.phase_failure_approximation(m, q);
                let scale = exact.max(1e-12);
                assert!(
                    ((exact - approx) / scale).abs() < 0.15,
                    "m={m} q={q}: exact {exact} vs approx {approx}"
                );
            }
        }
    }

    #[test]
    fn lies_between_tree_and_hypercube() {
        let size = SystemSize::power_of_two(16).unwrap();
        let xor = XorGeometry::new();
        let tree = super::super::TreeGeometry::new();
        let cube = super::super::HypercubeGeometry::new();
        for &q in &[0.1, 0.3, 0.5, 0.7] {
            let rx = routability(&xor, size, q).unwrap().routability;
            let rt = routability(&tree, size, q).unwrap().routability;
            let rc = routability(&cube, size, q).unwrap().routability;
            assert!(rx >= rt && rx <= rc + 1e-12, "q={q}: {rt} <= {rx} <= {rc}");
        }
    }

    #[test]
    fn phase_failure_decays_geometrically() {
        // Q(m) ~ m q^m: the ratio Q(m+1)/Q(m) must eventually fall below 1,
        // which is the substance of the §5.3 scalability argument.
        let geometry = XorGeometry::new();
        let q = 0.6;
        let q10 = geometry.phase_failure_exact(10, q);
        let q20 = geometry.phase_failure_exact(20, q);
        assert!(q20 < q10 / 50.0);
    }

    #[test]
    fn metadata_is_stable() {
        let geometry = XorGeometry::new();
        assert_eq!(geometry.name(), "xor");
        assert_eq!(geometry.system(), "Kademlia");
        assert_eq!(geometry.analytic_scalability(), ScalabilityClass::Scalable);
    }
}
