//! The small-world (Symphony) geometry, §3.5 / §4.3.4 of the paper.

use super::ln_doubling_distance_count;
use crate::error::RcmError;
use crate::geometry::{RoutingGeometry, ScalabilityClass};
use serde::{Deserialize, Serialize};

/// One-dimensional small-world routing as used by Symphony.
///
/// Each node keeps `k_n` near neighbours and `k_s` long-range shortcuts drawn
/// from a harmonic (`1/d`) distance distribution, and routes greedily. A phase
/// (halving the remaining ring distance) completes when a shortcut lands in
/// the desired range, which happens with probability `x = k_s / d` per hop;
/// the message is dropped when all `k_n + k_s` connections are dead
/// (`y = q^{k_n + k_s}`); otherwise a suboptimal hop is taken, at most
/// `⌈d/(1−q)⌉` times. Equation 7:
///
/// ```text
/// Q_sym = q^{k_n+k_s} · Σ_{j=0}^{⌈d/(1−q)⌉} (1 − k_s/d − q^{k_n+k_s})^j
/// ```
///
/// `Q_sym` does not depend on the phase index `m`, so `Σ_m Q_sym` diverges and
/// the geometry is **unscalable** (§5.5). The paper's Fig. 7 uses
/// `k_n = k_s = 1`; larger values are exactly the "more sequential neighbours"
/// knob the paper notes a deployment can turn to buy routability at a fixed
/// maximum size (see the `symphony_ablation` experiment).
///
/// # Example
///
/// ```rust
/// use dht_rcm_core::{routability, SymphonyGeometry, SystemSize};
///
/// let sparse = SymphonyGeometry::new(1, 1)?;
/// let dense = SymphonyGeometry::new(4, 4)?;
/// let size = SystemSize::power_of_two(16)?;
/// let r_sparse = routability(&sparse, size, 0.2)?.routability;
/// let r_dense = routability(&dense, size, 0.2)?.routability;
/// assert!(r_dense > r_sparse);
/// # Ok::<(), dht_rcm_core::RcmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymphonyGeometry {
    near_neighbors: u32,
    shortcuts: u32,
}

impl SymphonyGeometry {
    /// Creates a Symphony geometry with `k_n` near neighbours and `k_s`
    /// shortcuts per node.
    ///
    /// # Errors
    ///
    /// Returns [`RcmError::InvalidParameter`] if either count is zero.
    pub fn new(near_neighbors: u32, shortcuts: u32) -> Result<Self, RcmError> {
        if near_neighbors == 0 || shortcuts == 0 {
            return Err(RcmError::InvalidParameter {
                message: format!(
                    "Symphony needs at least one near neighbour and one shortcut, got k_n={near_neighbors}, k_s={shortcuts}"
                ),
            });
        }
        Ok(SymphonyGeometry {
            near_neighbors,
            shortcuts,
        })
    }

    /// Number of near neighbours `k_n`.
    #[must_use]
    pub fn near_neighbors(&self) -> u32 {
        self.near_neighbors
    }

    /// Number of shortcuts `k_s`.
    #[must_use]
    pub fn shortcuts(&self) -> u32 {
        self.shortcuts
    }

    /// Evaluates Eq. 7 exactly (as a finite geometric sum) for identifier
    /// length `d` and failure probability `q`.
    #[must_use]
    pub fn phase_failure_exact(&self, q: f64, d: u32) -> f64 {
        if q <= 0.0 {
            return 0.0;
        }
        let d_f = f64::from(d.max(1));
        let x = (f64::from(self.shortcuts) / d_f).min(1.0);
        let y = q.powi((self.near_neighbors + self.shortcuts) as i32);
        let z = (1.0 - x - y).max(0.0);
        // ⌈d / (1 − q)⌉ suboptimal hops at most; q < 1 is guaranteed upstream
        // but guard the division anyway.
        let max_hops = if q >= 1.0 {
            f64::from(u32::MAX)
        } else {
            (d_f / (1.0 - q)).ceil()
        };
        if z == 0.0 {
            return y.min(1.0);
        }
        // y · (1 − z^{J+1}) / (1 − z)
        let tail = ((max_hops + 1.0) * z.ln()).exp();
        (y * (1.0 - tail) / (1.0 - z)).clamp(0.0, 1.0)
    }
}

impl RoutingGeometry for SymphonyGeometry {
    fn name(&self) -> &'static str {
        "symphony"
    }

    fn system(&self) -> &'static str {
        "Symphony"
    }

    fn ln_nodes_at_distance(&self, d: u32, h: u32) -> f64 {
        ln_doubling_distance_count(d, h)
    }

    fn phase_failure_probability(&self, _m: u32, q: f64, d: u32) -> f64 {
        self.phase_failure_exact(q, d)
    }

    fn analytic_scalability(&self) -> ScalabilityClass {
        ScalabilityClass::Unscalable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::success_probability;
    use crate::routability::routability;
    use crate::SystemSize;
    use dht_markov::chains::symphony_chain;

    #[test]
    fn phase_success_matches_markov_chain() {
        let geometry = SymphonyGeometry::new(1, 1).unwrap();
        for h in 1..=12u32 {
            for &q in &[0.05, 0.2, 0.4, 0.6] {
                let analytical = success_probability(&geometry, 16, h, q).unwrap();
                let chain = symphony_chain(h, q, 1, 1, 16)
                    .unwrap()
                    .success_probability()
                    .unwrap();
                assert!(
                    (analytical - chain).abs() < 1e-9,
                    "h={h} q={q}: {analytical} vs {chain}"
                );
            }
        }
    }

    #[test]
    fn phase_failure_is_independent_of_phase_index() {
        let geometry = SymphonyGeometry::new(1, 1).unwrap();
        let q1 = geometry.phase_failure_probability(1, 0.3, 20);
        for m in 2..=20u32 {
            assert_eq!(geometry.phase_failure_probability(m, 0.3, 20), q1);
        }
    }

    #[test]
    fn more_connections_reduce_phase_failure() {
        let q = 0.4;
        let base = SymphonyGeometry::new(1, 1)
            .unwrap()
            .phase_failure_exact(q, 16);
        let near = SymphonyGeometry::new(4, 1)
            .unwrap()
            .phase_failure_exact(q, 16);
        let shortcuts = SymphonyGeometry::new(1, 4)
            .unwrap()
            .phase_failure_exact(q, 16);
        assert!(near < base);
        assert!(shortcuts < base);
    }

    #[test]
    fn zero_failure_probability_never_drops() {
        let geometry = SymphonyGeometry::new(1, 1).unwrap();
        assert_eq!(geometry.phase_failure_exact(0.0, 16), 0.0);
        let r = routability(&geometry, SystemSize::power_of_two(12).unwrap(), 0.0).unwrap();
        assert!((r.routability - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symphony_is_the_least_robust_geometry_at_scale() {
        // Fig. 7(a): Symphony (k_n = k_s = 1) fails even faster than the tree.
        let symphony = SymphonyGeometry::new(1, 1).unwrap();
        let tree = super::super::TreeGeometry::new();
        let size = SystemSize::power_of_two(32).unwrap();
        for &q in &[0.1, 0.3] {
            let rs = routability(&symphony, size, q).unwrap().routability;
            let rt = routability(&tree, size, q).unwrap().routability;
            assert!(rs <= rt + 1e-12, "q={q}: symphony {rs} vs tree {rt}");
        }
    }

    #[test]
    fn constructor_rejects_zero_connections() {
        assert!(SymphonyGeometry::new(0, 1).is_err());
        assert!(SymphonyGeometry::new(1, 0).is_err());
        let geometry = SymphonyGeometry::new(2, 3).unwrap();
        assert_eq!(geometry.near_neighbors(), 2);
        assert_eq!(geometry.shortcuts(), 3);
    }

    #[test]
    fn metadata_is_stable() {
        let geometry = SymphonyGeometry::new(1, 1).unwrap();
        assert_eq!(geometry.name(), "symphony");
        assert_eq!(geometry.system(), "Symphony");
        assert_eq!(
            geometry.analytic_scalability(),
            ScalabilityClass::Unscalable
        );
    }
}
