//! The hypercube (CAN) geometry, §3.2 / §4.2 of the paper.

use super::ln_binomial_distance_count;
use crate::geometry::{RoutingGeometry, ScalabilityClass};
use serde::{Deserialize, Serialize};

/// Hypercube routing as used by CAN with binary dimensions.
///
/// Distance is the Hamming distance; any differing bit may be corrected at
/// each hop, so with `m` bits left to correct the hop fails only if all `m`
/// corresponding neighbours are down: `Q(m) = q^m` and
/// `p(h, q) = ∏_{m=1}^{h} (1 − q^m)` (Eq. 2).
///
/// `Σ q^m` converges for every `q < 1`, so the geometry is **scalable**
/// (§5.2).
///
/// # Example
///
/// ```rust
/// use dht_rcm_core::{routability, HypercubeGeometry, SystemSize};
///
/// // Fig. 7(b): at q = 0.1 the hypercube stays highly routable even at
/// // billions of nodes.
/// let r = routability(&HypercubeGeometry::new(), SystemSize::power_of_two(34)?, 0.1)?;
/// assert!(r.routability > 0.95);
/// # Ok::<(), dht_rcm_core::RcmError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HypercubeGeometry;

impl HypercubeGeometry {
    /// Creates the hypercube geometry.
    #[must_use]
    pub fn new() -> Self {
        HypercubeGeometry
    }

    /// The worked example of Fig. 1–3: success probability of routing across
    /// `h` Hamming bits, `p(h, q) = ∏_{m=1}^{h} (1 − q^m)`.
    #[must_use]
    pub fn hop_success_probability(&self, h: u32, q: f64) -> f64 {
        (1..=h).map(|m| 1.0 - q.powi(m as i32)).product()
    }
}

impl RoutingGeometry for HypercubeGeometry {
    fn name(&self) -> &'static str {
        "hypercube"
    }

    fn system(&self) -> &'static str {
        "CAN"
    }

    fn ln_nodes_at_distance(&self, d: u32, h: u32) -> f64 {
        ln_binomial_distance_count(d, h)
    }

    fn phase_failure_probability(&self, m: u32, q: f64, _d: u32) -> f64 {
        q.powi(m as i32)
    }

    fn analytic_scalability(&self) -> ScalabilityClass {
        ScalabilityClass::Scalable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::success_probability;
    use crate::routability::routability;
    use crate::SystemSize;
    use dht_markov::chains::hypercube_chain;

    #[test]
    fn phase_success_matches_markov_chain() {
        let geometry = HypercubeGeometry::new();
        for h in 1..=16u32 {
            for &q in &[0.05, 0.3, 0.6, 0.9] {
                let analytical = success_probability(&geometry, 16, h, q).unwrap();
                let chain = hypercube_chain(h, q)
                    .unwrap()
                    .success_probability()
                    .unwrap();
                assert!(
                    (analytical - chain).abs() < 1e-10,
                    "h={h} q={q}: {analytical} vs {chain}"
                );
            }
        }
    }

    #[test]
    fn worked_example_of_figure_three() {
        // Fig. 3: d = 3, routing from 011 to 100, p(3, q) = (1−q^3)(1−q^2)(1−q).
        let geometry = HypercubeGeometry::new();
        let q = 0.25f64;
        let expected = (1.0 - q.powi(3)) * (1.0 - q.powi(2)) * (1.0 - q);
        assert!((geometry.hop_success_probability(3, q) - expected).abs() < 1e-12);
        assert!((success_probability(&geometry, 3, 3, q).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn eight_node_hypercube_routability_by_enumeration() {
        // For d = 3 the RCM expression can be written out by hand:
        // E[S] = Σ_h C(3,h) ∏_{m=1}^h (1−q^m), r = E[S] / ((1−q)·8 − 1).
        let geometry = HypercubeGeometry::new();
        let q = 0.5;
        let p = |h: u32| geometry.hop_success_probability(h, q);
        let expected_reachable = 3.0 * p(1) + 3.0 * p(2) + p(3);
        let expected = expected_reachable / ((1.0 - q) * 8.0 - 1.0);
        let got = routability(&geometry, SystemSize::power_of_two(3).unwrap(), q).unwrap();
        assert!((got.routability - expected).abs() < 1e-9);
        assert!((got.expected_reachable() - expected_reachable).abs() < 1e-9);
    }

    #[test]
    fn more_robust_than_tree_at_every_operating_point() {
        let cube = HypercubeGeometry::new();
        let tree = super::super::TreeGeometry::new();
        let size = SystemSize::power_of_two(16).unwrap();
        for &q in &[0.1, 0.3, 0.5, 0.7] {
            let rc = routability(&cube, size, q).unwrap().routability;
            let rt = routability(&tree, size, q).unwrap().routability;
            assert!(rc > rt, "q={q}: hypercube {rc} vs tree {rt}");
        }
    }

    #[test]
    fn metadata_is_stable() {
        let geometry = HypercubeGeometry::new();
        assert_eq!(geometry.name(), "hypercube");
        assert_eq!(geometry.system(), "CAN");
        assert_eq!(geometry.analytic_scalability(), ScalabilityClass::Scalable);
    }
}
