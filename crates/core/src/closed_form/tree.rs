//! The tree (Plaxton) geometry, §3.1 / §4.3.1 of the paper.

use super::ln_binomial_distance_count;
use crate::geometry::{RoutingGeometry, ScalabilityClass, SystemSize};
use crate::routability::RoutabilityReport;
use crate::RcmError;
use serde::{Deserialize, Serialize};

/// Prefix-correcting tree routing (Plaxton, Tapestry, Pastry without leaf
/// sets).
///
/// Each node has `d` neighbours; the `i`-th matches the first `i − 1` bits and
/// differs in the `i`-th. Routing must correct the highest-order differing bit
/// at every step, so a single failed neighbour drops the message:
/// `Q(m) = q` and `p(h, q) = (1 − q)^h`, giving the fully closed form
/// `r = ((2 − q)^d − 1) / ((1 − q)·2^d − 1)` (§4.3.1).
///
/// Because `Σ Q(m) = Σ q` diverges, the geometry is **unscalable** (§5.1).
///
/// # Example
///
/// ```rust
/// use dht_rcm_core::{routability, SystemSize, TreeGeometry};
///
/// let report = routability(&TreeGeometry::new(), SystemSize::power_of_two(16)?, 0.3)?;
/// // Fig. 6(a): the tree curve is far above hypercube/XOR; at q = 0.3 nearly
/// // 90% of paths already fail.
/// assert!(report.failed_path_percent > 85.0);
/// # Ok::<(), dht_rcm_core::RcmError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TreeGeometry;

impl TreeGeometry {
    /// Creates the tree geometry.
    #[must_use]
    pub fn new() -> Self {
        TreeGeometry
    }

    /// Evaluates the paper's fully closed-form routability
    /// `r = ((2 − q)^d − 1) / ((1 − q)·2^d − 1)` without going through the
    /// generic RCM machinery. Exact only while `2^d` fits an `f64`; the
    /// generic log-space path in [`crate::routability()`] has no such limit.
    ///
    /// # Errors
    ///
    /// Returns [`RcmError::InvalidFailureProbability`] unless `q ∈ [0, 1)` and
    /// [`RcmError::DegenerateSystem`] when `(1 − q)·2^d ≤ 1`.
    pub fn closed_form_routability(
        &self,
        size: SystemSize,
        q: f64,
    ) -> Result<RoutabilityReport, RcmError> {
        crate::geometry::validate_failure_probability(q)?;
        let d = size.bits();
        let ln_survivors = (1.0 - q).ln() + size.ln_nodes();
        if ln_survivors <= 0.0 {
            return Err(RcmError::DegenerateSystem { bits: d, q });
        }
        // Work in log space: ln((2-q)^d - 1) and ln((1-q) 2^d - 1).
        let ln_numerator_plus = f64::from(d) * (2.0 - q).ln();
        let ln_numerator = ln_numerator_plus + (-(-ln_numerator_plus).exp()).ln_1p();
        let ln_denominator = ln_survivors + (-(-ln_survivors).exp()).ln_1p();
        let routability = (ln_numerator - ln_denominator).exp().min(1.0);
        Ok(RoutabilityReport {
            size,
            failure_probability: q,
            routability,
            failed_path_percent: 100.0 * (1.0 - routability),
            ln_expected_reachable: ln_numerator,
            ln_expected_peers: ln_denominator,
        })
    }
}

impl RoutingGeometry for TreeGeometry {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn system(&self) -> &'static str {
        "Plaxton"
    }

    fn ln_nodes_at_distance(&self, d: u32, h: u32) -> f64 {
        ln_binomial_distance_count(d, h)
    }

    fn phase_failure_probability(&self, _m: u32, q: f64, _d: u32) -> f64 {
        q
    }

    fn analytic_scalability(&self) -> ScalabilityClass {
        ScalabilityClass::Unscalable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::success_probability;
    use crate::routability::routability;
    use dht_markov::chains::tree_chain;

    #[test]
    fn phase_success_matches_markov_chain() {
        let geometry = TreeGeometry::new();
        for h in 1..=16u32 {
            for &q in &[0.05, 0.3, 0.6, 0.9] {
                let analytical = success_probability(&geometry, 16, h, q).unwrap();
                let chain = tree_chain(h, q).unwrap().success_probability().unwrap();
                assert!(
                    (analytical - chain).abs() < 1e-10,
                    "h={h} q={q}: {analytical} vs {chain}"
                );
            }
        }
    }

    #[test]
    fn closed_form_matches_generic_rcm_evaluation() {
        let geometry = TreeGeometry::new();
        for &bits in &[8u32, 12, 16, 20] {
            for &q in &[0.05, 0.2, 0.5, 0.8] {
                let size = SystemSize::power_of_two(bits).unwrap();
                let generic = routability(&geometry, size, q).unwrap();
                let closed = geometry.closed_form_routability(size, q).unwrap();
                assert!(
                    (generic.routability - closed.routability).abs() < 1e-9,
                    "bits={bits} q={q}"
                );
            }
        }
    }

    #[test]
    fn metadata_is_stable() {
        let geometry = TreeGeometry::new();
        assert_eq!(geometry.name(), "tree");
        assert_eq!(geometry.system(), "Plaxton");
        assert_eq!(
            geometry.analytic_scalability(),
            ScalabilityClass::Unscalable
        );
        assert_eq!(geometry.max_distance(24), 24);
    }

    #[test]
    fn closed_form_rejects_bad_inputs() {
        let geometry = TreeGeometry::new();
        let size = SystemSize::power_of_two(4).unwrap();
        assert!(geometry.closed_form_routability(size, 1.0).is_err());
        assert!(geometry.closed_form_routability(size, 0.95).is_err());
    }
}
