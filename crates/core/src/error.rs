//! Error type of the RCM core crate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors returned by routability and scalability computations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RcmError {
    /// The failure probability was outside the supported range `[0, 1)`.
    ///
    /// At `q = 1` no nodes survive and the routability (routable pairs divided
    /// by surviving pairs) is the indeterminate form `0/0`.
    InvalidFailureProbability {
        /// The rejected probability.
        q: f64,
    },
    /// The system size is too small to define routability.
    InvalidSystemSize {
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// The expected number of surviving nodes `(1 − q)·N` does not exceed one,
    /// so the expected number of surviving pairs is not positive.
    DegenerateSystem {
        /// The system size in identifier bits (`N = 2^d`).
        bits: u32,
        /// The failure probability.
        q: f64,
    },
    /// A geometry-specific parameter was invalid (e.g. zero Symphony
    /// shortcuts).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for RcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcmError::InvalidFailureProbability { q } => {
                write!(f, "node failure probability must lie in [0, 1), got {q}")
            }
            RcmError::InvalidSystemSize { message } => {
                write!(f, "invalid system size: {message}")
            }
            RcmError::DegenerateSystem { bits, q } => write!(
                f,
                "fewer than two nodes are expected to survive in a 2^{bits}-node system at q = {q}"
            ),
            RcmError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
        }
    }
}

impl std::error::Error for RcmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_offending_values() {
        let err = RcmError::InvalidFailureProbability { q: 1.5 };
        assert!(err.to_string().contains("1.5"));
        let err = RcmError::DegenerateSystem { bits: 4, q: 0.99 };
        assert!(err.to_string().contains("2^4"));
        assert!(err.to_string().contains("0.99"));
    }

    #[test]
    fn errors_round_trip_through_serde() {
        let err = RcmError::InvalidParameter {
            message: "k_s must be positive".into(),
        };
        let json = serde_json::to_string(&err).unwrap();
        let back: RcmError = serde_json::from_str(&json).unwrap();
        assert_eq!(err, back);
    }
}
