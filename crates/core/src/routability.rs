//! Steps 4 and 5 of the reachable component method: the expected reachable
//! component size and the routability `r(N, q)`.
//!
//! Because the DHTs under study have statistically identical nodes, the
//! routability of Eq. 1 reduces to
//!
//! ```text
//! r(N, q) = E[S] / ((1 − q)·N − 1),   E[S] = Σ_{h=1}^{d} n(h) · p(h, q)
//! ```
//!
//! (Eq. 3 of the paper). Both the numerator terms and the denominator are
//! carried in log space so the expression stays exact up to floating-point
//! rounding at `N = 2^100` and beyond.

use crate::error::RcmError;
use crate::geometry::{validate_failure_probability, RoutingGeometry, SystemSize};
use crate::phase::ln_success_probability;
use dht_mathkit::logsum::LogSumExp;
use serde::{Deserialize, Serialize};

/// The outcome of a routability evaluation for one `(N, q)` point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutabilityReport {
    /// System size the report was computed for.
    pub size: SystemSize,
    /// Node failure probability.
    pub failure_probability: f64,
    /// Routability `r(N, q) ∈ [0, 1]`.
    pub routability: f64,
    /// Percentage of failed paths, `100 · (1 − r)`, the paper's Fig. 6/7a
    /// y-axis.
    pub failed_path_percent: f64,
    /// Natural logarithm of the expected reachable component size `E[S]`.
    pub ln_expected_reachable: f64,
    /// Natural logarithm of the expected number of other surviving nodes,
    /// `(1 − q)·N − 1`.
    pub ln_expected_peers: f64,
}

impl RoutabilityReport {
    /// Expected reachable component size `E[S]` in linear space (may be
    /// `+∞` for astronomically large systems; use
    /// [`Self::ln_expected_reachable`] in that case).
    #[must_use]
    pub fn expected_reachable(&self) -> f64 {
        self.ln_expected_reachable.exp()
    }
}

/// Computes the routability of `geometry` at system size `size` and failure
/// probability `q` (Eq. 3 of the paper).
///
/// # Errors
///
/// * [`RcmError::InvalidFailureProbability`] unless `q ∈ [0, 1)`.
/// * [`RcmError::DegenerateSystem`] if fewer than two nodes are expected to
///   survive (`(1 − q)·N ≤ 1`), in which case routability is undefined.
/// * [`RcmError::InvalidParameter`] if the geometry produces invalid `Q(m)`
///   values.
///
/// # Example
///
/// ```rust
/// use dht_rcm_core::{routability, HypercubeGeometry, SystemSize};
///
/// let report = routability(&HypercubeGeometry::new(), SystemSize::power_of_two(16)?, 0.3)?;
/// assert!(report.routability > 0.8 && report.routability < 1.0);
/// # Ok::<(), dht_rcm_core::RcmError>(())
/// ```
pub fn routability<G>(geometry: &G, size: SystemSize, q: f64) -> Result<RoutabilityReport, RcmError>
where
    G: RoutingGeometry + ?Sized,
{
    validate_failure_probability(q)?;
    let d = size.bits();
    let ln_survivors = (1.0 - q).ln() + size.ln_nodes();
    // (1 - q)·N must exceed 1 for the pair count among survivors to be positive.
    if ln_survivors <= 0.0 {
        return Err(RcmError::DegenerateSystem { bits: d, q });
    }
    // ln((1 - q)·N − 1) = ln_survivors + ln(1 − exp(−ln_survivors)).
    let ln_peers = ln_survivors + (-(-ln_survivors).exp()).ln_1p();

    let mut numerator = LogSumExp::new();
    for h in 1..=geometry.max_distance(d) {
        let ln_count = geometry.ln_nodes_at_distance(d, h);
        if ln_count == f64::NEG_INFINITY {
            continue;
        }
        let ln_p = ln_success_probability(geometry, d, h, q)?;
        numerator.push(ln_count + ln_p);
    }
    let ln_expected_reachable = numerator.sum();
    let ln_r = ln_expected_reachable - ln_peers;
    // Guard against rounding pushing r marginally above 1 (e.g. at q = 0).
    let routability = ln_r.exp().min(1.0);
    Ok(RoutabilityReport {
        size,
        failure_probability: q,
        routability,
        failed_path_percent: 100.0 * (1.0 - routability),
        ln_expected_reachable,
        ln_expected_peers: ln_peers,
    })
}

/// Convenience wrapper returning only the routability value.
///
/// # Errors
///
/// Same as [`routability`].
pub fn routability_value<G>(geometry: &G, size: SystemSize, q: f64) -> Result<f64, RcmError>
where
    G: RoutingGeometry + ?Sized,
{
    Ok(routability(geometry, size, q)?.routability)
}

/// Convenience wrapper returning the failed-path percentage
/// `100 · (1 − r(N, q))`, the quantity plotted in Fig. 6 and Fig. 7(a).
///
/// # Errors
///
/// Same as [`routability`].
pub fn failed_path_percent<G>(geometry: &G, size: SystemSize, q: f64) -> Result<f64, RcmError>
where
    G: RoutingGeometry + ?Sized,
{
    Ok(routability(geometry, size, q)?.failed_path_percent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::{
        HypercubeGeometry, RingGeometry, SymphonyGeometry, TreeGeometry, XorGeometry,
    };

    fn size(bits: u32) -> SystemSize {
        SystemSize::power_of_two(bits).unwrap()
    }

    #[test]
    fn perfect_network_has_full_routability() {
        let geometries: Vec<Box<dyn RoutingGeometry>> = vec![
            Box::new(TreeGeometry::new()),
            Box::new(HypercubeGeometry::new()),
            Box::new(XorGeometry::new()),
            Box::new(RingGeometry::new()),
            Box::new(SymphonyGeometry::new(1, 1).unwrap()),
        ];
        for geometry in &geometries {
            let report = routability(geometry.as_ref(), size(12), 0.0).unwrap();
            assert!(
                (report.routability - 1.0).abs() < 1e-9,
                "{} should be fully routable at q=0, got {}",
                geometry.name(),
                report.routability
            );
            assert!(report.failed_path_percent.abs() < 1e-6);
        }
    }

    #[test]
    fn routability_lies_in_unit_interval() {
        let geometry = XorGeometry::new();
        for &q in &[0.0, 0.1, 0.5, 0.9, 0.99] {
            let report = routability(&geometry, size(16), q).unwrap();
            assert!((0.0..=1.0).contains(&report.routability), "q={q}");
        }
    }

    #[test]
    fn routability_decreases_with_failure_probability() {
        let geometry = HypercubeGeometry::new();
        let mut previous = 1.1;
        for &q in &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
            let r = routability_value(&geometry, size(16), q).unwrap();
            assert!(r <= previous + 1e-12, "q={q}");
            previous = r;
        }
    }

    #[test]
    fn tree_matches_fully_closed_form() {
        // §4.3.1: r = ((2 − q)^d − 1) / ((1 − q)·2^d − 1).
        let geometry = TreeGeometry::new();
        for &q in &[0.05f64, 0.2, 0.5, 0.8] {
            for &bits in &[8u32, 12, 16] {
                let d = f64::from(bits);
                let expected = ((2.0 - q).powf(d) - 1.0) / ((1.0 - q) * 2f64.powf(d) - 1.0);
                let got = routability_value(&geometry, size(bits), q).unwrap();
                assert!(
                    (got - expected).abs() < 1e-9,
                    "bits={bits} q={q}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn expected_reachable_is_bounded_by_population() {
        let geometry = RingGeometry::new();
        let report = routability(&geometry, size(16), 0.2).unwrap();
        assert!(report.ln_expected_reachable <= size(16).ln_nodes());
        assert!(report.expected_reachable() > 1.0);
        assert!(report.ln_expected_peers < size(16).ln_nodes());
    }

    #[test]
    fn degenerate_systems_are_rejected() {
        let geometry = TreeGeometry::new();
        // (1 - 0.9) * 2^3 = 0.8 < 1 expected survivors.
        assert!(matches!(
            routability(&geometry, size(3), 0.9),
            Err(RcmError::DegenerateSystem { .. })
        ));
    }

    #[test]
    fn q_one_is_rejected() {
        let geometry = TreeGeometry::new();
        assert!(matches!(
            routability(&geometry, size(16), 1.0),
            Err(RcmError::InvalidFailureProbability { .. })
        ));
    }

    #[test]
    fn huge_system_evaluates_without_overflow() {
        // Fig. 7(a) scale: N = 2^100.
        let geometry = XorGeometry::new();
        let report = routability(&geometry, size(100), 0.3).unwrap();
        assert!(report.routability > 0.5 && report.routability < 1.0);
        assert!(report.ln_expected_reachable.is_finite());
    }

    #[test]
    fn failed_path_percent_is_complement() {
        let geometry = RingGeometry::new();
        let report = routability(&geometry, size(16), 0.4).unwrap();
        assert!((report.failed_path_percent - 100.0 * (1.0 - report.routability)).abs() < 1e-9);
        assert!(
            (failed_path_percent(&geometry, size(16), 0.4).unwrap() - report.failed_path_percent)
                .abs()
                < 1e-12
        );
    }
}
