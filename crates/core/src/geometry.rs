//! The [`RoutingGeometry`] abstraction at the heart of the reachable
//! component method.
//!
//! Step 2 and step 3 of RCM (§4.1 of the paper) reduce a DHT routing protocol
//! to two ingredients:
//!
//! 1. the hop/phase distance distribution `n(h)` seen from a root node, and
//! 2. the per-phase failure probability `Q(m)` extracted from the routing
//!    Markov chain.
//!
//! Everything else — `p(h, q)`, the expected reachable component size and the
//! routability — follows mechanically from these two functions, which is what
//! the [`RoutingGeometry`] trait captures.

use crate::error::RcmError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Analytical scalability verdict in the sense of Definition 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalabilityClass {
    /// Routability converges to a positive limit as `N → ∞` for every
    /// `q ∈ (0, 1 − p_c)`.
    Scalable,
    /// Routability converges to zero as `N → ∞` for every positive `q`.
    Unscalable,
}

impl fmt::Display for ScalabilityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalabilityClass::Scalable => write!(f, "scalable"),
            ScalabilityClass::Unscalable => write!(f, "unscalable"),
        }
    }
}

/// System size expressed either as an explicit node count or as identifier
/// bits (`N = 2^d`).
///
/// The paper evaluates its expressions at `N = 2^16` (Fig. 6), at `N = 2^100`
/// (Fig. 7a) and across `N = 10^3 … 10^10` (Fig. 7b). Node counts up to
/// `2^63` fit through [`SystemSize::nodes`]; anything larger must use
/// [`SystemSize::power_of_two`], and all downstream arithmetic stays in log
/// space.
///
/// The paper assumes fully populated identifier spaces, so a node count is
/// rounded up to the next power of two (`d = ⌈log2 N⌉`).
///
/// # Example
///
/// ```rust
/// use dht_rcm_core::SystemSize;
///
/// let n = SystemSize::nodes(1 << 16)?;
/// assert_eq!(n.bits(), 16);
/// let huge = SystemSize::power_of_two(100)?;
/// assert!((huge.ln_nodes() - 100.0 * std::f64::consts::LN_2).abs() < 1e-12);
/// # Ok::<(), dht_rcm_core::RcmError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemSize {
    bits: u32,
}

impl SystemSize {
    /// Largest supported identifier length. `2^4096` nodes is far beyond any
    /// physically meaningful system; the cap merely keeps sweeps finite.
    pub const MAX_BITS: u32 = 4096;

    /// Creates a size from an explicit node count, rounding up to the next
    /// power of two (`d = ⌈log2 N⌉`).
    ///
    /// # Errors
    ///
    /// Returns [`RcmError::InvalidSystemSize`] if `nodes < 2`.
    pub fn nodes(nodes: u64) -> Result<Self, RcmError> {
        if nodes < 2 {
            return Err(RcmError::InvalidSystemSize {
                message: format!("a DHT needs at least two nodes, got {nodes}"),
            });
        }
        let bits = 64 - (nodes - 1).leading_zeros();
        Ok(SystemSize { bits })
    }

    /// Creates a size of exactly `2^bits` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`RcmError::InvalidSystemSize`] if `bits` is zero or exceeds
    /// [`SystemSize::MAX_BITS`].
    pub fn power_of_two(bits: u32) -> Result<Self, RcmError> {
        if bits == 0 || bits > Self::MAX_BITS {
            return Err(RcmError::InvalidSystemSize {
                message: format!(
                    "identifier length must be in 1..={}, got {bits}",
                    Self::MAX_BITS
                ),
            });
        }
        Ok(SystemSize { bits })
    }

    /// Identifier length `d` in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Natural logarithm of the node count, `d · ln 2`.
    #[must_use]
    pub fn ln_nodes(self) -> f64 {
        f64::from(self.bits) * std::f64::consts::LN_2
    }

    /// The node count as an `f64` (may be `inf` for very large sizes, which is
    /// fine for display purposes only — computations use [`Self::ln_nodes`]).
    #[must_use]
    pub fn nodes_f64(self) -> f64 {
        self.ln_nodes().exp()
    }

    /// The exact node count if it fits into a `u64`.
    #[must_use]
    pub fn nodes_exact(self) -> Option<u64> {
        if self.bits < 64 {
            Some(1u64 << self.bits)
        } else {
            None
        }
    }
}

impl fmt::Display for SystemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2^{} nodes", self.bits)
    }
}

/// A DHT routing geometry as seen by the reachable component method.
///
/// Implementors provide the two paper ingredients — the distance distribution
/// `n(h)` (in log space) and the per-phase failure probability `Q(m)` — plus
/// the analytically derived scalability verdict of §5. The framework functions
/// in [`crate::phase`] and [`crate::routability()`] consume any implementor,
/// including user-defined geometries outside this crate.
pub trait RoutingGeometry {
    /// Short human-readable name, e.g. `"xor"` or `"hypercube"`.
    fn name(&self) -> &'static str;

    /// The DHT system the geometry models, e.g. `"Kademlia"`.
    fn system(&self) -> &'static str;

    /// Maximum routing distance (in hops or phases) in a `d`-bit system.
    ///
    /// All five paper geometries route in at most `d` phases.
    fn max_distance(&self, d: u32) -> u32 {
        d
    }

    /// Natural logarithm of the number of nodes at distance `h` from a root
    /// node in a fully populated `d`-bit system, `ln n(h)`.
    ///
    /// Must satisfy `Σ_{h=1}^{max_distance} n(h) = 2^d − 1`.
    fn ln_nodes_at_distance(&self, d: u32, h: u32) -> f64;

    /// Per-phase failure probability `Q(m)` when `m` phases remain, under node
    /// failure probability `q`, in a `d`-bit system.
    ///
    /// `d` is required because the Symphony expression (Eq. 7) depends on the
    /// identifier length; the other geometries ignore it.
    fn phase_failure_probability(&self, m: u32, q: f64, d: u32) -> f64;

    /// The paper's analytical scalability verdict for this geometry (§5).
    fn analytic_scalability(&self) -> ScalabilityClass;
}

/// Validates a failure probability for routability computations.
///
/// # Errors
///
/// Returns [`RcmError::InvalidFailureProbability`] unless `q ∈ [0, 1)`.
pub fn validate_failure_probability(q: f64) -> Result<(), RcmError> {
    if !(0.0..1.0).contains(&q) || q.is_nan() {
        return Err(RcmError::InvalidFailureProbability { q });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_size_from_nodes_rounds_up() {
        assert_eq!(SystemSize::nodes(2).unwrap().bits(), 1);
        assert_eq!(SystemSize::nodes(1 << 16).unwrap().bits(), 16);
        assert_eq!(SystemSize::nodes((1 << 16) + 1).unwrap().bits(), 17);
        assert!(SystemSize::nodes(1).is_err());
        assert!(SystemSize::nodes(0).is_err());
    }

    #[test]
    fn power_of_two_bounds() {
        assert!(SystemSize::power_of_two(0).is_err());
        assert!(SystemSize::power_of_two(SystemSize::MAX_BITS + 1).is_err());
        assert_eq!(SystemSize::power_of_two(100).unwrap().bits(), 100);
    }

    #[test]
    fn ln_nodes_matches_bits() {
        let size = SystemSize::power_of_two(16).unwrap();
        assert!((size.ln_nodes() - (65536f64).ln()).abs() < 1e-12);
        assert_eq!(size.nodes_exact(), Some(65536));
        assert!((size.nodes_f64() - 65536.0).abs() < 1e-6);
    }

    #[test]
    fn huge_sizes_have_no_exact_count() {
        let size = SystemSize::power_of_two(100).unwrap();
        assert_eq!(size.nodes_exact(), None);
        assert!(size.nodes_f64().is_finite());
        let colossal = SystemSize::power_of_two(2000).unwrap();
        assert!(colossal.nodes_f64().is_infinite());
        assert!(colossal.ln_nodes().is_finite());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            SystemSize::power_of_two(16).unwrap().to_string(),
            "2^16 nodes"
        );
        assert_eq!(ScalabilityClass::Scalable.to_string(), "scalable");
        assert_eq!(ScalabilityClass::Unscalable.to_string(), "unscalable");
    }

    #[test]
    fn failure_probability_validation() {
        assert!(validate_failure_probability(0.0).is_ok());
        assert!(validate_failure_probability(0.999).is_ok());
        assert!(validate_failure_probability(1.0).is_err());
        assert!(validate_failure_probability(-0.1).is_err());
        assert!(validate_failure_probability(f64::NAN).is_err());
    }
}
