//! Parameter sweeps for the asymptotic figures of the paper.
//!
//! Fig. 7(a) evaluates the analytical routability expressions at `N = 2^100`
//! across the failure-probability axis; Fig. 7(b) fixes `q = 0.1` and sweeps
//! the system size from thousands to billions of nodes. Both sweeps are thin
//! wrappers around [`crate::routability()`] that return tabular data ready for
//! the experiment harnesses and benches.

use crate::error::RcmError;
use crate::geometry::{RoutingGeometry, SystemSize};
use crate::routability::{routability, RoutabilityReport};
use serde::{Deserialize, Serialize};

/// One point of a failure-probability sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureSweepPoint {
    /// Failure probability of this point.
    pub failure_probability: f64,
    /// Full routability report at this point.
    pub report: RoutabilityReport,
}

/// One point of a system-size sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeSweepPoint {
    /// System size of this point.
    pub size: SystemSize,
    /// Full routability report at this point.
    pub report: RoutabilityReport,
}

/// Sweeps the failure probability at a fixed system size (the x-axis of
/// Fig. 6 and Fig. 7a).
///
/// Grid points at which the system degenerates (fewer than two expected
/// survivors) are skipped rather than reported as errors, mirroring how the
/// paper's plots simply end where the expression stops being meaningful.
///
/// # Errors
///
/// Returns the first non-degeneracy error encountered (invalid geometry
/// parameters).
///
/// # Example
///
/// ```rust
/// use dht_rcm_core::asymptotic::sweep_failure_probability;
/// use dht_rcm_core::{SystemSize, XorGeometry};
///
/// let grid = [0.0, 0.1, 0.2, 0.3];
/// let points = sweep_failure_probability(&XorGeometry::new(), SystemSize::power_of_two(16)?, &grid)?;
/// assert_eq!(points.len(), 4);
/// assert!(points.windows(2).all(|w| w[1].report.routability <= w[0].report.routability));
/// # Ok::<(), dht_rcm_core::RcmError>(())
/// ```
pub fn sweep_failure_probability<G>(
    geometry: &G,
    size: SystemSize,
    grid: &[f64],
) -> Result<Vec<FailureSweepPoint>, RcmError>
where
    G: RoutingGeometry + ?Sized,
{
    let mut points = Vec::with_capacity(grid.len());
    for &q in grid {
        match routability(geometry, size, q) {
            Ok(report) => points.push(FailureSweepPoint {
                failure_probability: q,
                report,
            }),
            Err(RcmError::DegenerateSystem { .. }) => continue,
            Err(other) => return Err(other),
        }
    }
    Ok(points)
}

/// Sweeps the system size at a fixed failure probability (the x-axis of
/// Fig. 7b).
///
/// # Errors
///
/// Same policy as [`sweep_failure_probability`].
///
/// # Example
///
/// ```rust
/// use dht_rcm_core::asymptotic::sweep_system_size;
/// use dht_rcm_core::{SymphonyGeometry, SystemSize};
///
/// let sizes: Vec<SystemSize> = (10..=30)
///     .step_by(4)
///     .map(SystemSize::power_of_two)
///     .collect::<Result<_, _>>()?;
/// let points = sweep_system_size(&SymphonyGeometry::new(1, 1)?, 0.1, &sizes)?;
/// // Fig. 7(b): Symphony's routability decays monotonically with N.
/// assert!(points.windows(2).all(|w| w[1].report.routability <= w[0].report.routability + 1e-12));
/// # Ok::<(), dht_rcm_core::RcmError>(())
/// ```
pub fn sweep_system_size<G>(
    geometry: &G,
    q: f64,
    sizes: &[SystemSize],
) -> Result<Vec<SizeSweepPoint>, RcmError>
where
    G: RoutingGeometry + ?Sized,
{
    let mut points = Vec::with_capacity(sizes.len());
    for &size in sizes {
        match routability(geometry, size, q) {
            Ok(report) => points.push(SizeSweepPoint { size, report }),
            Err(RcmError::DegenerateSystem { .. }) => continue,
            Err(other) => return Err(other),
        }
    }
    Ok(points)
}

/// Numerically probes the large-`N` limit of routability at failure
/// probability `q` by evaluating it at successively larger identifier lengths
/// and reporting the final value.
///
/// This is the quantity Definition 2 is about; scalable geometries plateau at
/// a positive value while unscalable ones head to zero.
///
/// # Errors
///
/// Same policy as [`sweep_failure_probability`]; if every probed size is
/// degenerate an [`RcmError::DegenerateSystem`] is returned.
pub fn limiting_routability<G>(geometry: &G, q: f64, max_bits: u32) -> Result<f64, RcmError>
where
    G: RoutingGeometry + ?Sized,
{
    let mut bits = 8u32;
    let mut last: Option<f64> = None;
    while bits <= max_bits.min(SystemSize::MAX_BITS) {
        match routability(geometry, SystemSize::power_of_two(bits)?, q) {
            Ok(report) => last = Some(report.routability),
            Err(RcmError::DegenerateSystem { .. }) => {}
            Err(other) => return Err(other),
        }
        bits = bits.saturating_mul(2);
    }
    last.ok_or(RcmError::DegenerateSystem { bits: max_bits, q })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::{
        HypercubeGeometry, RingGeometry, SymphonyGeometry, TreeGeometry, XorGeometry,
    };

    #[test]
    fn figure_7a_ordering_at_asymptotic_scale() {
        // At N = 2^100 and q = 30%, the scalable geometries keep most paths
        // alive while tree and Symphony lose essentially all of them.
        let size = SystemSize::power_of_two(100).unwrap();
        let q = 0.3;
        let cube = routability(&HypercubeGeometry::new(), size, q).unwrap();
        let xor = routability(&XorGeometry::new(), size, q).unwrap();
        let ring = routability(&RingGeometry::new(), size, q).unwrap();
        let tree = routability(&TreeGeometry::new(), size, q).unwrap();
        let symphony = routability(&SymphonyGeometry::new(1, 1).unwrap(), size, q).unwrap();
        assert!(cube.failed_path_percent < 50.0);
        assert!(xor.failed_path_percent < 50.0);
        assert!(ring.failed_path_percent < 50.0);
        assert!(tree.failed_path_percent > 99.9);
        assert!(symphony.failed_path_percent > 99.9);
    }

    #[test]
    fn figure_7b_monotone_decay_for_unscalable_geometries() {
        let sizes: Vec<SystemSize> = (10..=34)
            .step_by(4)
            .map(|b| SystemSize::power_of_two(b).unwrap())
            .collect();
        for geometry in [
            Box::new(TreeGeometry::new()) as Box<dyn RoutingGeometry>,
            Box::new(SymphonyGeometry::new(1, 1).unwrap()),
        ] {
            let points = sweep_system_size(geometry.as_ref(), 0.1, &sizes).unwrap();
            assert_eq!(points.len(), sizes.len());
            assert!(
                points
                    .windows(2)
                    .all(|w| w[1].report.routability <= w[0].report.routability + 1e-12),
                "{} should decay monotonically",
                geometry.name()
            );
            let first = points.first().unwrap().report.routability;
            let last = points.last().unwrap().report.routability;
            assert!(last < first * 0.5, "{}: {first} -> {last}", geometry.name());
        }
    }

    #[test]
    fn figure_7b_flat_curves_for_scalable_geometries() {
        let sizes: Vec<SystemSize> = (16..=34)
            .step_by(6)
            .map(|b| SystemSize::power_of_two(b).unwrap())
            .collect();
        for geometry in [
            Box::new(HypercubeGeometry::new()) as Box<dyn RoutingGeometry>,
            Box::new(XorGeometry::new()),
            Box::new(RingGeometry::new()),
        ] {
            let points = sweep_system_size(geometry.as_ref(), 0.1, &sizes).unwrap();
            let first = points.first().unwrap().report.routability;
            let last = points.last().unwrap().report.routability;
            assert!(
                (first - last).abs() < 0.02,
                "{}: routability moved from {first} to {last}",
                geometry.name()
            );
            assert!(last > 0.9, "{} stays highly routable", geometry.name());
        }
    }

    #[test]
    fn failure_sweep_skips_degenerate_points() {
        // At d = 4 the expected survivor count drops below one past q ≈ 0.94.
        let grid = [0.0, 0.5, 0.95, 0.99];
        let points = sweep_failure_probability(
            &TreeGeometry::new(),
            SystemSize::power_of_two(4).unwrap(),
            &grid,
        )
        .unwrap();
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn limiting_routability_separates_the_two_classes() {
        let q = 0.1;
        let xor_limit = limiting_routability(&XorGeometry::new(), q, 1024).unwrap();
        let tree_limit = limiting_routability(&TreeGeometry::new(), q, 1024).unwrap();
        assert!(xor_limit > 0.9);
        assert!(tree_limit < 1e-6);
    }
}
