//! Numerically stable log-sum-exp reduction.
//!
//! The routability formula (Eq. 3 of the paper) sums `n(h)·p(h,q)` over up to
//! `d = 100` hop classes whose magnitudes span hundreds of orders of
//! magnitude. [`LogSumExp`] accumulates such terms given only their logarithms.

/// Streaming log-sum-exp accumulator.
///
/// Terms are pushed as natural logarithms; [`LogSumExp::sum`] returns the
/// natural logarithm of the sum of the corresponding linear-space values.
///
/// Internally the accumulator tracks the running maximum and rescales the
/// partial sum whenever a new maximum arrives, so the reduction is stable for
/// any input ordering.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::LogSumExp;
///
/// let mut acc = LogSumExp::new();
/// for x in [0.25f64, 0.5, 0.125] {
///     acc.push(x.ln());
/// }
/// assert!((acc.sum().exp() - 0.875).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogSumExp {
    max: f64,
    scaled_sum: f64,
    count: usize,
}

impl LogSumExp {
    /// Creates an empty accumulator. The sum of no terms is `ln 0 = -∞`.
    #[must_use]
    pub fn new() -> Self {
        LogSumExp {
            max: f64::NEG_INFINITY,
            scaled_sum: 0.0,
            count: 0,
        }
    }

    /// Adds a term given as its natural logarithm.
    ///
    /// `-∞` terms (linear value zero) are accepted and ignored.
    ///
    /// # Panics
    ///
    /// Panics if `ln_term` is NaN.
    pub fn push(&mut self, ln_term: f64) {
        assert!(!ln_term.is_nan(), "LogSumExp: NaN term");
        self.count += 1;
        if ln_term == f64::NEG_INFINITY {
            return;
        }
        if ln_term <= self.max {
            self.scaled_sum += (ln_term - self.max).exp();
        } else {
            // New maximum: rescale the existing partial sum.
            self.scaled_sum = if self.max == f64::NEG_INFINITY {
                1.0
            } else {
                self.scaled_sum * (self.max - ln_term).exp() + 1.0
            };
            self.max = ln_term;
        }
    }

    /// Number of terms pushed so far (including zero terms).
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if no terms have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Returns the natural logarithm of the accumulated sum.
    #[must_use]
    pub fn sum(&self) -> f64 {
        if self.max == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            self.max + self.scaled_sum.ln()
        }
    }
}

impl Extend<f64> for LogSumExp {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for term in iter {
            self.push(term);
        }
    }
}

impl FromIterator<f64> for LogSumExp {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = LogSumExp::new();
        acc.extend(iter);
        acc
    }
}

/// Computes `ln Σ exp(xᵢ)` over a slice of log-space terms.
///
/// Convenience wrapper around [`LogSumExp`] for non-streaming call sites.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::log_sum_exp;
///
/// let terms = [(-1000.0f64), -1000.0, -1000.0];
/// let s = log_sum_exp(&terms);
/// assert!((s - (-1000.0 + 3f64.ln())).abs() < 1e-12);
/// ```
#[must_use]
pub fn log_sum_exp(terms: &[f64]) -> f64 {
    terms.iter().copied().collect::<LogSumExp>().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero_probability() {
        assert_eq!(LogSumExp::new().sum(), f64::NEG_INFINITY);
        assert!(LogSumExp::new().is_empty());
    }

    #[test]
    fn matches_linear_sum_for_moderate_terms() {
        let values = [0.1f64, 0.2, 0.3, 0.05];
        let logs: Vec<f64> = values.iter().map(|v| v.ln()).collect();
        let expected: f64 = values.iter().sum();
        assert!((log_sum_exp(&logs).exp() - expected).abs() < 1e-12);
    }

    #[test]
    fn stable_for_huge_magnitudes() {
        // Terms around e^800 would overflow linear f64 arithmetic.
        let logs = [800.0f64, 800.0 + (2f64).ln()];
        let s = log_sum_exp(&logs);
        assert!((s - (800.0 + (3f64).ln())).abs() < 1e-10);
    }

    #[test]
    fn stable_for_tiny_magnitudes() {
        let logs = [-5000.0f64, -5000.0, -5000.0, -5000.0];
        let s = log_sum_exp(&logs);
        assert!((s - (-5000.0 + (4f64).ln())).abs() < 1e-10);
    }

    #[test]
    fn ignores_zero_terms() {
        let logs = [f64::NEG_INFINITY, (0.5f64).ln(), f64::NEG_INFINITY];
        assert!((log_sum_exp(&logs).exp() - 0.5).abs() < 1e-14);
    }

    #[test]
    fn order_independent() {
        let mut logs: Vec<f64> = (1..=50).map(|k| -(f64::from(k) * 13.7)).collect();
        let forward = log_sum_exp(&logs);
        logs.reverse();
        let backward = log_sum_exp(&logs);
        assert!((forward - backward).abs() < 1e-12);
    }

    #[test]
    fn extend_and_from_iterator_agree() {
        let logs = [-3.0f64, -2.0, -1.0];
        let from_iter: LogSumExp = logs.iter().copied().collect();
        let mut extended = LogSumExp::new();
        extended.extend(logs.iter().copied());
        assert!((from_iter.sum() - extended.sum()).abs() < 1e-15);
        assert_eq!(from_iter.len(), 3);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let mut acc = LogSumExp::new();
        acc.push(f64::NAN);
    }
}
