//! Compensated (Kahan–Neumaier) summation.
//!
//! Monte-Carlo estimates in the simulation harness accumulate millions of
//! small increments; compensated summation keeps the rounding error bounded
//! independently of the number of terms.

use serde::{Deserialize, Serialize};

/// Neumaier-compensated floating-point accumulator.
///
/// Compared to plain Kahan summation, the Neumaier variant also handles the
/// case where an incoming term is larger in magnitude than the running sum.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::KahanSum;
///
/// let mut acc = KahanSum::new();
/// for _ in 0..1_000_000 {
///     acc.add(0.1);
/// }
/// assert!((acc.sum() - 100_000.0).abs() < 1e-7);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates an accumulator starting at zero.
    #[must_use]
    pub fn new() -> Self {
        KahanSum::default()
    }

    /// Creates an accumulator starting at `initial`.
    #[must_use]
    pub fn with_initial(initial: f64) -> Self {
        KahanSum {
            sum: initial,
            compensation: 0.0,
        }
    }

    /// Adds a term.
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// Returns the compensated sum.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl Extend<f64> for KahanSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for value in iter {
            self.add(value);
        }
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = KahanSum::new();
        acc.extend(iter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().sum(), 0.0);
    }

    #[test]
    fn matches_exact_sum_of_integers() {
        let acc: KahanSum = (1..=1000).map(f64::from).collect();
        assert_eq!(acc.sum(), 500_500.0);
    }

    #[test]
    fn more_accurate_than_naive_sum() {
        let n = 10_000_000usize;
        let term = 0.1f64;
        let mut naive = 0.0f64;
        let mut kahan = KahanSum::new();
        for _ in 0..n {
            naive += term;
            kahan.add(term);
        }
        let exact = term * n as f64;
        assert!((kahan.sum() - exact).abs() <= (naive - exact).abs());
        assert!((kahan.sum() - exact).abs() < 1e-5);
    }

    #[test]
    fn handles_term_larger_than_running_sum() {
        let mut acc = KahanSum::new();
        acc.add(1.0);
        acc.add(1e100);
        acc.add(1.0);
        acc.add(-1e100);
        assert_eq!(acc.sum(), 2.0);
    }

    #[test]
    fn with_initial_offsets_the_sum() {
        let mut acc = KahanSum::with_initial(10.0);
        acc.add(2.5);
        assert_eq!(acc.sum(), 12.5);
    }
}
