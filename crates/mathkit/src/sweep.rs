//! Parameter-grid helpers for the experiment harnesses.
//!
//! Every figure in the paper is a sweep over either the failure probability
//! `q` (Fig. 6, 7a) or the system size `N` (Fig. 7b). These helpers build the
//! grids used by the `dht-experiments` crate and the benches.

/// Returns `count` evenly spaced values covering `[start, end]` inclusive.
///
/// # Panics
///
/// Panics if `count < 2` or either bound is not finite.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::linspace;
///
/// assert_eq!(linspace(0.0, 1.0, 5), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
#[must_use]
pub fn linspace(start: f64, end: f64, count: usize) -> Vec<f64> {
    assert!(count >= 2, "linspace requires at least two points");
    assert!(
        start.is_finite() && end.is_finite(),
        "linspace bounds must be finite"
    );
    let step = (end - start) / (count - 1) as f64;
    (0..count)
        .map(|i| {
            if i == count - 1 {
                end
            } else {
                start + step * i as f64
            }
        })
        .collect()
}

/// Returns `count` geometrically spaced values covering `[start, end]`
/// inclusive.
///
/// # Panics
///
/// Panics if `count < 2`, if either bound is non-positive, or if either bound
/// is not finite.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::geomspace;
///
/// let grid = geomspace(1e3, 1e6, 4);
/// assert!((grid[1] - 1e4).abs() / 1e4 < 1e-12);
/// assert_eq!(grid.len(), 4);
/// ```
#[must_use]
pub fn geomspace(start: f64, end: f64, count: usize) -> Vec<f64> {
    assert!(count >= 2, "geomspace requires at least two points");
    assert!(
        start > 0.0 && end > 0.0 && start.is_finite() && end.is_finite(),
        "geomspace bounds must be positive and finite"
    );
    let ln_start = start.ln();
    let ln_step = (end.ln() - ln_start) / (count - 1) as f64;
    (0..count)
        .map(|i| {
            if i == count - 1 {
                end
            } else {
                (ln_start + ln_step * i as f64).exp()
            }
        })
        .collect()
}

/// The failure-probability grid used throughout the paper's figures:
/// `0%, step%, 2·step%, …, max%`, returned as probabilities in `[0, 1)`.
///
/// Fig. 6 and 7(a) plot q from 0 to 90% in 5–10% increments; the default call
/// `percent_grid(90, 5)` reproduces that x-axis.
///
/// # Panics
///
/// Panics if `step_percent == 0` or `max_percent >= 100`.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::percent_grid;
///
/// let grid = percent_grid(90, 10);
/// assert_eq!(grid.len(), 10);
/// assert_eq!(grid[0], 0.0);
/// assert!((grid[9] - 0.9).abs() < 1e-12);
/// ```
#[must_use]
pub fn percent_grid(max_percent: u32, step_percent: u32) -> Vec<f64> {
    assert!(step_percent > 0, "step must be positive");
    assert!(
        max_percent < 100,
        "failure probability must stay below 100%"
    );
    (0..=max_percent)
        .step_by(step_percent as usize)
        .map(|p| f64::from(p) / 100.0)
        .collect()
}

/// Powers of two `2^lo ..= 2^hi` as `u64` system sizes (Fig. 7b x-axis).
///
/// # Panics
///
/// Panics if `lo > hi` or `hi >= 64`.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::sweep::power_of_two_sizes;
///
/// assert_eq!(power_of_two_sizes(3, 5), vec![8, 16, 32]);
/// ```
#[must_use]
pub fn power_of_two_sizes(lo: u32, hi: u32) -> Vec<u64> {
    assert!(lo <= hi, "lo must not exceed hi");
    assert!(hi < 64, "2^hi must fit in u64");
    (lo..=hi).map(|b| 1u64 << b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_are_exact() {
        let grid = linspace(0.1, 0.9, 17);
        assert_eq!(grid.first().copied(), Some(0.1));
        assert_eq!(grid.last().copied(), Some(0.9));
        assert_eq!(grid.len(), 17);
        // Monotone increasing.
        assert!(grid.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn linspace_descending_works() {
        let grid = linspace(1.0, 0.0, 3);
        assert_eq!(grid, vec![1.0, 0.5, 0.0]);
    }

    #[test]
    fn geomspace_ratio_is_constant() {
        let grid = geomspace(2.0, 2048.0, 11);
        for w in grid.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn percent_grid_matches_paper_axis() {
        let grid = percent_grid(90, 5);
        assert_eq!(grid.len(), 19);
        assert_eq!(grid[0], 0.0);
        assert!((grid[18] - 0.9).abs() < 1e-12);
        assert!(grid.iter().all(|&q| (0.0..1.0).contains(&q)));
    }

    #[test]
    fn power_of_two_sizes_covers_paper_range() {
        let sizes = power_of_two_sizes(10, 16);
        assert_eq!(sizes.first().copied(), Some(1024));
        assert_eq!(sizes.last().copied(), Some(65536));
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn linspace_rejects_single_point() {
        let _ = linspace(0.0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "below 100%")]
    fn percent_grid_rejects_certain_failure() {
        let _ = percent_grid(100, 5);
    }
}
