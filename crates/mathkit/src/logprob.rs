//! Probabilities carried in log space.
//!
//! A [`LogProb`] stores `ln p` for a probability `p ∈ [0, 1]`. The type keeps
//! the analytical expressions of the RCM paper numerically stable when `p` is
//! astronomically small (e.g. the probability of surviving a `2^100`-hop walk)
//! or extremely close to one (e.g. `1 - q^m` for large `m`).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign};

/// A probability stored as its natural logarithm.
///
/// The representation covers the closed interval `[0, 1]`: probability zero is
/// stored as `-∞` and probability one as `0.0`. Values are validated at
/// construction; see [`LogProb::from_linear`] and [`LogProb::from_ln`].
///
/// Multiplication of probabilities maps to addition in log space and is exact
/// up to rounding; addition of probabilities uses log-sum-exp.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::LogProb;
///
/// let q = LogProb::from_linear(0.2);
/// let success_three_hops = (q.complement()).powi(3);
/// assert!((success_three_hops.to_linear() - 0.512).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct LogProb(f64);

impl LogProb {
    /// Probability one (`ln 1 = 0`).
    pub const ONE: LogProb = LogProb(0.0);
    /// Probability zero (`ln 0 = -∞`).
    pub const ZERO: LogProb = LogProb(f64::NEG_INFINITY);

    /// Creates a log-probability from a linear-space probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN, negative, or greater than `1 + 1e-12`. Values in
    /// `(1, 1 + 1e-12]` are clamped to one to absorb harmless rounding noise
    /// from upstream arithmetic.
    #[must_use]
    pub fn from_linear(p: f64) -> Self {
        assert!(!p.is_nan(), "probability must not be NaN");
        assert!(p >= 0.0, "probability must be non-negative, got {p}");
        assert!(p <= 1.0 + 1e-12, "probability must be at most 1, got {p}");
        LogProb(p.min(1.0).ln())
    }

    /// Creates a log-probability directly from `ln p`.
    ///
    /// # Panics
    ///
    /// Panics if `ln_p` is NaN or positive beyond `1e-12` (which would denote a
    /// probability greater than one). Small positive rounding noise is clamped.
    #[must_use]
    pub fn from_ln(ln_p: f64) -> Self {
        assert!(!ln_p.is_nan(), "log-probability must not be NaN");
        assert!(
            ln_p <= 1e-12,
            "log-probability must be at most 0 (probability at most 1), got {ln_p}"
        );
        LogProb(ln_p.min(0.0))
    }

    /// Returns `ln p`.
    #[must_use]
    pub fn ln(self) -> f64 {
        self.0
    }

    /// Returns the linear-space probability `p = exp(ln p)`.
    ///
    /// Underflows gracefully to `0.0` when `ln p` is very negative.
    #[must_use]
    pub fn to_linear(self) -> f64 {
        self.0.exp()
    }

    /// Returns `ln(1 - p)` computed stably.
    ///
    /// Uses `ln1p(-exp(ln p))` when `p` is small and `ln(-expm1(ln p))` when
    /// `p` is close to one, which keeps full precision at both ends of the
    /// interval. This is the workhorse behind every `∏ (1 - Q(m))` product in
    /// the paper.
    #[must_use]
    pub fn ln_one_minus(self) -> f64 {
        ln_one_minus_exp(self.0)
    }

    /// Returns the complement probability `1 - p` as a [`LogProb`].
    #[must_use]
    pub fn complement(self) -> LogProb {
        LogProb(self.ln_one_minus())
    }

    /// Returns `p^k` (k-fold product with itself).
    #[must_use]
    pub fn powi(self, k: u32) -> LogProb {
        if k == 0 {
            LogProb::ONE
        } else {
            LogProb(self.0 * f64::from(k))
        }
    }

    /// Returns `p^k` for an arbitrary non-negative real exponent.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative or NaN.
    #[must_use]
    pub fn powf(self, k: f64) -> LogProb {
        assert!(k >= 0.0 && !k.is_nan(), "exponent must be non-negative");
        if k == 0.0 {
            LogProb::ONE
        } else {
            LogProb(self.0 * k)
        }
    }

    /// Returns `true` if the probability is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == f64::NEG_INFINITY
    }

    /// Returns `true` if the probability is exactly one.
    #[must_use]
    pub fn is_one(self) -> bool {
        self.0 == 0.0
    }

    /// Adds two probabilities in log space (`ln(p_a + p_b)`).
    ///
    /// The result is clamped to probability one so that accumulating terms that
    /// analytically sum to one does not escape the valid range through
    /// floating-point drift.
    #[must_use]
    pub fn add_prob(self, other: LogProb) -> LogProb {
        LogProb(log_add_exp(self.0, other.0).min(0.0))
    }
}

impl Default for LogProb {
    fn default() -> Self {
        LogProb::ZERO
    }
}

impl Eq for LogProb {}

impl PartialOrd for LogProb {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LogProb {
    fn cmp(&self, other: &Self) -> Ordering {
        // Valid LogProb values are never NaN, so total order is well defined.
        self.0.partial_cmp(&other.0).expect("LogProb is never NaN")
    }
}

impl fmt::Display for LogProb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_linear())
    }
}

impl Mul for LogProb {
    type Output = LogProb;

    // Multiplying probabilities adds their logarithms.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn mul(self, rhs: LogProb) -> LogProb {
        // -inf + 0.0 is -inf, so zero * one stays zero as required.
        LogProb(self.0 + rhs.0)
    }
}

impl MulAssign for LogProb {
    // Multiplying probabilities adds their logarithms.
    #[allow(clippy::suspicious_op_assign_impl)]
    fn mul_assign(&mut self, rhs: LogProb) {
        self.0 += rhs.0;
    }
}

impl Add for LogProb {
    type Output = LogProb;

    fn add(self, rhs: LogProb) -> LogProb {
        self.add_prob(rhs)
    }
}

impl AddAssign for LogProb {
    fn add_assign(&mut self, rhs: LogProb) {
        *self = self.add_prob(rhs);
    }
}

impl From<LogProb> for f64 {
    fn from(value: LogProb) -> f64 {
        value.to_linear()
    }
}

/// Computes `ln(1 - exp(x))` for `x <= 0` without catastrophic cancellation.
///
/// Follows the classic two-branch scheme of Mächler: for `x < -ln 2` the value
/// `exp(x)` is small enough that `ln1p(-exp(x))` is accurate; otherwise
/// `-expm1(x)` retains precision.
///
/// Returns `-∞` for `x == 0` (probability one has complement zero).
///
/// # Panics
///
/// Panics if `x` is positive or NaN.
#[must_use]
pub fn ln_one_minus_exp(x: f64) -> f64 {
    assert!(!x.is_nan(), "ln_one_minus_exp: NaN input");
    assert!(x <= 0.0, "ln_one_minus_exp requires x <= 0, got {x}");
    if x == 0.0 {
        f64::NEG_INFINITY
    } else if x < -std::f64::consts::LN_2 {
        (-x.exp()).ln_1p()
    } else {
        (-x.exp_m1()).ln()
    }
}

/// Computes `ln(exp(a) + exp(b))` stably.
#[must_use]
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_linear_round_trip() {
        for &p in &[0.0, 1e-300, 1e-12, 0.25, 0.5, 0.999, 1.0] {
            let lp = LogProb::from_linear(p);
            assert!((lp.to_linear() - p).abs() <= 1e-15 * p.max(1.0));
        }
    }

    #[test]
    fn clamps_tiny_overshoot() {
        let lp = LogProb::from_linear(1.0 + 1e-13);
        assert!(lp.is_one());
    }

    #[test]
    #[should_panic(expected = "at most 1")]
    fn rejects_probability_above_one() {
        let _ = LogProb::from_linear(1.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_probability() {
        let _ = LogProb::from_linear(-0.1);
    }

    #[test]
    fn complement_is_accurate_near_one() {
        // 1 - (1 - 1e-18) would be 0 in linear arithmetic; log space keeps it.
        let p = LogProb::from_ln(-1e-18);
        let c = p.complement();
        assert!((c.ln() - (-1e-18f64).ln_1p().ln()).abs() < 1e-6 || c.ln() < -40.0);
        assert!(c.to_linear() > 0.0 && c.to_linear() < 1e-17);
    }

    #[test]
    fn complement_is_accurate_near_zero() {
        let p = LogProb::from_linear(1e-300);
        let c = p.complement();
        assert!(c.to_linear() <= 1.0 && c.to_linear() > 1.0 - 1e-12);
    }

    #[test]
    fn multiplication_matches_linear() {
        let a = LogProb::from_linear(0.3);
        let b = LogProb::from_linear(0.4);
        assert!(((a * b).to_linear() - 0.12).abs() < 1e-14);
    }

    #[test]
    fn addition_matches_linear() {
        let a = LogProb::from_linear(0.3);
        let b = LogProb::from_linear(0.4);
        assert!(((a + b).to_linear() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn addition_clamps_to_one() {
        let a = LogProb::from_linear(0.6);
        let b = LogProb::from_linear(0.5);
        assert!((a + b).is_one());
    }

    #[test]
    fn zero_and_one_identities() {
        let p = LogProb::from_linear(0.37);
        assert_eq!(p * LogProb::ONE, p);
        assert!((p * LogProb::ZERO).is_zero());
        assert_eq!(p + LogProb::ZERO, p);
        assert!(LogProb::ZERO.is_zero());
        assert!(LogProb::ONE.is_one());
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let p = LogProb::from_linear(0.85);
        let mut acc = LogProb::ONE;
        for _ in 0..7 {
            acc *= p;
        }
        assert!((p.powi(7).ln() - acc.ln()).abs() < 1e-12);
        assert!(p.powi(0).is_one());
    }

    #[test]
    fn ordering_follows_probability() {
        let small = LogProb::from_linear(0.1);
        let large = LogProb::from_linear(0.9);
        assert!(small < large);
        assert!(LogProb::ZERO < small);
        assert!(large < LogProb::ONE);
    }

    #[test]
    fn log_add_exp_handles_neg_infinity() {
        assert_eq!(log_add_exp(f64::NEG_INFINITY, -1.0), -1.0);
        assert_eq!(log_add_exp(-1.0, f64::NEG_INFINITY), -1.0);
        assert_eq!(
            log_add_exp(f64::NEG_INFINITY, f64::NEG_INFINITY),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn ln_one_minus_exp_branches_agree_at_crossover() {
        let x = -std::f64::consts::LN_2;
        let left = (-(x - 1e-9f64).exp()).ln_1p();
        let right = (-(x + 1e-9f64).exp_m1()).ln();
        assert!((left - right).abs() < 1e-6);
    }

    #[test]
    fn display_prints_linear_probability() {
        assert_eq!(format!("{}", LogProb::from_linear(0.5)), "0.5");
        assert_eq!(format!("{}", LogProb::ZERO), "0");
    }
}
