//! Numerical probes for the convergence of infinite series.
//!
//! Section 5 of the paper reduces DHT scalability to the convergence of
//! `Σ Q(m)` via Knopp's theorem: the infinite product `∏ (1 - Q(m))` has a
//! positive limit iff the series of phase-failure probabilities converges.
//!
//! [`SeriesProbe`] implements a conservative numerical version of that test.
//! Closed-form geometries also carry an analytical verdict in the core crate;
//! the probe exists to validate those verdicts and to classify user-supplied
//! geometries for which no closed form is known.

use crate::kahan::KahanSum;
use serde::{Deserialize, Serialize};

/// Outcome of a numerical convergence probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeriesVerdict {
    /// The partial sums stabilised and the terms decay fast enough that the
    /// estimated tail is below the probe tolerance.
    Converges,
    /// The terms do not decay (or decay slower than the harmonic series over
    /// the probed range); the series is deemed divergent.
    Diverges,
    /// The probe could not decide within its term budget.
    Inconclusive,
}

/// Configuration and execution of a series-convergence probe.
///
/// The probe sums `terms(m)` for `m = 1..=max_terms` and applies two
/// complementary criteria:
///
/// * **Convergence**: the last term is below `tolerance` *and* the recent
///   terms decay at least geometrically (ratio bounded away from one), so the
///   geometric tail bound is below `tolerance`.
/// * **Divergence**: the terms fail to decay — the tail average of the last
///   window is not smaller than the window before it — or any single term is
///   bounded below by a positive constant across the final window.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::{SeriesProbe, SeriesVerdict};
///
/// let probe = SeriesProbe::default();
/// // Σ q^m converges for q < 1 (hypercube geometry, §5.2 of the paper).
/// assert_eq!(probe.classify(|m| 0.3f64.powi(m as i32)), SeriesVerdict::Converges);
/// // A constant term diverges (Symphony geometry, §5.5).
/// assert_eq!(probe.classify(|_| 0.05), SeriesVerdict::Diverges);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesProbe {
    /// Maximum number of terms to examine.
    pub max_terms: u32,
    /// Absolute tolerance on the estimated tail for declaring convergence.
    pub tolerance: f64,
    /// Window length used for decay/stagnation detection.
    pub window: u32,
}

impl Default for SeriesProbe {
    fn default() -> Self {
        SeriesProbe {
            max_terms: 4096,
            tolerance: 1e-12,
            window: 64,
        }
    }
}

impl SeriesProbe {
    /// Creates a probe with an explicit term budget and tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `max_terms < 16` or `tolerance` is not strictly positive.
    #[must_use]
    pub fn new(max_terms: u32, tolerance: f64) -> Self {
        assert!(max_terms >= 16, "probe needs at least 16 terms");
        assert!(
            tolerance > 0.0 && tolerance.is_finite(),
            "tolerance must be positive and finite"
        );
        SeriesProbe {
            max_terms,
            tolerance,
            window: (max_terms / 16).clamp(8, 256),
        }
    }

    /// Classifies the series `Σ_{m≥1} terms(m)`.
    ///
    /// `terms(m)` must return a non-negative finite value; the paper's `Q(m)`
    /// are probabilities so this always holds for well-formed geometries.
    ///
    /// # Panics
    ///
    /// Panics if a term is negative, NaN or infinite.
    pub fn classify<F>(&self, mut terms: F) -> SeriesVerdict
    where
        F: FnMut(u32) -> f64,
    {
        let window = self.window.max(2) as usize;
        let mut recent: Vec<f64> = Vec::with_capacity(window);
        let mut previous_window_sum = f64::INFINITY;
        let mut last_term = f64::INFINITY;

        for m in 1..=self.max_terms {
            let t = terms(m);
            assert!(
                t >= 0.0 && t.is_finite(),
                "series term Q({m}) must be a finite non-negative number, got {t}"
            );
            last_term = t;
            recent.push(t);
            if recent.len() == window {
                let window_sum: f64 = recent.iter().copied().collect::<KahanSum>().sum();
                // No decay across consecutive windows ⇒ the terms are bounded
                // below by a positive constant (within tolerance) ⇒ divergence.
                if window_sum >= previous_window_sum * 0.999
                    && window_sum > self.tolerance * window as f64
                {
                    return SeriesVerdict::Diverges;
                }
                previous_window_sum = window_sum;
                recent.clear();
            }
            if t < self.tolerance {
                // Check at least geometric decay over a short lookahead so the
                // tail bound Σ_{k>m} t·r^k ≤ t·r/(1-r) is valid.
                let mut ratio_max: f64 = 0.0;
                let mut prev = t;
                let mut decayed = true;
                for k in 1..=8u32 {
                    let next = terms(m + k);
                    assert!(
                        next >= 0.0 && next.is_finite(),
                        "series term Q({}) must be finite and non-negative",
                        m + k
                    );
                    if prev > 0.0 {
                        ratio_max = ratio_max.max(next / prev);
                    } else if next > 0.0 {
                        decayed = false;
                    }
                    prev = next;
                }
                if decayed && ratio_max < 0.95 {
                    let tail_bound = if ratio_max > 0.0 {
                        t * ratio_max / (1.0 - ratio_max)
                    } else {
                        0.0
                    };
                    if tail_bound < self.tolerance {
                        return SeriesVerdict::Converges;
                    }
                }
            }
        }
        // Budget exhausted: if the last term is still macroscopic the series is
        // behaving like a divergent one over every scale we can see.
        if last_term > 1e-6 {
            SeriesVerdict::Diverges
        } else {
            SeriesVerdict::Inconclusive
        }
    }

    /// Returns the partial sum `Σ_{m=1}^{terms} f(m)` with compensated
    /// accumulation, useful for diagnostics and reports.
    pub fn partial_sum<F>(&self, mut terms: F, count: u32) -> f64
    where
        F: FnMut(u32) -> f64,
    {
        let mut acc = KahanSum::new();
        for m in 1..=count.min(self.max_terms) {
            acc.add(terms(m));
        }
        acc.sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_series_converges() {
        let probe = SeriesProbe::default();
        for &q in &[0.05, 0.3, 0.6, 0.9] {
            assert_eq!(
                probe.classify(|m| f64::powi(q, m as i32)),
                SeriesVerdict::Converges,
                "q={q}"
            );
        }
    }

    #[test]
    fn constant_series_diverges() {
        let probe = SeriesProbe::default();
        for &c in &[1e-3, 0.1, 0.9] {
            assert_eq!(probe.classify(|_| c), SeriesVerdict::Diverges, "c={c}");
        }
    }

    #[test]
    fn m_times_geometric_converges() {
        // XOR geometry terms behave like m·q^m (§5.3).
        let probe = SeriesProbe::default();
        assert_eq!(
            probe.classify(|m| f64::from(m) * 0.4f64.powi(m as i32)),
            SeriesVerdict::Converges
        );
    }

    #[test]
    fn harmonic_series_is_not_declared_convergent() {
        let probe = SeriesProbe::new(4096, 1e-12);
        let verdict = probe.classify(|m| 1.0 / f64::from(m));
        assert_ne!(verdict, SeriesVerdict::Converges);
    }

    #[test]
    fn zero_series_converges() {
        let probe = SeriesProbe::default();
        assert_eq!(probe.classify(|_| 0.0), SeriesVerdict::Converges);
    }

    #[test]
    fn partial_sum_matches_closed_form() {
        let probe = SeriesProbe::default();
        let s = probe.partial_sum(|m| 0.5f64.powi(m as i32), 20);
        assert!((s - (1.0 - 0.5f64.powi(20))).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 16")]
    fn rejects_tiny_budget() {
        let _ = SeriesProbe::new(4, 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn rejects_negative_terms() {
        let probe = SeriesProbe::default();
        let _ = probe.classify(|_| -1.0);
    }
}
