//! Numerical utilities underpinning the Reachable Component Method (RCM).
//!
//! The RCM paper (Kong et al., DSN 2006) evaluates routability expressions at
//! system sizes as large as `N = 2^100` (Fig. 7a). At that scale the distance
//! distribution `n(h) = C(100, h)` and the pair-count denominator
//! `(1-q)·2^100 - 1` overflow any primitive float, so every quantity in this
//! workspace that can become astronomically large or vanishingly small is
//! carried in *log space*.
//!
//! This crate provides:
//!
//! * [`LogProb`] — a probability stored as its natural logarithm, with the
//!   arithmetic needed by the analytical expressions (`ln(1-x)`, products,
//!   log-sum-exp accumulation).
//! * [`logsum`] — numerically stable log-sum-exp reduction.
//! * [`binomial`] — `ln Γ`, `ln n!` and `ln C(n, k)` for arbitrary `n` up to
//!   `u64::MAX` without overflow.
//! * [`series`] — convergence probes for infinite series, used by the
//!   scalability test of §5 of the paper (Knopp's theorem reduces
//!   `∏(1 - Q(m)) > 0` to the convergence of `Σ Q(m)`).
//! * [`stats`] — running statistics and normal-approximation confidence
//!   intervals for the Monte-Carlo side of the reproduction.
//! * [`kahan`] — compensated summation.
//! * [`sweep`] — parameter-grid helpers shared by the experiment harnesses.
//!
//! # Example
//!
//! ```rust
//! use dht_mathkit::{binomial::ln_binomial, logsum::LogSumExp, LogProb};
//!
//! // Expected reachable-component size of a d=100 hypercube at q = 0.1,
//! // normalised by the surviving population, without ever leaving log space.
//! let d = 100u64;
//! let q = 0.1f64;
//! let ln_denominator = (1.0 - q).ln() + (d as f64) * std::f64::consts::LN_2;
//! let mut acc = LogSumExp::new();
//! for h in 1..=d {
//!     let mut ln_p = 0.0;
//!     for m in 1..=h {
//!         ln_p += LogProb::from_linear(q.powi(m as i32)).ln_one_minus();
//!     }
//!     acc.push(ln_binomial(d, h) + ln_p - ln_denominator);
//! }
//! let routability = acc.sum().exp();
//! assert!(routability > 0.98 && routability <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binomial;
pub mod kahan;
pub mod logprob;
pub mod logsum;
pub mod series;
pub mod stats;
pub mod sweep;

pub use binomial::{ln_binomial, ln_factorial, ln_gamma};
pub use kahan::KahanSum;
pub use logprob::LogProb;
pub use logsum::{log_sum_exp, LogSumExp};
pub use series::{SeriesProbe, SeriesVerdict};
pub use stats::{ConfidenceInterval, RunningStats};
pub use sweep::{geomspace, linspace, percent_grid};
