//! Log-gamma, log-factorial and log-binomial coefficients.
//!
//! The hop-distance distributions of the tree, hypercube and XOR geometries
//! are `n(h) = C(d, h)`; Fig. 7(a) of the paper evaluates them at `d = 100`,
//! where the raw coefficients exceed `10^29`. All combinatorics here are
//! therefore returned as natural logarithms.

/// Lanczos coefficients (g = 7, n = 9), double precision.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Computes `ln Γ(x)` for `x > 0` using the Lanczos approximation.
///
/// Accuracy is better than `1e-12` relative error over the domain used in this
/// workspace (`x ∈ [1, 10^18]`).
///
/// # Panics
///
/// Panics if `x` is not strictly positive or is NaN.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::ln_gamma;
///
/// // Γ(5) = 4! = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(!x.is_nan(), "ln_gamma: NaN input");
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEFFS[0];
    for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Computes `ln n!`.
///
/// Exact table lookup for `n ≤ 20`, Lanczos `ln Γ(n+1)` beyond that.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::ln_factorial;
///
/// assert_eq!(ln_factorial(0), 0.0);
/// assert!((ln_factorial(10) - 3_628_800f64.ln()).abs() < 1e-12);
/// ```
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    // 20! is the largest factorial representable exactly in u64/f64 integers.
    const EXACT: [u64; 21] = [
        1,
        1,
        2,
        6,
        24,
        120,
        720,
        5_040,
        40_320,
        362_880,
        3_628_800,
        39_916_800,
        479_001_600,
        6_227_020_800,
        87_178_291_200,
        1_307_674_368_000,
        20_922_789_888_000,
        355_687_428_096_000,
        6_402_373_705_728_000,
        121_645_100_408_832_000,
        2_432_902_008_176_640_000,
    ];
    if n <= 20 {
        (EXACT[n as usize] as f64).ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Computes `ln C(n, k)`.
///
/// Returns `-∞` (log of zero) when `k > n`, matching the combinatorial
/// convention that there are no such subsets.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::ln_binomial;
///
/// assert!((ln_binomial(100, 50).exp() - 1.0089134e29).abs() / 1.0089134e29 < 1e-6);
/// assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
/// ```
#[must_use]
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    // Use the smaller of k and n-k; both branches are equivalent but this keeps
    // cancellation minimal for extreme k.
    let k = k.min(n - k);
    if k == 0 {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Computes the exact binomial coefficient `C(n, k)` as `u128`.
///
/// Intended for small instances such as the worked d=3 hypercube example
/// (Fig. 1–3 of the paper) and for unit tests of [`ln_binomial`].
///
/// # Panics
///
/// Panics on intermediate overflow of `u128`; callers needing large
/// coefficients should use [`ln_binomial`].
///
/// # Example
///
/// ```rust
/// use dht_mathkit::binomial::binomial_exact;
///
/// assert_eq!(binomial_exact(3, 2), 3);
/// assert_eq!(binomial_exact(16, 8), 12_870);
/// ```
#[must_use]
pub fn binomial_exact(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result
            .checked_mul(u128::from(n - i))
            .expect("binomial_exact: overflow");
        result /= u128::from(i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(3) = 2, Γ(0.5) = sqrt(pi)
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(3.0) - 2f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_large_argument_matches_stirling() {
        let x = 1e6f64;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        assert!((ln_gamma(x) - stirling).abs() / stirling.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn factorial_exact_range_matches_gamma() {
        for n in 0..=30u64 {
            let via_gamma = ln_gamma(n as f64 + 1.0);
            assert!(
                (ln_factorial(n) - via_gamma).abs() < 1e-10,
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn binomial_matches_exact_small_cases() {
        for n in 0..=60u64 {
            for k in 0..=n {
                let exact = binomial_exact(n, k) as f64;
                let approx = ln_binomial(n, k).exp();
                assert!(
                    (approx - exact).abs() / exact.max(1.0) < 1e-9,
                    "C({n},{k}): {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn binomial_symmetry() {
        for n in [10u64, 100, 1000] {
            for k in 0..=n.min(40) {
                assert!((ln_binomial(n, k) - ln_binomial(n, n - k)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn binomial_row_sums_to_power_of_two() {
        // Σ_k C(d,k) = 2^d, checked in log space for d = 100.
        let d = 100u64;
        let mut acc = crate::logsum::LogSumExp::new();
        for k in 0..=d {
            acc.push(ln_binomial(d, k));
        }
        let expected = d as f64 * std::f64::consts::LN_2;
        assert!((acc.sum() - expected).abs() < 1e-9);
    }

    #[test]
    fn binomial_out_of_range_is_zero() {
        assert_eq!(ln_binomial(5, 6), f64::NEG_INFINITY);
        assert_eq!(binomial_exact(5, 6), 0);
    }

    #[test]
    fn pascal_identity_holds() {
        // C(n,k) = C(n-1,k-1) + C(n-1,k) — spot check in linear space.
        for n in 2..=40u64 {
            for k in 1..n {
                let lhs = binomial_exact(n, k);
                let rhs = binomial_exact(n - 1, k - 1) + binomial_exact(n - 1, k);
                assert_eq!(lhs, rhs);
            }
        }
    }
}
