//! Running statistics and confidence intervals.
//!
//! The simulation half of the reproduction (Fig. 6) estimates routability by
//! sampling source/destination pairs. These helpers provide streaming mean,
//! variance and normal-approximation confidence intervals so every reported
//! simulation point carries an uncertainty estimate.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```rust
/// use dht_mathkit::RunningStats;
///
/// let stats: RunningStats = [2.0f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
///     .into_iter()
///     .collect();
/// assert!((stats.mean() - 5.0).abs() < 1e-12);
/// assert!((stats.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "observation must not be NaN");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no observations were pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean (0 for an empty accumulator).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance (`n-1` denominator); 0 when fewer than two
    /// observations exist.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); 0 when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Normal-approximation confidence interval for the mean at the given
    /// confidence level (e.g. `0.95`).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `(0, 1)`.
    #[must_use]
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0,1)"
        );
        let z = standard_normal_quantile(0.5 + level / 2.0);
        let half_width = z * self.standard_error();
        ConfidenceInterval {
            mean: self.mean,
            lower: self.mean - half_width,
            upper: self.mean + half_width,
            level,
        }
    }

    /// Merges another accumulator into this one (parallel Welford update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for value in iter {
            self.push(value);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut stats = RunningStats::new();
        stats.extend(iter);
        stats
    }
}

/// A symmetric confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Returns `true` if the interval contains `value`.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Used for routability estimates, which are success fractions over sampled
/// pairs; Wilson behaves sensibly even when the success count is 0 or equals
/// the number of trials.
///
/// # Panics
///
/// Panics if `successes > trials`, if `trials == 0`, or if `level ∉ (0,1)`.
///
/// # Example
///
/// ```rust
/// use dht_mathkit::stats::wilson_interval;
///
/// let ci = wilson_interval(90, 100, 0.95);
/// assert!(ci.lower > 0.8 && ci.upper < 0.96);
/// assert!(ci.contains(0.9));
/// ```
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64, level: f64) -> ConfidenceInterval {
    assert!(trials > 0, "wilson_interval requires at least one trial");
    assert!(successes <= trials, "successes cannot exceed trials");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1)"
    );
    let n = trials as f64;
    let p_hat = successes as f64 / n;
    let z = standard_normal_quantile(0.5 + level / 2.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p_hat + z2 / (2.0 * n)) / denom;
    let half = z * (p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ConfidenceInterval {
        mean: p_hat,
        lower: (centre - half).max(0.0),
        upper: (centre + half).min(1.0),
        level,
    }
}

/// Quantile function of the standard normal distribution.
///
/// Acklam's rational approximation; absolute error below `1.2e-9` over (0, 1),
/// which is far tighter than the Monte-Carlo noise it is compared against.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
#[must_use]
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let stats = RunningStats::new();
        assert!(stats.is_empty());
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.sample_variance(), 0.0);
        assert_eq!(stats.standard_error(), 0.0);
    }

    #[test]
    fn known_dataset() {
        let stats: RunningStats = [2.0f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(stats.count(), 8);
        assert!((stats.mean() - 5.0).abs() < 1e-12);
        assert!((stats.population_variance() - 4.0).abs() < 1e-12);
        assert!((stats.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(stats.min(), 2.0);
        assert_eq!(stats.max(), 9.0);
    }

    #[test]
    fn merge_matches_single_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let whole: RunningStats = data.iter().copied().collect();
        let left: RunningStats = data[..400].iter().copied().collect();
        let mut merged = left;
        let right: RunningStats = data[400..].iter().copied().collect();
        merged.merge(&right);
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-10);
        assert!((merged.sample_variance() - whole.sample_variance()).abs() < 1e-8);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut stats: RunningStats = [1.0f64, 2.0, 3.0].into_iter().collect();
        let before = stats;
        stats.merge(&RunningStats::new());
        assert_eq!(stats, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantile_matches_known_values() {
        assert!((standard_normal_quantile(0.5)).abs() < 1e-9);
        assert!((standard_normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((standard_normal_quantile(0.841_344_746) - 1.0).abs() < 1e-6);
        assert!((standard_normal_quantile(0.025) + 1.959_963_985).abs() < 1e-6);
    }

    #[test]
    fn confidence_interval_shrinks_with_samples() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..100 {
            small.push(f64::from(i % 10));
        }
        for i in 0..10_000 {
            large.push(f64::from(i % 10));
        }
        let ci_small = small.confidence_interval(0.95);
        let ci_large = large.confidence_interval(0.95);
        assert!(ci_large.half_width() < ci_small.half_width());
        assert!(ci_small.contains(ci_small.mean));
    }

    #[test]
    fn wilson_interval_bounds_are_sane() {
        let ci = wilson_interval(0, 50, 0.95);
        assert_eq!(ci.mean, 0.0);
        assert!(ci.lower >= 0.0 && ci.upper > 0.0 && ci.upper < 0.2);
        let ci = wilson_interval(50, 50, 0.95);
        assert!(ci.lower > 0.9 && ci.upper <= 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn wilson_rejects_impossible_counts() {
        let _ = wilson_interval(10, 5, 0.95);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_observation() {
        let mut stats = RunningStats::new();
        stats.push(f64::NAN);
    }
}
