//! Result rendering and persistence shared by the experiment binaries.

use dht_sim::{write_csv, SimError, SimulationRecord};
use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Renders records as a fixed-width text table (what the binaries print).
#[must_use]
pub fn render_records_table(records: &[SimulationRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>5} {:>6} {:>12} {:>12} {:>8}",
        "experiment", "geometry", "bits", "q", "analytic %", "simulated %", "gap"
    );
    for record in records {
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:>5} {:>6.2} {:>12} {:>12} {:>8}",
            record.experiment,
            record.geometry,
            record.bits,
            record.failure_probability,
            format_option(record.analytical_failed_percent),
            format_option(record.simulated_failed_percent),
            format_option(record.absolute_gap()),
        );
    }
    out
}

fn format_option(value: Option<f64>) -> String {
    value.map_or_else(|| "-".to_owned(), |v| format!("{v:.2}"))
}

/// Writes records to `<dir>/<name>.csv`, creating the directory if needed.
///
/// Returns the path written.
///
/// # Errors
///
/// Returns [`SimError::Io`] on filesystem errors.
pub fn write_records_csv(
    records: &[SimulationRecord],
    dir: &Path,
    name: &str,
) -> Result<PathBuf, SimError> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut buffer = Vec::new();
    write_csv(records, &mut buffer)?;
    fs::write(&path, buffer)?;
    Ok(path)
}

/// Writes any serialisable result to `<dir>/<name>.json` (pretty-printed).
///
/// Returns the path written.
///
/// # Errors
///
/// Returns [`SimError::Io`] on filesystem or serialisation errors.
pub fn write_json<T: Serialize>(value: &T, dir: &Path, name: &str) -> Result<PathBuf, SimError> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(|err| SimError::Io {
        message: err.to_string(),
    })?;
    fs::write(&path, json)?;
    Ok(path)
}

/// The default output directory used by the experiment binaries
/// (`results/` at the workspace root, or the current directory's `results/`
/// when run elsewhere).
#[must_use]
pub fn default_output_dir() -> PathBuf {
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<SimulationRecord> {
        vec![
            SimulationRecord::analytical("fig6a", "tree", 16, 0.3, 89.4),
            SimulationRecord::analytical("fig6a", "xor", 16, 0.3, 24.7),
        ]
    }

    #[test]
    fn table_contains_every_record() {
        let table = render_records_table(&sample_records());
        assert!(table.contains("tree"));
        assert!(table.contains("xor"));
        assert!(table.contains("89.40"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn csv_and_json_round_trip_to_disk() {
        let dir = std::env::temp_dir().join(format!("dht-rcm-test-{}", std::process::id()));
        let records = sample_records();
        let csv_path = write_records_csv(&records, &dir, "fig6a_test").unwrap();
        let json_path = write_json(&records, &dir, "fig6a_test").unwrap();
        let csv = fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("experiment,"));
        assert_eq!(csv.trim().lines().count(), 3);
        let json = fs::read_to_string(&json_path).unwrap();
        let back: Vec<SimulationRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, records);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_output_dir_is_relative_results() {
        assert_eq!(default_output_dir(), PathBuf::from("results"));
    }
}
