//! Result rendering and persistence shared by the experiment binaries.
//!
//! All report emission goes through one [`ReportWriter`]: every binary and
//! the batch runner write [`ScenarioReport`] envelopes (and, for the Fig. 6/7
//! record families, companion CSV) to a consistent `results/` layout, in
//! pretty or compact JSON.

use crate::spec::ScenarioReport;
use dht_sim::{write_csv, SimError, SimulationRecord};
use serde::Serialize;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Renders records as a fixed-width text table (what the binaries print).
#[must_use]
pub fn render_records_table(records: &[SimulationRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>5} {:>6} {:>12} {:>12} {:>8}",
        "experiment", "geometry", "bits", "q", "analytic %", "simulated %", "gap"
    );
    for record in records {
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:>5} {:>6.2} {:>12} {:>12} {:>8}",
            record.experiment,
            record.geometry,
            record.bits,
            record.failure_probability,
            format_option(record.analytical_failed_percent),
            format_option(record.simulated_failed_percent),
            format_option(record.absolute_gap()),
        );
    }
    out
}

fn format_option(value: Option<f64>) -> String {
    value.map_or_else(|| "-".to_owned(), |v| format!("{v:.2}"))
}

/// How a [`ReportWriter`] serializes JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportMode {
    /// Human-oriented, indented JSON (the binaries' default).
    #[default]
    Pretty,
    /// Single-line JSON (the batch runner and server cache format).
    Compact,
}

/// The one place experiment results hit disk: writes report envelopes and
/// companion CSV under an output directory, creating it on demand.
#[derive(Debug, Clone)]
pub struct ReportWriter {
    dir: PathBuf,
    mode: ReportMode,
}

impl ReportWriter {
    /// A pretty-printing writer rooted at `dir`.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ReportWriter {
            dir: dir.into(),
            mode: ReportMode::Pretty,
        }
    }

    /// Replaces the serialization mode.
    #[must_use]
    pub fn with_mode(mut self, mode: ReportMode) -> Self {
        self.mode = mode;
        self
    }

    /// The directory reports land in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes `report` to `<dir>/<sanitized name>.json` and returns the path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] on filesystem errors.
    pub fn write_report(&self, report: &ScenarioReport) -> Result<PathBuf, SimError> {
        self.write_json(report, &sanitize_stem(&report.name))
    }

    /// Writes any serializable value to `<dir>/<name>.json` in this writer's
    /// mode and returns the path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] on filesystem or serialization errors.
    pub fn write_json<T: Serialize>(&self, value: &T, name: &str) -> Result<PathBuf, SimError> {
        fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!("{name}.json"));
        let json = match self.mode {
            ReportMode::Pretty => serde_json::to_string_pretty(value),
            ReportMode::Compact => serde_json::to_string(value),
        }
        .map_err(|err| SimError::Io {
            message: err.to_string(),
        })?;
        fs::write(&path, json)?;
        Ok(path)
    }

    /// Writes records to `<dir>/<name>.csv` and returns the path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] on filesystem errors.
    pub fn write_csv(&self, records: &[SimulationRecord], name: &str) -> Result<PathBuf, SimError> {
        fs::create_dir_all(&self.dir)?;
        let path = self.dir.join(format!("{}.csv", sanitize_stem(name)));
        let mut buffer = Vec::new();
        write_csv(records, &mut buffer)?;
        fs::write(&path, buffer)?;
        Ok(path)
    }
}

/// Maps a spec name to a safe file stem: alphanumerics, `-`, `_` and `.`
/// pass through, everything else becomes `_` (so names can never escape the
/// output directory).
#[must_use]
pub fn sanitize_stem(name: &str) -> String {
    let stem: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if stem.trim_matches('.').is_empty() {
        "report".to_owned()
    } else {
        stem
    }
}

/// The default output directory used by the experiment binaries
/// (`results/` at the workspace root, or the current directory's `results/`
/// when run elsewhere).
#[must_use]
pub fn default_output_dir() -> PathBuf {
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_spec, Family};

    fn sample_records() -> Vec<SimulationRecord> {
        vec![
            SimulationRecord::analytical("fig6a", "tree", 16, 0.3, 89.4),
            SimulationRecord::analytical("fig6a", "xor", 16, 0.3, 24.7),
        ]
    }

    #[test]
    fn table_contains_every_record() {
        let table = render_records_table(&sample_records());
        assert!(table.contains("tree"));
        assert!(table.contains("xor"));
        assert!(table.contains("89.40"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn writer_round_trips_reports_and_csv_to_disk() {
        let dir = std::env::temp_dir().join(format!("dht-rcm-test-{}", std::process::id()));
        let outcome = run_spec(&Family::ScalabilityTable.default_spec(true), None).unwrap();
        let writer = ReportWriter::new(&dir);
        let report_path = writer.write_report(&outcome.report).unwrap();
        assert!(report_path.ends_with("scalability_table.json"));
        let text = fs::read_to_string(&report_path).unwrap();
        let back: ScenarioReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, outcome.report);

        let compact = writer.with_mode(ReportMode::Compact);
        let compact_path = compact.write_json(&outcome.report, "compacted").unwrap();
        let compact_text = fs::read_to_string(&compact_path).unwrap();
        assert_eq!(compact_text.lines().count(), 1, "compact mode is one line");
        assert!(text.lines().count() > 1, "pretty mode is indented");

        let records = sample_records();
        let csv_path = ReportWriter::new(&dir)
            .write_csv(&records, "fig6a_test")
            .unwrap();
        let csv = fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("experiment,"));
        assert_eq!(csv.trim().lines().count(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stems_are_sanitized() {
        assert_eq!(sanitize_stem("fig6a_failed_paths"), "fig6a_failed_paths");
        assert_eq!(sanitize_stem("../evil name"), ".._evil_name");
        assert_eq!(sanitize_stem(""), "report");
        assert_eq!(sanitize_stem(".."), "report");
    }

    #[test]
    fn default_output_dir_is_relative_results() {
        assert_eq!(default_output_dir(), PathBuf::from("results"));
    }
}
