//! Experiment: **live churn** — the discrete-event simulator of
//! [`dht_sim::events`] driven over a session-time × lookup-rate grid, with
//! per-geometry delivery and hop curves, validated in the stationary regime
//! against the routing Markov chains of `dht-markov`.
//!
//! The paper's churn treatment is static: kill a Bernoulli(`q`) fraction,
//! measure, rebuild. This harness runs the *process* instead — alternating
//! up/down node sessions in continuous time with lookups arriving as
//! Poisson traffic — in two modes:
//!
//! * **frozen** (`repair = false`): routing tables stay at the all-alive
//!   build while the liveness mask moves. By renewal theory each node is
//!   offline with stationary probability `q* = E[D] / (E[L] + E[D])`, so
//!   after warmup the delivery ratio must match the *static* model at
//!   `q*` — the chain-predicted routability `r(N, q*)`. That closes the
//!   loop between the event simulator and the paper's analysis.
//! * **repair** (`repair = true`): every departure and return is
//!   delta-patched into the overlay (the incremental repair proven
//!   equivalent to rebuild in `dht-overlay`), which restores near-perfect
//!   delivery and measures what maintenance actually buys.

use dht_id::{KeySpace, Population};
use dht_markov::chains::{hypercube_chain, ring_chain, tree_chain, xor_chain};
use dht_markov::{ChainError, ChainFamily};
use dht_overlay::can::CanStrategy;
use dht_overlay::chord::ChordStrategy;
use dht_overlay::kademlia::KademliaStrategy;
use dht_overlay::plaxton::PlaxtonStrategy;
use dht_overlay::symphony::SymphonyStrategy;
use dht_overlay::{ChordVariant, GeometryStrategy, LiveOverlay};
use dht_rcm_core::RoutingGeometry;
use dht_sim::{
    LifetimeDistribution, LiveChurnConfig, LiveChurnExperiment, LiveChurnTally, SimError,
};
use serde::{Deserialize, Serialize};

/// One measured grid point: a geometry under one churn/traffic intensity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveChurnPoint {
    /// Geometry name (`ring`, `xor`, `tree`, `hypercube`, `symphony`).
    pub geometry: String,
    /// Identifier-space bits (the population is full, `N = 2^bits`).
    pub bits: u32,
    /// Mean node session time `E[L]`.
    pub mean_session_time: f64,
    /// Mean offline time `E[D]`.
    pub mean_downtime: f64,
    /// Poisson lookup arrival rate.
    pub lookup_rate: f64,
    /// Whether departures/returns repaired the overlay in place.
    pub repair: bool,
    /// Stationary offline fraction `q* = E[D] / (E[L] + E[D])`.
    pub stationary_failure_fraction: f64,
    /// Time-averaged offline fraction actually observed in the window.
    pub observed_dead_fraction: f64,
    /// Chain-predicted static routability `r(N, q*)` — the frozen-mode
    /// reference; `None` for geometries without a chain model here or in
    /// repair mode (where the static model does not apply).
    pub predicted_routability: Option<f64>,
    /// Delivered fraction of measured lookups.
    pub delivery_ratio: f64,
    /// Mean hop count over delivered lookups.
    pub mean_hops: f64,
    /// Lookups measured inside the window.
    pub attempted: u64,
    /// Total events processed (all replicas, warmup included).
    pub events: u64,
    /// Routing-table rows rewritten by incremental repair.
    pub repairs: u64,
}

/// The session-time × lookup-rate grid a [`run_grid`] call sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveChurnGridConfig {
    /// Identifier-space bits (full population).
    pub bits: u32,
    /// Mean session times `E[L]` to sweep.
    pub session_times: Vec<f64>,
    /// Poisson lookup rates to sweep.
    pub lookup_rates: Vec<f64>,
    /// Mean offline time `E[D]` (exponential downtime).
    pub mean_downtime: f64,
    /// Simulated horizon per replica.
    pub duration: f64,
    /// Measurement-window start.
    pub warmup: f64,
    /// Independent replicas per point.
    pub replicas: u32,
    /// Worker-thread budget (replicas are the unit of parallelism).
    pub threads: usize,
    /// Master seed; each grid point derives its own.
    pub seed: u64,
}

impl LiveChurnGridConfig {
    /// The CI-sized configuration: one point per axis, a small ring.
    #[must_use]
    pub fn smoke() -> Self {
        LiveChurnGridConfig {
            bits: 6,
            session_times: vec![2.0],
            lookup_rates: vec![150.0],
            mean_downtime: 0.5,
            duration: 12.0,
            warmup: 4.0,
            replicas: 2,
            threads: 2,
            seed: 29,
        }
    }

    /// The paper-scale configuration: `N = 2^10`, three churn intensities
    /// crossed with two traffic rates, longer horizon.
    #[must_use]
    pub fn paper_scale() -> Self {
        LiveChurnGridConfig {
            bits: 10,
            session_times: vec![1.0, 2.0, 4.0],
            lookup_rates: vec![100.0, 400.0],
            mean_downtime: 0.5,
            duration: 30.0,
            warmup: 10.0,
            replicas: 4,
            threads: 8,
            seed: 29,
        }
    }
}

/// The static routability `r(N, q)` predicted by the geometry's routing
/// Markov chain: `E[S] = Σ_h n(h)·p_chain(h, q)` over the per-distance
/// absorption probabilities, normalised by the expected survivor peers
/// `(1 − q)·N − 1` (Eq. 3 of the paper, with the chain solution in place
/// of the closed form).
///
/// Returns `None` for geometries without a chain model here (Symphony's
/// chain needs the `(k_n, k_s)` parameters and its own distance model).
///
/// # Errors
///
/// Returns [`ChainError`] if a chain cannot be built or solved.
pub fn chain_predicted_routability(
    geometry: &str,
    bits: u32,
    q: f64,
) -> Result<Option<f64>, ChainError> {
    chain_predicted_routability_with(geometry, bits, q, |family, h, hop_q| {
        let chain = match family {
            ChainFamily::Ring => ring_chain(h, hop_q)?,
            ChainFamily::Xor => xor_chain(h, hop_q)?,
            ChainFamily::Tree => tree_chain(h, hop_q)?,
            ChainFamily::Hypercube => hypercube_chain(h, hop_q)?,
        };
        chain.success_probability()
    })
}

/// [`chain_predicted_routability`] with the per-hop chain solve supplied by
/// the caller — the hook the report server uses to route solves through a
/// shared [`dht_markov::ChainCache`] instead of rebuilding chains per query.
///
/// `solve(family, h, q)` must return the chain success probability for `h`
/// hops at failure probability `q`; it is called once per hop distance of
/// the geometry.
///
/// # Errors
///
/// Propagates any [`ChainError`] returned by `solve`.
pub fn chain_predicted_routability_with<F>(
    geometry: &str,
    bits: u32,
    q: f64,
    mut solve: F,
) -> Result<Option<f64>, ChainError>
where
    F: FnMut(ChainFamily, u32, f64) -> Result<f64, ChainError>,
{
    let Some(family) = ChainFamily::from_geometry_name(geometry) else {
        return Ok(None);
    };
    let model = match family {
        ChainFamily::Ring => dht_rcm_core::Geometry::ring(),
        ChainFamily::Xor => dht_rcm_core::Geometry::xor(),
        ChainFamily::Tree => dht_rcm_core::Geometry::tree(),
        ChainFamily::Hypercube => dht_rcm_core::Geometry::hypercube(),
    };
    let survivors = (1.0 - q) * (1u64 << bits) as f64;
    if survivors <= 1.0 {
        return Ok(None);
    }
    let mut expected_reachable = 0.0;
    for h in 1..=model.max_distance(bits) {
        let ln_count = model.ln_nodes_at_distance(bits, h);
        if ln_count == f64::NEG_INFINITY {
            continue;
        }
        expected_reachable += ln_count.exp() * solve(family, h, q)?;
    }
    Ok(Some((expected_reachable / (survivors - 1.0)).min(1.0)))
}

/// Runs one grid point for one geometry.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfiguration`] if the grid parameters are
/// rejected by [`LiveChurnConfig`] or describe an unsupported key space.
pub fn run_point(
    grid: &LiveChurnGridConfig,
    geometry: &str,
    mean_session_time: f64,
    lookup_rate: f64,
    repair: bool,
    seed: u64,
) -> Result<LiveChurnPoint, SimError> {
    let space = KeySpace::new(grid.bits).map_err(|err| SimError::InvalidConfiguration {
        message: format!("invalid key space: {err}"),
    })?;
    let config = LiveChurnConfig::new(
        LifetimeDistribution::exponential(mean_session_time)?,
        LifetimeDistribution::exponential(grid.mean_downtime)?,
        grid.duration,
        lookup_rate,
    )?
    .with_warmup(grid.warmup)
    .with_repair(repair)
    .with_replicas(grid.replicas)
    .with_threads(grid.threads)
    .with_seed(seed);
    let experiment = LiveChurnExperiment::new(config);
    let tally = match geometry {
        "ring" => run_strategy(
            &experiment,
            space,
            ChordStrategy::new(ChordVariant::Deterministic),
        ),
        "xor" => run_strategy(&experiment, space, KademliaStrategy),
        "tree" => run_strategy(&experiment, space, PlaxtonStrategy),
        "hypercube" => run_strategy(&experiment, space, CanStrategy),
        "symphony" => run_strategy(&experiment, space, SymphonyStrategy::new(2, 2)),
        other => {
            return Err(SimError::InvalidConfiguration {
                message: format!("unknown live-churn geometry {other}"),
            })
        }
    };
    let q_star = config.stationary_failure_fraction();
    let predicted = if repair {
        None
    } else {
        chain_predicted_routability(geometry, grid.bits, q_star).map_err(|err| {
            SimError::InvalidConfiguration {
                message: format!("chain prediction failed: {err}"),
            }
        })?
    };
    Ok(LiveChurnPoint {
        geometry: geometry.to_owned(),
        bits: grid.bits,
        mean_session_time,
        mean_downtime: grid.mean_downtime,
        lookup_rate,
        repair,
        stationary_failure_fraction: q_star,
        observed_dead_fraction: tally.dead_fraction(),
        predicted_routability: predicted,
        delivery_ratio: tally.delivery_ratio(),
        mean_hops: tally.hop_stats.mean(),
        attempted: tally.attempted,
        events: tally.events,
        repairs: tally.repairs,
    })
}

fn run_strategy<S: GeometryStrategy + Clone>(
    experiment: &LiveChurnExperiment,
    space: KeySpace,
    strategy: S,
) -> LiveChurnTally {
    experiment.run(move |master_seed| {
        LiveOverlay::build(Population::full(space), strategy.clone(), master_seed)
            .expect("all catalogue geometries support live churn")
    })
}

/// The five geometries swept by [`run_grid`].
pub const GEOMETRIES: [&str; 5] = ["ring", "xor", "tree", "hypercube", "symphony"];

/// Sweeps the full grid in both frozen and repair mode: for every session
/// time × lookup rate × geometry, one frozen point (with its chain
/// prediction) and one repaired point.
///
/// Grid point `k` (in sweep order) is seeded with child `k` of a
/// [`dht_sim::SeedSequence`] rooted at `grid.seed` — the repository-wide
/// convention shared with [`dht_sim::sweep_failure_grid`], so per-point
/// streams are well-mixed and never correlate across adjacent points or
/// nearby root seeds.
///
/// # Errors
///
/// Returns [`SimError`] as in [`run_point`].
pub fn run_grid(grid: &LiveChurnGridConfig) -> Result<Vec<LiveChurnPoint>, SimError> {
    let seeds = dht_sim::SeedSequence::new(grid.seed);
    let mut points = Vec::new();
    let mut point_index = 0u64;
    for &session_time in &grid.session_times {
        for &lookup_rate in &grid.lookup_rates {
            for geometry in GEOMETRIES {
                for repair in [false, true] {
                    let seed = seeds.child(point_index);
                    points.push(run_point(
                        grid,
                        geometry,
                        session_time,
                        lookup_rate,
                        repair,
                        seed,
                    )?);
                    point_index += 1;
                }
            }
        }
    }
    Ok(points)
}

/// Renders grid points as the fixed-width table the binary prints.
#[must_use]
pub fn render_live_churn_table(points: &[LiveChurnPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>6} {:>6} {:>7} {:>6} {:>9} {:>9} {:>9} {:>7}",
        "geometry",
        "bits",
        "E[L]",
        "rate",
        "repair",
        "q*",
        "predicted",
        "delivered",
        "hops",
        "repairs"
    );
    for point in points {
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>6.2} {:>6.0} {:>7} {:>6.3} {:>9} {:>9.4} {:>9.2} {:>7}",
            point.geometry,
            point.bits,
            point.mean_session_time,
            point.lookup_rate,
            point.repair,
            point.stationary_failure_fraction,
            point
                .predicted_routability
                .map_or_else(|| "-".to_owned(), |r| format!("{r:.4}")),
            point.delivery_ratio,
            point.mean_hops,
            point.repairs,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The steady-state validation scale: `N = 2^8`, `q* = 0.2`, enough
    /// traffic in the window for ±1% sampling error.
    fn validation_grid() -> LiveChurnGridConfig {
        LiveChurnGridConfig {
            bits: 8,
            session_times: vec![2.0],
            lookup_rates: vec![600.0],
            mean_downtime: 0.5,
            duration: 26.0,
            warmup: 10.0,
            replicas: 2,
            threads: 2,
            seed: 17,
        }
    }

    #[test]
    fn frozen_steady_state_matches_the_chain_prediction() {
        // Satellite acceptance: the frozen-table live-churn delivery ratio
        // for the ring and XOR geometries must sit within tolerance of the
        // Markov-chain routability at q* = E[D]/(E[L]+E[D]) = 0.2.
        let grid = validation_grid();
        for geometry in ["ring", "xor"] {
            let point = run_point(&grid, geometry, 2.0, 600.0, false, grid.seed).unwrap();
            assert!(point.attempted > 5_000, "{geometry}: too few lookups");
            let predicted = point
                .predicted_routability
                .expect("ring and xor have chain models");
            assert!(
                (point.delivery_ratio - predicted).abs() < 0.10,
                "{geometry}: simulated delivery {:.4} vs chain prediction {:.4}",
                point.delivery_ratio,
                predicted
            );
            // The churn process itself must sit at its stationary point,
            // otherwise the comparison above is vacuous.
            assert!(
                (point.observed_dead_fraction - 0.2).abs() < 0.04,
                "{geometry}: dead fraction {:.4} far from q* = 0.2",
                point.observed_dead_fraction
            );
        }
    }

    #[test]
    fn repair_mode_restores_near_perfect_delivery() {
        let grid = validation_grid();
        let point = run_point(&grid, "ring", 2.0, 600.0, true, grid.seed).unwrap();
        assert!(point.repairs > 0, "repair mode must rewrite tables");
        assert!(
            point.delivery_ratio >= 0.999,
            "repaired ring delivery {:.5} below 0.999",
            point.delivery_ratio
        );
        assert!(point.predicted_routability.is_none());
    }

    #[test]
    fn smoke_grid_covers_every_geometry_in_both_modes() {
        let grid = LiveChurnGridConfig::smoke();
        let points = run_grid(&grid).unwrap();
        assert_eq!(
            points.len(),
            grid.session_times.len() * grid.lookup_rates.len() * GEOMETRIES.len() * 2
        );
        for geometry in GEOMETRIES {
            assert!(points.iter().any(|p| p.geometry == geometry && p.repair));
            assert!(points.iter().any(|p| p.geometry == geometry && !p.repair));
        }
        for point in &points {
            assert!(
                point.attempted > 0,
                "{}: no traffic measured",
                point.geometry
            );
            assert!((0.0..=1.0).contains(&point.delivery_ratio));
            if point.repair {
                assert!(point.repairs > 0, "{}: no repairs", point.geometry);
            } else {
                assert_eq!(point.repairs, 0, "{}: frozen mode repaired", point.geometry);
            }
        }
        // Repair never hurts delivery on the same grid point.
        for frozen in points.iter().filter(|p| !p.repair) {
            let repaired = points
                .iter()
                .find(|p| {
                    p.repair
                        && p.geometry == frozen.geometry
                        && p.mean_session_time == frozen.mean_session_time
                        && p.lookup_rate == frozen.lookup_rate
                })
                .unwrap();
            assert!(repaired.delivery_ratio + 0.02 >= frozen.delivery_ratio);
        }
        let table = render_live_churn_table(&points);
        assert!(table.contains("ring") && table.contains("hypercube"));
        let json = serde_json::to_string(&points).unwrap();
        let back: Vec<LiveChurnPoint> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, points);
    }

    #[test]
    fn chain_prediction_is_sane_and_bounded() {
        for geometry in ["ring", "xor", "tree", "hypercube"] {
            let r = chain_predicted_routability(geometry, 8, 0.2)
                .unwrap()
                .expect("chain model exists");
            assert!((0.0..=1.0).contains(&r), "{geometry}: r = {r}");
        }
        assert_eq!(
            chain_predicted_routability("symphony", 8, 0.2).unwrap(),
            None
        );
        // At q = 0 every chain predicts full routability.
        let perfect = chain_predicted_routability("ring", 8, 0.0)
            .unwrap()
            .unwrap();
        assert!((perfect - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_geometry_is_rejected() {
        let grid = LiveChurnGridConfig::smoke();
        assert!(run_point(&grid, "torus", 2.0, 50.0, false, 1).is_err());
    }
}
