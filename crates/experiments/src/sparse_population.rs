//! Sparse-population static resilience: routability at `n < 2^d` occupied
//! identifiers.
//!
//! The paper (and its Fig. 6 simulations) assumes fully populated identifier
//! spaces. Deployed DHTs never are: a Chord or Kademlia network occupies a
//! vanishing fraction of its `2^d` identifiers and resolves routing-table
//! targets against the occupied set (successors, bucket members). This
//! experiment opens that axis: it measures static resilience on overlays
//! built over a sparse [`Population`] and — optionally — over the fully
//! populated space of the same identifier length, so the occupancy effect can
//! be separated from the failure effect.
//!
//! Two qualitative outcomes worth knowing before reading the numbers:
//!
//! * ring, XOR and tree tables resolve against the occupied set, so an
//!   *intact* sparse overlay of these geometries stays fully routable — the
//!   sparse curves start at 100% like the full ones;
//! * the hypercube has no resolution rule (a missing coordinate neighbour is
//!   simply absent), so its sparse routability collapses even at `q = 0` —
//!   occupancy is a failure mode of its own for that geometry.

use dht_id::{IdError, Population};
use dht_overlay::{CanOverlay, ChordOverlay, ChordVariant, KademliaOverlay, Overlay, OverlayError};
use dht_sim::{sweep_failure_grid, SimError, StaticResilienceConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the sparse-population resilience experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsePopulationConfig {
    /// Identifier length `d` of the space.
    pub bits: u32,
    /// Number of occupied identifiers (`n <= 2^d`).
    pub occupied: u64,
    /// Also measure the fully populated overlay as a baseline.
    pub include_full_baseline: bool,
    /// Source/destination pairs sampled per grid point.
    pub pairs: u64,
    /// Master seed for population sampling, overlay construction, failure
    /// patterns and pair sampling.
    pub seed: u64,
    /// Failure-probability grid (fractions in `[0, 1)`).
    pub grid: Vec<f64>,
    /// Worker threads per measurement (grid points already run concurrently).
    pub threads: usize,
}

impl SparsePopulationConfig {
    /// The paper-scale configuration of the ROADMAP item: a `2^20` identifier
    /// space with `2^18` occupied nodes (25% occupancy), failure
    /// probabilities 0–50% in 10% steps.
    #[must_use]
    pub fn paper_scale() -> Self {
        SparsePopulationConfig {
            bits: 20,
            occupied: 1 << 18,
            include_full_baseline: false,
            pairs: 20_000,
            seed: 2006,
            grid: dht_mathkit::percent_grid(50, 10),
            threads: 4,
        }
    }

    /// A reduced configuration for tests and CI (milliseconds, not minutes).
    #[must_use]
    pub fn smoke() -> Self {
        SparsePopulationConfig {
            bits: 10,
            occupied: 1 << 8,
            include_full_baseline: true,
            pairs: 1_500,
            seed: 2006,
            grid: vec![0.0, 0.2, 0.4],
            threads: 1,
        }
    }
}

/// One measured point of the sparse-population experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparsePopulationRecord {
    /// Geometry name (`"ring"`, `"xor"`, `"hypercube"`).
    pub geometry: String,
    /// Identifier length of the space.
    pub bits: u32,
    /// Occupied identifiers of this overlay.
    pub occupied: u64,
    /// Occupied fraction of the space.
    pub occupancy: f64,
    /// Failure probability of this grid point.
    pub failure_probability: f64,
    /// Measured routability among surviving occupied pairs.
    pub routability: f64,
    /// `100·(1 − routability)`, the Fig. 6 y-axis.
    pub failed_path_percent: f64,
    /// Mean hops over delivered messages.
    pub mean_hops: f64,
}

/// Errors from the sparse-population harness.
#[derive(Debug)]
pub enum SparsePopulationError {
    /// Sampling or validating the population failed.
    Id(IdError),
    /// Overlay construction failed.
    Overlay(OverlayError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for SparsePopulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparsePopulationError::Id(err) => write!(f, "population sampling failed: {err}"),
            SparsePopulationError::Overlay(err) => {
                write!(f, "overlay construction failed: {err}")
            }
            SparsePopulationError::Sim(err) => write!(f, "simulation failed: {err}"),
        }
    }
}

impl std::error::Error for SparsePopulationError {}

impl From<IdError> for SparsePopulationError {
    fn from(err: IdError) -> Self {
        SparsePopulationError::Id(err)
    }
}
impl From<OverlayError> for SparsePopulationError {
    fn from(err: OverlayError) -> Self {
        SparsePopulationError::Overlay(err)
    }
}
impl From<SimError> for SparsePopulationError {
    fn from(err: SimError) -> Self {
        SparsePopulationError::Sim(err)
    }
}

/// Runs the experiment: ring, XOR and hypercube overlays over the sparse
/// population (plus, optionally, the full baseline), swept across the failure
/// grid.
///
/// # Errors
///
/// Returns [`SparsePopulationError`] if the population cannot be sampled, an
/// overlay cannot be built, or a grid value is invalid.
pub fn sparse_population_resilience(
    config: &SparsePopulationConfig,
) -> Result<Vec<SparsePopulationRecord>, SparsePopulationError> {
    let space = dht_id::KeySpace::new(config.bits).map_err(SparsePopulationError::Id)?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let sparse = Population::sample_uniform(space, config.occupied, &mut rng)?;

    let mut populations = vec![sparse];
    if config.include_full_baseline {
        populations.push(Population::full(space));
    }

    let base_config = StaticResilienceConfig::new(0.0)
        .map_err(SparsePopulationError::Sim)?
        .with_pairs(config.pairs)
        .with_seed(config.seed)
        .with_threads(config.threads);

    let mut records = Vec::new();
    for population in populations {
        let ring = ChordOverlay::build_over(
            population.clone(),
            ChordVariant::Deterministic,
            // The deterministic variant draws no randomness; reuse the master
            // stream for the geometries that do.
            &mut rng,
        )?;
        measure(&ring, &base_config, &config.grid, &mut records)?;
        let xor = KademliaOverlay::build_over(population.clone(), &mut rng)?;
        measure(&xor, &base_config, &config.grid, &mut records)?;
        let hypercube = CanOverlay::build_over(population)?;
        measure(&hypercube, &base_config, &config.grid, &mut records)?;
    }
    Ok(records)
}

fn measure<O>(
    overlay: &O,
    base_config: &StaticResilienceConfig,
    grid: &[f64],
    records: &mut Vec<SparsePopulationRecord>,
) -> Result<(), SparsePopulationError>
where
    O: Overlay + Sync,
{
    let points = sweep_failure_grid(overlay, base_config, grid)?;
    records.extend(points.into_iter().map(|point| SparsePopulationRecord {
        geometry: point.result.geometry.clone(),
        bits: point.result.bits,
        occupied: point.result.occupied_nodes,
        occupancy: overlay.population().occupancy(),
        failure_probability: point.failure_probability,
        routability: point.result.routability,
        failed_path_percent: point.result.failed_path_percent,
        mean_hops: point.result.mean_hops,
    }));
    Ok(())
}

/// Renders sparse-population records as a fixed-width text table.
#[must_use]
pub fn render_sparse_table(records: &[SparsePopulationRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>9} {:>10} {:>6} {:>13} {:>10}",
        "geometry", "bits", "occupied", "occupancy", "q", "routability %", "mean hops"
    );
    for record in records {
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>9} {:>10.3} {:>6.2} {:>13.2} {:>10.2}",
            record.geometry,
            record.bits,
            record.occupied,
            record.occupancy,
            record.failure_probability,
            100.0 * record.routability,
            record.mean_hops,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_both_occupancies_and_all_grid_points() {
        let config = SparsePopulationConfig::smoke();
        let records = sparse_population_resilience(&config).unwrap();
        // 3 geometries × 2 populations × grid.
        assert_eq!(records.len(), 3 * 2 * config.grid.len());
        assert!(records.iter().any(|r| r.occupied == 256));
        assert!(records.iter().any(|r| r.occupied == 1024));
        let table = render_sparse_table(&records);
        assert!(table.contains("ring") && table.contains("hypercube"));
    }

    #[test]
    fn intact_sparse_ring_and_xor_stay_fully_routable() {
        let config = SparsePopulationConfig::smoke();
        let records = sparse_population_resilience(&config).unwrap();
        for record in records
            .iter()
            .filter(|r| r.failure_probability == 0.0 && r.occupied == 256)
        {
            match record.geometry.as_str() {
                "ring" | "xor" => assert_eq!(
                    record.routability, 1.0,
                    "{} must stay routable when intact",
                    record.geometry
                ),
                "hypercube" => assert!(
                    record.routability < 0.9,
                    "a 25%-occupied hypercube loses coordinate neighbours, got {}",
                    record.routability
                ),
                other => panic!("unexpected geometry {other}"),
            }
        }
    }

    #[test]
    fn sparse_ring_routability_degrades_with_failure_like_the_full_ring() {
        let config = SparsePopulationConfig::smoke();
        let records = sparse_population_resilience(&config).unwrap();
        let ring_sparse: Vec<&SparsePopulationRecord> = records
            .iter()
            .filter(|r| r.geometry == "ring" && r.occupied == 256)
            .collect();
        assert!(ring_sparse[0].routability >= ring_sparse[1].routability);
        assert!(ring_sparse[1].routability >= ring_sparse[2].routability);
        // The sparse ring routes in more hops than the full one (successor
        // chains replace exact fingers) but stays in the same resilience
        // regime at moderate failure.
        let full = records
            .iter()
            .find(|r| r.geometry == "ring" && r.occupied == 1024 && r.failure_probability == 0.2)
            .unwrap();
        let sparse = records
            .iter()
            .find(|r| r.geometry == "ring" && r.occupied == 256 && r.failure_probability == 0.2)
            .unwrap();
        assert!((full.routability - sparse.routability).abs() < 0.15);
    }

    #[test]
    fn paper_scale_experiment_runs_end_to_end_at_2_20_space_2_18_nodes() {
        // The acceptance-scale run, reduced to the ring geometry's grid end
        // points and a light pair budget so it stays test-suite friendly.
        let config = SparsePopulationConfig {
            bits: 20,
            occupied: 1 << 18,
            include_full_baseline: false,
            pairs: 300,
            seed: 7,
            grid: vec![0.0, 0.3],
            threads: 2,
        };
        let space = dht_id::KeySpace::new(config.bits).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let population = Population::sample_uniform(space, config.occupied, &mut rng).unwrap();
        assert_eq!(population.node_count(), 1 << 18);
        let overlay =
            ChordOverlay::build_over(population, ChordVariant::Deterministic, &mut rng).unwrap();
        let base = StaticResilienceConfig::new(0.0)
            .unwrap()
            .with_pairs(config.pairs)
            .with_seed(config.seed)
            .with_threads(config.threads);
        let points = sweep_failure_grid(&overlay, &base, &config.grid).unwrap();
        assert_eq!(points[0].result.occupied_nodes, 1 << 18);
        assert_eq!(points[0].result.routability, 1.0);
        assert!(points[1].result.routability > 0.5);
        assert_eq!(overlay.edge_count(), (1 << 18) * 20);
    }
}
