//! Experiment E1 — the worked hypercube example of Fig. 1–3.
//!
//! The paper walks through RCM on an 8-node hypercube rooted at node `011`:
//! the distance distribution is `n(h) = C(3, h)`, the per-hop success
//! probabilities are `1 − q^3`, `1 − q^2`, `1 − q`, and the probability of
//! reaching node `100` (three hops away) is their product. This harness
//! recomputes the table analytically and verifies it against exhaustive
//! Monte-Carlo measurement on the executable 8-node overlay.

use dht_overlay::{route, CanOverlay, FailureMask, Overlay, OverlayError};
use dht_rcm_core::{HypercubeGeometry, RoutingGeometry};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One row of the Fig. 3 table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Hop distance `h`.
    pub hops: u32,
    /// Number of nodes at that distance, `n(h) = C(3, h)`.
    pub nodes_at_distance: u64,
    /// Transition success probability `Pr(S_{h-1} → S_h) = 1 − q^{4−h}`.
    pub transition_success: f64,
    /// Cumulative success probability `p(h, q)`.
    pub cumulative_success: f64,
}

/// Full result of the worked example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Failure probability used.
    pub failure_probability: f64,
    /// The analytical table of Fig. 3.
    pub rows: Vec<Fig3Row>,
    /// Analytical probability of routing from 011 to 100 (three hops).
    pub analytical_p3: f64,
    /// Monte-Carlo estimate of the same probability on the executable
    /// overlay (conditioned on the source surviving, as RCM does).
    pub simulated_p3: f64,
    /// Number of Monte-Carlo trials behind the estimate.
    pub trials: u64,
}

/// Runs experiment E1.
///
/// # Errors
///
/// Propagates [`OverlayError`] from overlay construction (cannot fail for
/// `d = 3`).
pub fn run(q: f64, trials: u64, seed: u64) -> Result<Fig3Result, OverlayError> {
    let geometry = HypercubeGeometry::new();
    let rows: Vec<Fig3Row> = (1..=3u32)
        .map(|h| Fig3Row {
            hops: h,
            nodes_at_distance: geometry.ln_nodes_at_distance(3, h).exp().round() as u64,
            transition_success: 1.0 - q.powi((4 - h) as i32),
            cumulative_success: geometry.hop_success_probability(h, q),
        })
        .collect();
    let analytical_p3 = geometry.hop_success_probability(3, q);

    // Monte-Carlo on the real 8-node overlay: source 011, target 100.
    let overlay = CanOverlay::build(3)?;
    let space = overlay.key_space();
    let source = space.wrap(0b011);
    let target = space.wrap(0b100);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut delivered = 0u64;
    let mut attempts = 0u64;
    // Cap the number of sampled failure patterns so extreme q values cannot
    // spin forever waiting for both endpoints to survive.
    let mut draws_left = trials.saturating_mul(50).max(trials);
    while attempts < trials && draws_left > 0 {
        draws_left -= 1;
        let mask = FailureMask::sample(space, q, &mut rng);
        // Condition on the root surviving (RCM roots are surviving nodes); the
        // destination's own survival is part of p(h, q), so a dead target
        // counts as a failed route rather than being skipped.
        if mask.is_failed(source) {
            continue;
        }
        attempts += 1;
        if route(&overlay, source, target, &mask).is_delivered() {
            delivered += 1;
        }
    }
    Ok(Fig3Result {
        failure_probability: q,
        rows,
        analytical_p3,
        simulated_p3: if attempts == 0 {
            0.0
        } else {
            delivered as f64 / attempts as f64
        },
        trials: attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_table_matches_the_paper() {
        let result = run(0.5, 1_000, 1).unwrap();
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.rows[0].nodes_at_distance, 3);
        assert_eq!(result.rows[1].nodes_at_distance, 3);
        assert_eq!(result.rows[2].nodes_at_distance, 1);
        // Pr(S0 -> S1) = 1 - q^3, Pr(S1 -> S2) = 1 - q^2, Pr(S2 -> S3) = 1 - q.
        assert!((result.rows[0].transition_success - 0.875).abs() < 1e-12);
        assert!((result.rows[1].transition_success - 0.75).abs() < 1e-12);
        assert!((result.rows[2].transition_success - 0.5).abs() < 1e-12);
        assert!((result.analytical_p3 - 0.875 * 0.75 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn simulation_agrees_with_analysis_within_monte_carlo_noise() {
        let result = run(0.3, 20_000, 7).unwrap();
        assert!(
            (result.simulated_p3 - result.analytical_p3).abs() < 0.03,
            "analytical {} vs simulated {}",
            result.analytical_p3,
            result.simulated_p3
        );
        assert_eq!(result.trials, 20_000);
    }

    #[test]
    fn zero_failure_is_certain_delivery() {
        let result = run(0.0, 100, 3).unwrap();
        assert_eq!(result.analytical_p3, 1.0);
        assert_eq!(result.simulated_p3, 1.0);
    }
}
