//! Experiments E3/E4 — Fig. 6: analysis vs simulation at `N = 2^16`.
//!
//! Fig. 6(a) plots the percentage of failed paths for the tree, hypercube and
//! XOR geometries as the node failure probability grows from 0 to 90%;
//! Fig. 6(b) does the same for ring (Chord) routing, where the analytical
//! expression is an upper bound on the failed-path percentage. In the paper
//! the simulation points come from Gummadi et al.; here they are measured on
//! the executable overlays of `dht-overlay` under the identical
//! static-resilience model.

use dht_overlay::{
    CanOverlay, ChordOverlay, ChordVariant, KademliaOverlay, Overlay, OverlayError, PlaxtonOverlay,
};
use dht_rcm_core::{routability, Geometry, RcmError, RoutingGeometry, SystemSize};
use dht_sim::{SimError, SimulationRecord, StaticResilienceConfig, StaticResilienceExperiment};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the Fig. 6 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Config {
    /// Identifier length used for the analytical curves (the paper uses 16).
    pub analytical_bits: u32,
    /// Identifier length used for the simulated overlays. The paper's
    /// `2^16` is the default for the binaries; tests and benches use smaller
    /// sizes for speed.
    pub simulation_bits: u32,
    /// Source/destination pairs sampled per grid point.
    pub pairs: u64,
    /// Master seed for overlay construction, failure patterns and sampling.
    pub seed: u64,
    /// Failure-probability grid (fractions in `[0, 1)`).
    pub grid: Vec<f64>,
    /// Worker threads per measurement.
    pub threads: usize,
}

impl Fig6Config {
    /// The paper-scale configuration: analytical and simulated at `2^16`,
    /// failure probabilities 0–90% in 5% steps.
    #[must_use]
    pub fn paper_scale() -> Self {
        Fig6Config {
            analytical_bits: 16,
            simulation_bits: 16,
            pairs: 20_000,
            seed: 2006,
            grid: dht_mathkit::percent_grid(90, 5),
            threads: 4,
        }
    }

    /// A reduced configuration for tests and benches (seconds, not minutes).
    #[must_use]
    pub fn smoke() -> Self {
        Fig6Config {
            analytical_bits: 16,
            simulation_bits: 10,
            pairs: 2_000,
            seed: 2006,
            grid: dht_mathkit::percent_grid(80, 20),
            threads: 1,
        }
    }
}

/// Errors from the Fig. 6 harness.
#[derive(Debug)]
pub enum Fig6Error {
    /// Analytical evaluation failed.
    Rcm(RcmError),
    /// Overlay construction failed.
    Overlay(OverlayError),
    /// Simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for Fig6Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fig6Error::Rcm(err) => write!(f, "analytical evaluation failed: {err}"),
            Fig6Error::Overlay(err) => write!(f, "overlay construction failed: {err}"),
            Fig6Error::Sim(err) => write!(f, "simulation failed: {err}"),
        }
    }
}

impl std::error::Error for Fig6Error {}

impl From<RcmError> for Fig6Error {
    fn from(err: RcmError) -> Self {
        Fig6Error::Rcm(err)
    }
}
impl From<OverlayError> for Fig6Error {
    fn from(err: OverlayError) -> Self {
        Fig6Error::Overlay(err)
    }
}
impl From<SimError> for Fig6Error {
    fn from(err: SimError) -> Self {
        Fig6Error::Sim(err)
    }
}

/// Runs Fig. 6(a): tree, hypercube and XOR, analysis plus simulation.
///
/// # Errors
///
/// Returns [`Fig6Error`] if any component fails; degenerate analytical points
/// (too few expected survivors) are skipped like the paper's plot simply ends.
pub fn fig6a(config: &Fig6Config) -> Result<Vec<SimulationRecord>, Fig6Error> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let tree_overlay = PlaxtonOverlay::build(config.simulation_bits, &mut rng)?;
    let cube_overlay = CanOverlay::build(config.simulation_bits)?;
    let xor_overlay = KademliaOverlay::build(config.simulation_bits, &mut rng)?;

    let mut records = Vec::new();
    collect_geometry(
        "fig6a",
        config,
        &Geometry::tree(),
        &tree_overlay,
        &mut records,
    )?;
    collect_geometry(
        "fig6a",
        config,
        &Geometry::hypercube(),
        &cube_overlay,
        &mut records,
    )?;
    collect_geometry(
        "fig6a",
        config,
        &Geometry::xor(),
        &xor_overlay,
        &mut records,
    )?;
    Ok(records)
}

/// Runs Fig. 6(b): ring (Chord) routing, analysis plus simulation.
///
/// # Errors
///
/// See [`fig6a`].
pub fn fig6b(config: &Fig6Config) -> Result<Vec<SimulationRecord>, Fig6Error> {
    // Classic (deterministic-finger) Chord, as simulated by Gummadi et al.;
    // the paper's analysis uses the randomised variant, whose extra finger
    // placement noise is exactly what the lower-bound model abstracts away.
    let ring_overlay = ChordOverlay::build(config.simulation_bits, ChordVariant::Deterministic)?;
    let mut records = Vec::new();
    collect_geometry(
        "fig6b",
        config,
        &Geometry::ring(),
        &ring_overlay,
        &mut records,
    )?;
    Ok(records)
}

/// Evaluates one geometry across the whole grid, both analytically and by
/// simulation on the matching overlay.
fn collect_geometry<O>(
    experiment: &str,
    config: &Fig6Config,
    geometry: &Geometry,
    overlay: &O,
    records: &mut Vec<SimulationRecord>,
) -> Result<(), Fig6Error>
where
    O: Overlay + Sync + ?Sized,
{
    let analytical_size = SystemSize::power_of_two(config.analytical_bits)?;
    for (index, &q) in config.grid.iter().enumerate() {
        let analytical = match routability(geometry, analytical_size, q) {
            Ok(report) => Some(report.failed_path_percent),
            Err(RcmError::DegenerateSystem { .. }) => None,
            Err(other) => return Err(other.into()),
        };
        let sim_config = StaticResilienceConfig::new(q)?
            .with_pairs(config.pairs)
            .with_seed(config.seed.wrapping_add(index as u64 * 101))
            .with_threads(config.threads);
        let simulated = StaticResilienceExperiment::new(sim_config).run(overlay);
        let mut record = SimulationRecord {
            experiment: experiment.to_owned(),
            geometry: geometry.name().to_owned(),
            bits: config.analytical_bits,
            failure_probability: q,
            analytical_failed_percent: analytical,
            simulated_failed_percent: None,
            simulated_confidence_half_width: None,
        };
        if simulated.pairs_attempted > 0 {
            record = record.with_simulation(&simulated);
        }
        records.push(record);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_has_one_record_per_geometry_and_grid_point() {
        let config = Fig6Config::smoke();
        let records = fig6a(&config).unwrap();
        assert_eq!(records.len(), 3 * config.grid.len());
        assert!(records.iter().all(|r| r.experiment == "fig6a"));
    }

    #[test]
    fn fig6a_preserves_the_paper_ordering() {
        // At every failure probability the tree loses more paths than XOR,
        // which loses at least as many as the hypercube — both analytically
        // and in simulation.
        let config = Fig6Config::smoke();
        let records = fig6a(&config).unwrap();
        for &q in &config.grid {
            if q == 0.0 {
                continue;
            }
            let find = |name: &str| {
                records
                    .iter()
                    .find(|r| r.geometry == name && r.failure_probability == q)
                    .unwrap()
            };
            let tree = find("tree");
            let cube = find("hypercube");
            let xor = find("xor");
            if let (Some(t), Some(x), Some(c)) = (
                tree.analytical_failed_percent,
                xor.analytical_failed_percent,
                cube.analytical_failed_percent,
            ) {
                assert!(t >= x - 1e-9, "q={q}: tree {t} vs xor {x}");
                assert!(x >= c - 1e-9, "q={q}: xor {x} vs hypercube {c}");
            }
            if let (Some(t), Some(x)) =
                (tree.simulated_failed_percent, xor.simulated_failed_percent)
            {
                assert!(t >= x - 5.0, "q={q}: simulated tree {t} vs xor {x}");
            }
        }
    }

    #[test]
    fn fig6a_analysis_matches_simulation_at_moderate_failure() {
        // The headline claim of Fig. 6(a): the analytical curves fit the
        // simulation. At the smoke scale we allow a few percentage points of
        // finite-size and sampling error.
        let mut config = Fig6Config::smoke();
        config.simulation_bits = 12;
        config.analytical_bits = 12;
        config.grid = vec![0.1, 0.3, 0.5];
        config.pairs = 5_000;
        let records = fig6a(&config).unwrap();
        for record in &records {
            let (Some(analytic), Some(simulated)) = (
                record.analytical_failed_percent,
                record.simulated_failed_percent,
            ) else {
                continue;
            };
            let tolerance = 8.0 + 12.0 * record.failure_probability;
            assert!(
                (analytic - simulated).abs() < tolerance,
                "{} at q={}: analytic {analytic} vs simulated {simulated}",
                record.geometry,
                record.failure_probability
            );
        }
    }

    #[test]
    fn fig6b_analytical_upper_bounds_the_simulation() {
        // §4.3.3 / Fig. 6(b): the ring analysis over-estimates failed paths
        // because suboptimal progress is ignored.
        let mut config = Fig6Config::smoke();
        config.simulation_bits = 12;
        config.analytical_bits = 12;
        config.grid = vec![0.1, 0.2, 0.3, 0.5];
        config.pairs = 5_000;
        let records = fig6b(&config).unwrap();
        for record in &records {
            let (Some(analytic), Some(simulated)) = (
                record.analytical_failed_percent,
                record.simulated_failed_percent,
            ) else {
                continue;
            };
            assert!(
                analytic >= simulated - 2.0,
                "ring at q={}: analytic {analytic} should upper-bound simulated {simulated}",
                record.failure_probability
            );
        }
    }
}
