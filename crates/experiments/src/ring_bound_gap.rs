//! Experiment E11 — how tight is the Chord lower bound?
//!
//! The ring analysis of §4.3.3 ignores the progress made by suboptimal hops
//! and therefore under-estimates routability. Fig. 6(b) shows the resulting
//! gap to simulation is negligible below `q ≈ 20%` and grows with `q`. This
//! harness measures that gap directly.

use crate::fig6::{fig6b, Fig6Config, Fig6Error};
use serde::{Deserialize, Serialize};

/// The bound gap at one failure probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundGapPoint {
    /// Failure probability.
    pub failure_probability: f64,
    /// Analytical failed-path percentage (the upper bound).
    pub analytical_failed_percent: f64,
    /// Simulated failed-path percentage.
    pub simulated_failed_percent: f64,
    /// Bound slack: analytical minus simulated (non-negative when the bound
    /// holds).
    pub slack: f64,
}

/// Measures the bound gap over the configured grid.
///
/// # Errors
///
/// See [`fig6b`].
pub fn run(config: &Fig6Config) -> Result<Vec<BoundGapPoint>, Fig6Error> {
    let records = fig6b(config)?;
    Ok(records
        .into_iter()
        .filter_map(|record| {
            let analytical = record.analytical_failed_percent?;
            let simulated = record.simulated_failed_percent?;
            Some(BoundGapPoint {
                failure_probability: record.failure_probability,
                analytical_failed_percent: analytical,
                simulated_failed_percent: simulated,
                slack: analytical - simulated,
            })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> Fig6Config {
        let mut config = Fig6Config::smoke();
        config.simulation_bits = 12;
        config.analytical_bits = 12;
        config.grid = vec![0.1, 0.3, 0.5, 0.7];
        config.pairs = 4_000;
        config
    }

    #[test]
    fn the_bound_holds_everywhere() {
        let points = run(&test_config()).unwrap();
        assert_eq!(points.len(), 4);
        for point in &points {
            assert!(
                point.slack > -2.0,
                "bound violated at q={}: slack {}",
                point.failure_probability,
                point.slack
            );
        }
    }

    #[test]
    fn the_bound_is_tight_at_low_failure_probability() {
        // Fig. 6(b): "very close to simulation ... for failure probability
        // less than 20%".
        let points = run(&test_config()).unwrap();
        let low_q = points
            .iter()
            .find(|p| (p.failure_probability - 0.1).abs() < 1e-9)
            .unwrap();
        assert!(
            low_q.slack.abs() < 5.0,
            "slack at q=0.1 should be small, got {}",
            low_q.slack
        );
    }

    #[test]
    fn the_gap_grows_with_failure_probability() {
        let points = run(&test_config()).unwrap();
        let slack_at = |q: f64| {
            points
                .iter()
                .find(|p| (p.failure_probability - q).abs() < 1e-9)
                .unwrap()
                .slack
        };
        assert!(slack_at(0.7) > slack_at(0.1) - 1.0);
    }
}
