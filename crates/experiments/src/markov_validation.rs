//! Experiment E2/E8 — validating the closed-form `Q(m)` expressions against
//! the routing Markov chains of Fig. 4, 5 and 8.
//!
//! Every closed form in §4.3 of the paper was *derived* from a Markov chain;
//! this harness rebuilds those chains with `dht-markov`, solves them
//! numerically, and reports the worst absolute deviation of the closed-form
//! `p(h, q)` from the chain's absorption probability over a grid of `(h, q)`.

use dht_markov::chains::{hypercube_chain, ring_chain, symphony_chain, tree_chain, xor_chain};
use dht_markov::ChainError;
use dht_rcm_core::{success_probability, Geometry, RcmError, RoutingGeometry};
use serde::{Deserialize, Serialize};

/// Validation summary for one geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationRow {
    /// Geometry name.
    pub geometry: String,
    /// Largest hop/phase distance checked.
    pub max_distance: u32,
    /// Number of `(h, q)` grid points checked.
    pub points: u32,
    /// Worst absolute deviation between closed form and chain solution.
    pub max_absolute_error: f64,
    /// Mean absolute deviation over the grid.
    pub mean_absolute_error: f64,
}

/// Errors from the validation harness.
#[derive(Debug)]
pub enum ValidationError {
    /// Chain construction or solving failed.
    Chain(ChainError),
    /// Closed-form evaluation failed.
    Rcm(RcmError),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Chain(err) => write!(f, "Markov chain evaluation failed: {err}"),
            ValidationError::Rcm(err) => write!(f, "closed-form evaluation failed: {err}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<ChainError> for ValidationError {
    fn from(err: ChainError) -> Self {
        ValidationError::Chain(err)
    }
}
impl From<RcmError> for ValidationError {
    fn from(err: RcmError) -> Self {
        ValidationError::Rcm(err)
    }
}

/// Runs the validation over `h = 1..=max_distance` and the given failure
/// probabilities.
///
/// # Errors
///
/// Returns [`ValidationError`] if a chain cannot be built or a closed form
/// cannot be evaluated.
pub fn run(max_distance: u32, grid: &[f64]) -> Result<Vec<ValidationRow>, ValidationError> {
    /// Evaluates a chain's success probability at distance `h`, failure `q`.
    type ChainSuccess = Box<dyn Fn(u32, f64) -> Result<f64, ChainError>>;
    // (geometry, d used for closed forms, chain builder)
    let geometries: Vec<(Geometry, ChainSuccess)> = vec![
        (
            Geometry::tree(),
            Box::new(|h, q| tree_chain(h, q)?.success_probability()),
        ),
        (
            Geometry::hypercube(),
            Box::new(|h, q| hypercube_chain(h, q)?.success_probability()),
        ),
        (
            Geometry::xor(),
            Box::new(|h, q| xor_chain(h, q)?.success_probability()),
        ),
        (
            Geometry::ring(),
            Box::new(|h, q| ring_chain(h, q)?.success_probability()),
        ),
        (
            Geometry::symphony(1, 1)?,
            Box::new(move |h, q| {
                symphony_chain(h, q, 1, 1, max_distance.max(h))?.success_probability()
            }),
        ),
    ];

    let mut rows = Vec::with_capacity(geometries.len());
    for (geometry, chain_success) in &geometries {
        let mut max_error: f64 = 0.0;
        let mut total_error = 0.0;
        let mut points = 0u32;
        for h in 1..=max_distance {
            for &q in grid {
                let closed_form = success_probability(geometry, max_distance.max(h), h, q)?;
                let chain = chain_success(h, q)?;
                let error = (closed_form - chain).abs();
                max_error = max_error.max(error);
                total_error += error;
                points += 1;
            }
        }
        rows.push(ValidationRow {
            geometry: geometry.name().to_owned(),
            max_distance,
            points,
            max_absolute_error: max_error,
            mean_absolute_error: total_error / f64::from(points.max(1)),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_match_their_chains_to_high_precision() {
        let rows = run(12, &[0.05, 0.2, 0.5, 0.8]).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.max_absolute_error < 1e-8,
                "{}: max error {}",
                row.geometry,
                row.max_absolute_error
            );
            assert_eq!(row.points, 12 * 4);
        }
    }

    #[test]
    fn mean_error_is_no_larger_than_max_error() {
        let rows = run(8, &[0.1, 0.6]).unwrap();
        for row in &rows {
            assert!(row.mean_absolute_error <= row.max_absolute_error + 1e-15);
        }
    }

    #[test]
    fn invalid_grid_is_rejected() {
        assert!(run(6, &[0.5, 1.0]).is_err());
    }
}
