//! Validates every closed-form Q(m) against its routing Markov chain
//! (experiments E2/E8, Fig. 4, 5, 8).
//!
//! Usage: `cargo run -p dht-experiments --bin markov_validation`

use dht_experiments::markov_validation;
use dht_experiments::output::{default_output_dir, write_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = markov_validation::run(16, &[0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9])?;
    println!("Closed-form p(h,q) vs Markov-chain absorption probability");
    println!(
        "{:<10} {:>6} {:>8} {:>14} {:>14}",
        "geometry", "max h", "points", "max |err|", "mean |err|"
    );
    for row in &rows {
        println!(
            "{:<10} {:>6} {:>8} {:>14.3e} {:>14.3e}",
            row.geometry,
            row.max_distance,
            row.points,
            row.max_absolute_error,
            row.mean_absolute_error
        );
    }
    let path = write_json(&rows, &default_output_dir(), "markov_validation")?;
    println!("wrote {}", path.display());
    Ok(())
}
