//! Regenerates Fig. 7(a): failed paths vs failure probability at N = 2^100
//! for all five geometries (analytical).
//!
//! Usage: `cargo run -p dht-experiments --bin fig7a_asymptotic [--smoke]`

use dht_experiments::fig7::{fig7a, Fig7Config};
use dht_experiments::output::{default_output_dir, render_records_table, write_records_csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let config = if smoke {
        Fig7Config::smoke()
    } else {
        Fig7Config::paper_scale()
    };
    let records = fig7a(&config)?;
    println!(
        "Fig. 7(a): percent of failed paths in the asymptotic limit (N = 2^{})",
        config.asymptotic_bits
    );
    print!("{}", render_records_table(&records));
    let path = write_records_csv(&records, &default_output_dir(), "fig7a_asymptotic")?;
    println!("wrote {}", path.display());
    Ok(())
}
