//! Regenerates the §5 scalability classification table (experiment E7).
//!
//! Usage: `cargo run -p dht-experiments --bin scalability_table`

use dht_experiments::output::{default_output_dir, write_json};
use dht_experiments::scalability_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = scalability_table::run(&[0.05, 0.1, 0.3, 0.5])?;
    println!("Scalability of DHT routing geometries under random failure (Section 5)");
    print!("{}", scalability_table::render(&rows));
    let path = write_json(&rows, &default_output_dir(), "scalability_table")?;
    println!("wrote {}", path.display());
    Ok(())
}
