//! Live churn: continuous-time node sessions with Poisson lookup traffic,
//! frozen-table vs incrementally repaired overlays, validated against the
//! chain-predicted static routability at the stationary offline fraction.
//!
//! Usage: `cargo run --release -p dht-experiments --bin live_churn [--smoke]`

use dht_experiments::live_churn::{render_live_churn_table, run_grid, LiveChurnGridConfig};
use dht_experiments::output::{default_output_dir, write_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let grid = if smoke {
        LiveChurnGridConfig::smoke()
    } else {
        LiveChurnGridConfig::paper_scale()
    };
    let points = run_grid(&grid)?;
    println!(
        "Live churn: N = 2^{}, downtime E[D] = {}, horizon {} (warmup {}), {} replicas",
        grid.bits, grid.mean_downtime, grid.duration, grid.warmup, grid.replicas
    );
    print!("{}", render_live_churn_table(&points));
    let path = write_json(&points, &default_output_dir(), "live_churn")?;
    println!("wrote {}", path.display());
    Ok(())
}
