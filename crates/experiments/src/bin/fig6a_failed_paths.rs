//! Regenerates Fig. 6(a): failed paths vs failure probability at N = 2^16 for
//! the tree, hypercube and XOR geometries — analysis and simulation.
//!
//! Usage: `cargo run --release -p dht-experiments --bin fig6a_failed_paths [--smoke]`

use dht_experiments::fig6::{fig6a, Fig6Config};
use dht_experiments::output::{default_output_dir, render_records_table, write_records_csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let config = if smoke {
        Fig6Config::smoke()
    } else {
        Fig6Config::paper_scale()
    };
    let records = fig6a(&config)?;
    println!(
        "Fig. 6(a): percent of failed paths, N = 2^{} (simulation at 2^{})",
        config.analytical_bits, config.simulation_bits
    );
    print!("{}", render_records_table(&records));
    let path = write_records_csv(&records, &default_output_dir(), "fig6a_failed_paths")?;
    println!("wrote {}", path.display());
    Ok(())
}
