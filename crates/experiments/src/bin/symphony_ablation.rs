//! Sweeps Symphony's (k_n, k_s) parameters (experiment E10): how many
//! connections buy a target routability at a given size.
//!
//! Usage: `cargo run -p dht-experiments --bin symphony_ablation [q]`

use dht_experiments::output::{default_output_dir, write_json};
use dht_experiments::symphony_ablation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let q: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(0.2);
    let cells = symphony_ablation::run(&[16, 20, 24], q, 8)?;
    println!("Symphony routability (%) vs (k_n, k_s) at q = {q}");
    for &bits in &[16u32, 20, 24] {
        println!("\nN = 2^{bits}");
        print!("{:>6}", "kn\\ks");
        for ks in 1..=8u32 {
            print!("{ks:>8}");
        }
        println!();
        for kn in 1..=8u32 {
            print!("{kn:>6}");
            for ks in 1..=8u32 {
                let cell = cells
                    .iter()
                    .find(|c| c.bits == bits && c.near_neighbors == kn && c.shortcuts == ks);
                match cell {
                    Some(cell) => print!("{:>8.2}", cell.routability_percent),
                    None => print!("{:>8}", "-"),
                }
            }
            println!();
        }
        if let Some((kn, ks)) = symphony_ablation::minimum_configuration(&cells, bits, 95.0) {
            println!("smallest configuration reaching 95%: k_n = {kn}, k_s = {ks}");
        }
    }
    let path = write_json(&cells, &default_output_dir(), "symphony_ablation")?;
    println!("wrote {}", path.display());
    Ok(())
}
