//! Static resilience beyond the materialized ceiling (implicit backend,
//! `2^26`–`2^30`): see [`dht_experiments::implicit_scale`].

use dht_experiments::spec::{cli_main, Family};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    cli_main(Family::ImplicitScale)
}
