//! Regenerates Fig. 7(b): routability vs system size at q = 0.1 for all five
//! geometries (analytical).
//!
//! Usage: `cargo run -p dht-experiments --bin fig7b_routability_vs_n [--smoke]`

use dht_experiments::fig7::{fig7b, Fig7Config};
use dht_experiments::output::{default_output_dir, write_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let config = if smoke {
        Fig7Config::smoke()
    } else {
        Fig7Config::paper_scale()
    };
    let points = fig7b(&config)?;
    println!(
        "Fig. 7(b): routability (%) vs system size at q = {}",
        config.fixed_failure_probability
    );
    println!("{:<10} {:>6} {:>14}", "geometry", "bits", "routability %");
    for point in &points {
        println!(
            "{:<10} {:>6} {:>14.4}",
            point.geometry, point.bits, point.routability_percent
        );
    }
    let path = write_json(&points, &default_output_dir(), "fig7b_routability_vs_n")?;
    println!("wrote {}", path.display());
    Ok(())
}
