//! Regenerates the worked hypercube example of Fig. 1–3 (experiment E1).
//!
//! Usage: `cargo run -p dht-experiments --bin fig3_hypercube_example [q]`

use dht_experiments::fig3;
use dht_experiments::output::{default_output_dir, write_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let q: f64 = std::env::args()
        .nth(1)
        .map(|arg| arg.parse())
        .transpose()?
        .unwrap_or(0.3);
    let result = fig3::run(q, 200_000, 2006)?;
    println!("Fig. 3 worked example (d = 3 hypercube, q = {q})");
    println!(
        "{:>4} {:>6} {:>22} {:>12}",
        "h", "n(h)", "Pr(S_h -> S_h+1)", "p(h,q)"
    );
    for row in &result.rows {
        println!(
            "{:>4} {:>6} {:>22.6} {:>12.6}",
            row.hops, row.nodes_at_distance, row.transition_success, row.cumulative_success
        );
    }
    println!(
        "\nanalytical p(3, q) = {:.6}   simulated = {:.6}   ({} trials)",
        result.analytical_p3, result.simulated_p3, result.trials
    );
    let path = write_json(&result, &default_output_dir(), "fig3_hypercube_example")?;
    println!("wrote {}", path.display());
    Ok(())
}
