//! Regenerates Fig. 6(b): failed paths vs failure probability for ring
//! (Chord) routing — the analytical upper bound and the simulation.
//!
//! Usage: `cargo run --release -p dht-experiments --bin fig6b_ring [--smoke]`

use dht_experiments::fig6::{fig6b, Fig6Config};
use dht_experiments::output::{default_output_dir, render_records_table, write_records_csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let config = if smoke {
        Fig6Config::smoke()
    } else {
        Fig6Config::paper_scale()
    };
    let records = fig6b(&config)?;
    println!(
        "Fig. 6(b): percent of failed paths for ring routing, N = 2^{}",
        config.analytical_bits
    );
    print!("{}", render_records_table(&records));
    let path = write_records_csv(&records, &default_output_dir(), "fig6b_ring")?;
    println!("wrote {}", path.display());
    Ok(())
}
