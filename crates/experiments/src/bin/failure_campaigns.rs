//! Structured fault-injection campaigns with graceful-degradation reporting.
//!
//! Uniform CLI: `--spec <file>` (a dht-scenario/v1 JSON spec), `--smoke`,
//! `--out <dir>`, `--compact`, `--threads <n>`.

use dht_experiments::spec::{cli_main, Family};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    cli_main(Family::FailureCampaign)
}
