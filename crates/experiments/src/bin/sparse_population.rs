//! Measures static resilience over a sparsely occupied identifier space —
//! the ROADMAP's new scenario axis, beyond the paper's fully populated model.
//!
//! The paper-scale run builds ring, XOR and hypercube overlays over `2^18`
//! occupied identifiers in a `2^20` space (25% occupancy) and sweeps failure
//! probabilities 0–50%.
//!
//! Usage: `cargo run --release -p dht-experiments --bin sparse_population [--smoke]`

use dht_experiments::output::{default_output_dir, write_json};
use dht_experiments::sparse_population::{
    render_sparse_table, sparse_population_resilience, SparsePopulationConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let config = if smoke {
        SparsePopulationConfig::smoke()
    } else {
        SparsePopulationConfig::paper_scale()
    };
    let records = sparse_population_resilience(&config)?;
    println!(
        "Sparse-population static resilience: 2^{} identifier space, {} occupied nodes ({:.0}% occupancy)",
        config.bits,
        config.occupied,
        100.0 * config.occupied as f64 / (1u64 << config.bits) as f64,
    );
    print!("{}", render_sparse_table(&records));
    let path = write_json(&records, &default_output_dir(), "sparse_population")?;
    println!("wrote {}", path.display());
    Ok(())
}
