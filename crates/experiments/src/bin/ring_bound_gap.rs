//! Measures the tightness of the Chord lower bound (experiment E11,
//! the Fig. 6(b) discussion).
//!
//! Usage: `cargo run --release -p dht-experiments --bin ring_bound_gap [--smoke]`

use dht_experiments::fig6::Fig6Config;
use dht_experiments::output::{default_output_dir, write_json};
use dht_experiments::ring_bound_gap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let config = if smoke {
        Fig6Config::smoke()
    } else {
        Fig6Config::paper_scale()
    };
    let points = ring_bound_gap::run(&config)?;
    println!("Chord bound slack (analytical failed % minus simulated failed %)");
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "q", "analytical %", "simulated %", "slack"
    );
    for point in &points {
        println!(
            "{:>6.2} {:>14.2} {:>14.2} {:>10.2}",
            point.failure_probability,
            point.analytical_failed_percent,
            point.simulated_failed_percent,
            point.slack
        );
    }
    let path = write_json(&points, &default_output_dir(), "ring_bound_gap")?;
    println!("wrote {}", path.display());
    Ok(())
}
