//! Contrasts connected components with reachable components (experiment E9,
//! the §1 observation that connectivity does not imply routability).
//!
//! Usage: `cargo run --release -p dht-experiments --bin percolation_contrast [bits] [q]`

use dht_experiments::output::{default_output_dir, write_json};
use dht_experiments::percolation_contrast;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let bits: u32 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(12);
    let q: f64 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(0.3);
    let rows = percolation_contrast::run(bits, q, 32, 2006)?;
    println!("Connected vs reachable components at N = 2^{bits}, q = {q}");
    println!(
        "{:<10} {:>14} {:>14} {:>8}",
        "geometry", "connected frac", "reachable frac", "gap"
    );
    for row in &rows {
        println!(
            "{:<10} {:>14.4} {:>14.4} {:>8.4}",
            row.geometry,
            row.mean_connected_fraction,
            row.mean_reachable_fraction,
            row.gap()
        );
    }
    let path = write_json(&rows, &default_output_dir(), "percolation_contrast")?;
    println!("wrote {}", path.display());
    Ok(())
}
