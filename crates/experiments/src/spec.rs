//! The declarative scenario front door: [`ScenarioSpec`].
//!
//! Every experiment of this crate used to be reachable only through its own
//! binary with its own argument conventions. A `ScenarioSpec` replaces that
//! with one fully-serializable description — experiment family and
//! parameters, root seed, thread budget — that can live in a JSON file,
//! travel over a socket, and be hashed into a stable content key:
//!
//! * [`ScenarioSpec::from_json`] / [`ScenarioSpec::to_json_pretty`] move
//!   specs in and out of files (schema-versioned: [`SPEC_SCHEMA`]).
//! * [`ScenarioSpec::content_hash_hex`] is a canonical content hash —
//!   key-order independent, and blind to the `name` label and the
//!   `execution` block (thread budgets do not change results; every
//!   measurement engine in this workspace is thread-count invariant).
//! * [`run_spec`] executes any spec and returns a schema-versioned
//!   [`ScenarioReport`] plus the human-readable table the old binaries
//!   printed.
//! * [`cli_main`] is the shared binary front end: every experiment binary
//!   is now `cli_main(Family::X)` and accepts `--spec <file>`, `--smoke`,
//!   `--out <dir>`, `--compact` and `--threads <n>` uniformly (plus each
//!   binary's old positional arguments as a deprecated fallback).
//!
//! ## Seed derivation convention
//!
//! A spec carries one root seed. Workloads that need several independent
//! streams split it with [`dht_sim::SeedSequence`] children — grid sweeps
//! seed point `k` with child `k` ([`dht_sim::sweep_failure_grid`],
//! [`crate::live_churn::run_grid`]), and the static-resilience family uses
//! child 0 for overlay construction and child 1 as the measurement root.

use crate::failure_campaigns::{render_failure_campaign_table, FailureCampaignConfig};
use crate::fig3;
use crate::fig6::{fig6a, fig6b, Fig6Config, Fig6Error};
use crate::fig7::{fig7a, fig7b, Fig7Config, Fig7bPoint};
use crate::implicit_scale::{render_implicit_scale_table, ImplicitScaleConfig};
use crate::live_churn::{
    chain_predicted_routability_with, render_live_churn_table, LiveChurnGridConfig,
};
use crate::markov_validation::{self, ValidationError, ValidationRow};
use crate::output::{default_output_dir, render_records_table, ReportMode, ReportWriter};
use crate::percolation_contrast::{self, ContrastRow};
use crate::ring_bound_gap::{self, BoundGapPoint};
use crate::scalability_table;
use crate::sparse_population::{
    render_sparse_table, sparse_population_resilience, SparsePopulationConfig,
    SparsePopulationError,
};
use crate::symphony_ablation::{self, AblationCell};
use dht_markov::{ChainError, ChainFamily};
use dht_overlay::{
    CanOverlay, ChordOverlay, ChordVariant, FailurePlan, KademliaOverlay, Overlay, OverlayError,
    PlaxtonOverlay, SymphonyOverlay,
};
use dht_rcm_core::{classify, routability, Geometry, RcmError, ScalabilityReport, SystemSize};
use dht_sim::{
    sweep_failure_grid, SeedSequence, SimError, SimulationRecord, StaticResilienceConfig,
    StaticResilienceResult,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::path::PathBuf;

/// Schema identifier written into (and required from) every spec file.
pub const SPEC_SCHEMA: &str = "dht-scenario/v1";

/// Schema identifier written into every report envelope.
pub const REPORT_SCHEMA: &str = "dht-scenario-report/v1";

/// How a spec is executed: knobs that change resource usage but — by the
/// thread-invariance guarantee of every engine in this workspace — never
/// change results. Excluded from the content hash for exactly that reason.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionSpec {
    /// Worker-thread budget for the measurement engines.
    pub threads: usize,
    /// Which routing-table backend materializes the overlay.
    pub backend: Backend,
}

/// Which routing-table backend a spec runs against.
///
/// Both backends produce bit-identical results wherever both can run (the
/// implicit backend replays the materialized construction's RNG stream), so
/// — like [`ExecutionSpec::threads`] — the choice is excluded from the
/// content hash: it changes the resource profile, never the report.
///
/// [`Backend::Materialized`] builds every routing table up front and is
/// limited to [`dht_overlay::MAX_OVERLAY_BITS`]-bit spaces;
/// [`Backend::Implicit`] regenerates rows on demand and routes full
/// populations up to [`dht_overlay::MAX_IMPLICIT_OVERLAY_BITS`] bits.
/// Families other than `static_resilience` currently ignore the field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Precomputed tables in memory (the default).
    #[default]
    Materialized,
    /// Rows regenerated from the construction seed on demand.
    Implicit,
}

impl Backend {
    /// Stable lowercase name (the spec-file form).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Materialized => "materialized",
            Backend::Implicit => "implicit",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// Hand-written (rather than derived) so the spec-file form is lowercase and
// a missing field reads as the materialized default, keeping every spec
// written before the field existed parseable.
impl Serialize for Backend {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_owned())
    }
}

impl Deserialize for Backend {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        match value {
            Value::Null => Ok(Backend::Materialized),
            Value::Str(name) if name == "materialized" => Ok(Backend::Materialized),
            Value::Str(name) if name == "implicit" => Ok(Backend::Implicit),
            other => Err(serde::Error::custom(format!(
                "unknown backend {other:?} (expected \"materialized\" or \"implicit\")"
            ))),
        }
    }
}

/// A fully-serializable description of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Schema version tag; must equal [`SPEC_SCHEMA`].
    pub schema: String,
    /// Human-readable label; also the output file stem. Not hashed.
    pub name: String,
    /// Root seed; all randomness derives from it (see the module docs for
    /// the [`SeedSequence`] child convention).
    pub seed: u64,
    /// The experiment family and its parameters.
    pub experiment: ExperimentSpec,
    /// Optional execution knobs (thread budget). Not hashed.
    pub execution: Option<ExecutionSpec>,
}

/// The experiment families a spec can describe, with their parameters.
///
/// Serialized externally tagged: `{"Fig6a": { ... }}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentSpec {
    /// The worked 8-node hypercube example of Fig. 1–3.
    Fig3 {
        /// Node failure probability `q`.
        failure_probability: f64,
        /// Monte-Carlo trials for the simulated `p(3, q)`.
        trials: u64,
    },
    /// Fig. 6(a): tree/hypercube/XOR failed paths, analysis + simulation.
    Fig6a {
        /// Identifier length for the analytical curves.
        analytical_bits: u32,
        /// Identifier length for the simulated overlays.
        simulation_bits: u32,
        /// Source/destination pairs per grid point.
        pairs: u64,
        /// Failure-probability grid.
        grid: Vec<f64>,
    },
    /// Fig. 6(b): ring (Chord) failed paths, analysis + simulation.
    Fig6b {
        /// Identifier length for the analytical curves.
        analytical_bits: u32,
        /// Identifier length for the simulated overlay.
        simulation_bits: u32,
        /// Source/destination pairs per grid point.
        pairs: u64,
        /// Failure-probability grid.
        grid: Vec<f64>,
    },
    /// Fig. 7(a): asymptotic failed paths for all five geometries.
    Fig7a {
        /// Identifier length of the asymptotic panel.
        asymptotic_bits: u32,
        /// Failure-probability grid.
        grid: Vec<f64>,
        /// Failure probability of the size sweep (unused by this panel but
        /// part of the shared Fig. 7 configuration).
        fixed_failure_probability: f64,
        /// Identifier lengths of the size sweep (unused by this panel).
        size_bits: Vec<u32>,
        /// Symphony near neighbours `k_n`.
        symphony_near_neighbors: u32,
        /// Symphony shortcuts `k_s`.
        symphony_shortcuts: u32,
    },
    /// Fig. 7(b): routability vs system size at fixed `q`.
    Fig7b {
        /// Identifier length of the asymptotic panel (unused by this panel).
        asymptotic_bits: u32,
        /// Failure-probability grid (unused by this panel).
        grid: Vec<f64>,
        /// Failure probability of the size sweep.
        fixed_failure_probability: f64,
        /// Identifier lengths of the size sweep.
        size_bits: Vec<u32>,
        /// Symphony near neighbours `k_n`.
        symphony_near_neighbors: u32,
        /// Symphony shortcuts `k_s`.
        symphony_shortcuts: u32,
    },
    /// The §5 scalability classification table.
    ScalabilityTable {
        /// Failure probabilities to probe numerically.
        failure_probabilities: Vec<f64>,
    },
    /// Closed forms vs the routing Markov chains of Fig. 4, 5, 8.
    MarkovValidation {
        /// Largest hop/phase distance checked.
        max_distance: u32,
        /// Failure-probability grid.
        grid: Vec<f64>,
    },
    /// The §1 connected-vs-reachable component contrast.
    PercolationContrast {
        /// Identifier length.
        bits: u32,
        /// Failure probability applied.
        failure_probability: f64,
        /// Surviving roots examined per geometry.
        roots: u32,
    },
    /// Symphony `(k_n, k_s)` routability ablation.
    SymphonyAblation {
        /// Identifier lengths to sweep.
        bits_list: Vec<u32>,
        /// Failure probability.
        failure_probability: f64,
        /// Largest `k_n` and `k_s` swept (grid is `1..=max` squared).
        max_connections: u32,
    },
    /// Tightness of the Chord lower bound (Fig. 6(b) discussion).
    RingBoundGap {
        /// Identifier length for the analytical curves.
        analytical_bits: u32,
        /// Identifier length for the simulated overlay.
        simulation_bits: u32,
        /// Source/destination pairs per grid point.
        pairs: u64,
        /// Failure-probability grid.
        grid: Vec<f64>,
    },
    /// Static resilience over a sparsely occupied identifier space.
    SparsePopulation {
        /// Identifier length `d` of the space.
        bits: u32,
        /// Occupied identifiers (`n <= 2^d`).
        occupied: u64,
        /// Also measure the fully populated baseline.
        include_full_baseline: bool,
        /// Source/destination pairs per grid point.
        pairs: u64,
        /// Failure-probability grid.
        grid: Vec<f64>,
    },
    /// Continuous-time churn with frozen vs repaired overlays.
    LiveChurn {
        /// Identifier length (full population).
        bits: u32,
        /// Mean session times `E[L]` to sweep.
        session_times: Vec<f64>,
        /// Poisson lookup rates to sweep.
        lookup_rates: Vec<f64>,
        /// Mean offline time `E[D]`.
        mean_downtime: f64,
        /// Simulated horizon per replica.
        duration: f64,
        /// Measurement-window start.
        warmup: f64,
        /// Independent replicas per point.
        replicas: u32,
    },
    /// Structured fault-injection campaigns: geometry × plan ×
    /// failed-fraction grid with graceful-degradation reporting.
    FailureCampaign {
        /// Identifier length (full population).
        bits: u32,
        /// Geometries to sweep.
        geometries: Vec<String>,
        /// Plan templates (fractions re-targeted by the grid).
        plans: Vec<FailurePlan>,
        /// Target failed fractions to sweep each plan across.
        failed_fractions: Vec<f64>,
        /// Source/destination pairs per failure pattern.
        pairs: u64,
        /// Independent failure patterns per grid point.
        patterns: u32,
    },
    /// One geometry's static resilience + scalability report — the report
    /// server's query family ("N, geometry, q → resilience report").
    StaticResilience {
        /// Geometry name (`ring`, `xor`, `tree`, `hypercube`, `symphony`).
        geometry: String,
        /// Identifier length (full population, `N = 2^bits`).
        bits: u32,
        /// Failure-probability grid.
        grid: Vec<f64>,
        /// Source/destination pairs per grid point.
        pairs: u64,
        /// Independent failure patterns averaged per grid point.
        trials: u32,
    },
    /// Static resilience beyond the materialized ceiling: the implicit
    /// backend at sizes up to `2^30` nodes, with resident-memory accounting.
    ImplicitScale {
        /// Geometry name (`ring`, `xor`, `tree`, `hypercube`, `symphony`).
        geometry: String,
        /// Identifier lengths to sweep (full populations).
        bits_list: Vec<u32>,
        /// Node failure probability applied at every size.
        failure_probability: f64,
        /// Survivor pairs routed per size.
        pairs: u64,
    },
}

/// The experiment families, used to key binaries and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Family {
    Fig3,
    Fig6a,
    Fig6b,
    Fig7a,
    Fig7b,
    ScalabilityTable,
    MarkovValidation,
    PercolationContrast,
    SymphonyAblation,
    RingBoundGap,
    SparsePopulation,
    LiveChurn,
    FailureCampaign,
    StaticResilience,
    ImplicitScale,
}

/// All families, in the order the docs list them.
pub const FAMILIES: [Family; 15] = [
    Family::Fig3,
    Family::Fig6a,
    Family::Fig6b,
    Family::Fig7a,
    Family::Fig7b,
    Family::ScalabilityTable,
    Family::MarkovValidation,
    Family::PercolationContrast,
    Family::SymphonyAblation,
    Family::RingBoundGap,
    Family::SparsePopulation,
    Family::LiveChurn,
    Family::FailureCampaign,
    Family::StaticResilience,
    Family::ImplicitScale,
];

impl Family {
    /// Stable snake_case name (used in report envelopes and file stems).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Fig3 => "fig3",
            Family::Fig6a => "fig6a",
            Family::Fig6b => "fig6b",
            Family::Fig7a => "fig7a",
            Family::Fig7b => "fig7b",
            Family::ScalabilityTable => "scalability_table",
            Family::MarkovValidation => "markov_validation",
            Family::PercolationContrast => "percolation_contrast",
            Family::SymphonyAblation => "symphony_ablation",
            Family::RingBoundGap => "ring_bound_gap",
            Family::SparsePopulation => "sparse_population",
            Family::LiveChurn => "live_churn",
            Family::FailureCampaign => "failure_campaigns",
            Family::StaticResilience => "static_resilience",
            Family::ImplicitScale => "implicit_scale",
        }
    }

    /// Parses a family from its [`Family::name`] string.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        FAMILIES.into_iter().find(|family| family.name() == name)
    }

    /// The output file stem the family's binary historically used.
    #[must_use]
    pub fn output_stem(self) -> &'static str {
        match self {
            Family::Fig3 => "fig3_hypercube_example",
            Family::Fig6a => "fig6a_failed_paths",
            Family::Fig6b => "fig6b_ring",
            Family::Fig7a => "fig7a_asymptotic",
            Family::Fig7b => "fig7b_routability_vs_n",
            other => other.name(),
        }
    }

    /// The canonical spec of this family: the paper-scale configuration, or
    /// the reduced smoke configuration the binaries run with `--smoke`.
    #[must_use]
    pub fn default_spec(self, smoke: bool) -> ScenarioSpec {
        let experiment = match self {
            Family::Fig3 => ExperimentSpec::Fig3 {
                failure_probability: 0.3,
                trials: if smoke { 20_000 } else { 200_000 },
            },
            Family::Fig6a | Family::Fig6b | Family::RingBoundGap => {
                let config = if smoke {
                    Fig6Config::smoke()
                } else {
                    Fig6Config::paper_scale()
                };
                let fields = |config: Fig6Config| {
                    (
                        config.analytical_bits,
                        config.simulation_bits,
                        config.pairs,
                        config.grid,
                    )
                };
                let (analytical_bits, simulation_bits, pairs, grid) = fields(config.clone());
                let seeded = ScenarioSpec {
                    schema: SPEC_SCHEMA.to_owned(),
                    name: self.output_stem().to_owned(),
                    seed: config.seed,
                    experiment: match self {
                        Family::Fig6a => ExperimentSpec::Fig6a {
                            analytical_bits,
                            simulation_bits,
                            pairs,
                            grid,
                        },
                        Family::Fig6b => ExperimentSpec::Fig6b {
                            analytical_bits,
                            simulation_bits,
                            pairs,
                            grid,
                        },
                        _ => ExperimentSpec::RingBoundGap {
                            analytical_bits,
                            simulation_bits,
                            pairs,
                            grid,
                        },
                    },
                    execution: Some(ExecutionSpec {
                        threads: config.threads,
                        backend: Backend::Materialized,
                    }),
                };
                return seeded;
            }
            Family::Fig7a | Family::Fig7b => {
                let config = if smoke {
                    Fig7Config::smoke()
                } else {
                    Fig7Config::paper_scale()
                };
                let mut spec: ScenarioSpec = config.into();
                if self == Family::Fig7b {
                    if let ExperimentSpec::Fig7a {
                        asymptotic_bits,
                        grid,
                        fixed_failure_probability,
                        size_bits,
                        symphony_near_neighbors,
                        symphony_shortcuts,
                    } = spec.experiment
                    {
                        spec.experiment = ExperimentSpec::Fig7b {
                            asymptotic_bits,
                            grid,
                            fixed_failure_probability,
                            size_bits,
                            symphony_near_neighbors,
                            symphony_shortcuts,
                        };
                    }
                }
                spec.name = self.output_stem().to_owned();
                return spec;
            }
            Family::ScalabilityTable => ExperimentSpec::ScalabilityTable {
                failure_probabilities: vec![0.05, 0.1, 0.3, 0.5],
            },
            Family::MarkovValidation => ExperimentSpec::MarkovValidation {
                max_distance: if smoke { 8 } else { 16 },
                grid: vec![0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9],
            },
            Family::PercolationContrast => ExperimentSpec::PercolationContrast {
                bits: if smoke { 9 } else { 12 },
                failure_probability: 0.3,
                roots: if smoke { 10 } else { 32 },
            },
            Family::SymphonyAblation => ExperimentSpec::SymphonyAblation {
                bits_list: if smoke {
                    vec![12, 16]
                } else {
                    vec![16, 20, 24]
                },
                failure_probability: 0.2,
                max_connections: if smoke { 4 } else { 8 },
            },
            Family::SparsePopulation => {
                let config = if smoke {
                    SparsePopulationConfig::smoke()
                } else {
                    SparsePopulationConfig::paper_scale()
                };
                let mut spec: ScenarioSpec = config.into();
                spec.name = self.output_stem().to_owned();
                return spec;
            }
            Family::LiveChurn => {
                let config = if smoke {
                    LiveChurnGridConfig::smoke()
                } else {
                    LiveChurnGridConfig::paper_scale()
                };
                let mut spec: ScenarioSpec = config.into();
                spec.name = self.output_stem().to_owned();
                return spec;
            }
            Family::FailureCampaign => {
                let config = if smoke {
                    FailureCampaignConfig::smoke()
                } else {
                    FailureCampaignConfig::paper_scale()
                };
                let mut spec: ScenarioSpec = config.into();
                spec.name = self.output_stem().to_owned();
                return spec;
            }
            Family::StaticResilience => ExperimentSpec::StaticResilience {
                geometry: "ring".to_owned(),
                bits: if smoke { 10 } else { 16 },
                grid: dht_mathkit::percent_grid(
                    if smoke { 80 } else { 90 },
                    if smoke { 20 } else { 5 },
                ),
                pairs: if smoke { 2_000 } else { 20_000 },
                trials: 1,
            },
            Family::ImplicitScale => {
                let config = if smoke {
                    ImplicitScaleConfig::smoke()
                } else {
                    ImplicitScaleConfig::paper_scale()
                };
                let mut spec: ScenarioSpec = config.into();
                spec.name = self.output_stem().to_owned();
                return spec;
            }
        };
        ScenarioSpec::new(self.output_stem(), 2006, experiment)
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ExperimentSpec {
    /// The family this experiment belongs to.
    #[must_use]
    pub fn family(&self) -> Family {
        match self {
            ExperimentSpec::Fig3 { .. } => Family::Fig3,
            ExperimentSpec::Fig6a { .. } => Family::Fig6a,
            ExperimentSpec::Fig6b { .. } => Family::Fig6b,
            ExperimentSpec::Fig7a { .. } => Family::Fig7a,
            ExperimentSpec::Fig7b { .. } => Family::Fig7b,
            ExperimentSpec::ScalabilityTable { .. } => Family::ScalabilityTable,
            ExperimentSpec::MarkovValidation { .. } => Family::MarkovValidation,
            ExperimentSpec::PercolationContrast { .. } => Family::PercolationContrast,
            ExperimentSpec::SymphonyAblation { .. } => Family::SymphonyAblation,
            ExperimentSpec::RingBoundGap { .. } => Family::RingBoundGap,
            ExperimentSpec::SparsePopulation { .. } => Family::SparsePopulation,
            ExperimentSpec::LiveChurn { .. } => Family::LiveChurn,
            ExperimentSpec::FailureCampaign { .. } => Family::FailureCampaign,
            ExperimentSpec::StaticResilience { .. } => Family::StaticResilience,
            ExperimentSpec::ImplicitScale { .. } => Family::ImplicitScale,
        }
    }
}

impl ScenarioSpec {
    /// Creates a spec with the current schema tag and no execution block.
    #[must_use]
    pub fn new(name: impl Into<String>, seed: u64, experiment: ExperimentSpec) -> Self {
        ScenarioSpec {
            schema: SPEC_SCHEMA.to_owned(),
            name: name.into(),
            seed,
            experiment,
            execution: None,
        }
    }

    /// The canonical static-resilience query spec the report server answers:
    /// geometry, size and failure probability, with explicit measurement
    /// budget. Identical queries produce identical specs — and therefore
    /// identical content hashes — which is what makes them cacheable.
    #[must_use]
    pub fn static_resilience(
        geometry: &str,
        bits: u32,
        failure_probability: f64,
        pairs: u64,
        trials: u32,
        seed: u64,
    ) -> Self {
        ScenarioSpec::new(
            format!("{geometry}_2e{bits}_q{failure_probability}"),
            seed,
            ExperimentSpec::StaticResilience {
                geometry: geometry.to_owned(),
                bits,
                grid: vec![failure_probability],
                pairs,
                trials,
            },
        )
    }

    /// The spec's experiment family.
    #[must_use]
    pub fn family(&self) -> Family {
        self.experiment.family()
    }

    /// The effective thread budget: the execution block's, or 1.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.execution
            .as_ref()
            .map_or(1, |execution| execution.threads.max(1))
    }

    /// The effective routing-table backend: the execution block's, or
    /// [`Backend::Materialized`].
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.execution
            .as_ref()
            .map_or(Backend::Materialized, |execution| execution.backend)
    }

    /// Checks the schema tag and basic well-formedness.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] on an unknown schema tag or an empty
    /// name.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.schema != SPEC_SCHEMA {
            return Err(SpecError::Invalid(format!(
                "unsupported spec schema {:?} (this build reads {SPEC_SCHEMA:?})",
                self.schema
            )));
        }
        if self.name.is_empty() {
            return Err(SpecError::Invalid("spec name must not be empty".to_owned()));
        }
        Ok(())
    }

    /// Parses and validates a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on malformed JSON and
    /// [`SpecError::Invalid`] on schema mismatches.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let spec: ScenarioSpec =
            serde_json::from_str(text).map_err(|err| SpecError::Parse(err.to_string()))?;
        spec.validate()?;
        Ok(spec)
    }

    /// Pretty-printed JSON form (the spec-file format).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is infallible")
    }

    /// Compact JSON form (the wire format).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("spec serialization is infallible")
    }

    /// Stable 64-bit content hash (FNV-1a over canonical JSON).
    ///
    /// Canonicalization sorts object keys recursively, so field order never
    /// matters, and drops the top-level `name` and `execution` entries: the
    /// label is presentation, and thread budgets cannot change results
    /// (every engine is thread-count invariant), so neither may change the
    /// cache key. The `schema` tag *is* hashed — a schema bump invalidates
    /// every cache.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut value = self.to_value();
        if let Value::Object(entries) = &mut value {
            entries.retain(|(key, _)| key != "name" && key != "execution");
        }
        let canonical = canonicalize(&value);
        let json =
            serde_json::to_string(&canonical).expect("canonical JSON serialization is infallible");
        fnv1a64(json.as_bytes())
    }

    /// [`ScenarioSpec::content_hash`] as a fixed-width hex string.
    #[must_use]
    pub fn content_hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }
}

/// Recursively sorts object keys so structurally equal values serialize to
/// byte-equal JSON.
fn canonicalize(value: &Value) -> Value {
    match value {
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        Value::Object(entries) => {
            let mut entries: Vec<(String, Value)> = entries
                .iter()
                .map(|(key, item)| (key.clone(), canonicalize(item)))
                .collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(entries)
        }
        other => other.clone(),
    }
}

/// FNV-1a, 64-bit.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Conversions between the legacy per-experiment configs and ScenarioSpec.
// ---------------------------------------------------------------------------

impl From<Fig6Config> for ScenarioSpec {
    /// Lossless: seed and threads move to the spec's root fields. The
    /// canonical family for a bare `Fig6Config` is Fig. 6(a).
    fn from(config: Fig6Config) -> Self {
        ScenarioSpec {
            schema: SPEC_SCHEMA.to_owned(),
            name: Family::Fig6a.output_stem().to_owned(),
            seed: config.seed,
            experiment: ExperimentSpec::Fig6a {
                analytical_bits: config.analytical_bits,
                simulation_bits: config.simulation_bits,
                pairs: config.pairs,
                grid: config.grid,
            },
            execution: Some(ExecutionSpec {
                threads: config.threads,
                backend: Backend::Materialized,
            }),
        }
    }
}

impl TryFrom<&ScenarioSpec> for Fig6Config {
    type Error = SpecError;

    /// Accepts any Fig. 6-shaped family (Fig6a, Fig6b, RingBoundGap).
    fn try_from(spec: &ScenarioSpec) -> Result<Self, SpecError> {
        match &spec.experiment {
            ExperimentSpec::Fig6a {
                analytical_bits,
                simulation_bits,
                pairs,
                grid,
            }
            | ExperimentSpec::Fig6b {
                analytical_bits,
                simulation_bits,
                pairs,
                grid,
            }
            | ExperimentSpec::RingBoundGap {
                analytical_bits,
                simulation_bits,
                pairs,
                grid,
            } => Ok(Fig6Config {
                analytical_bits: *analytical_bits,
                simulation_bits: *simulation_bits,
                pairs: *pairs,
                seed: spec.seed,
                grid: grid.clone(),
                threads: spec.threads(),
            }),
            other => Err(SpecError::Invalid(format!(
                "expected a fig6-family spec, found {}",
                other.family()
            ))),
        }
    }
}

impl From<Fig7Config> for ScenarioSpec {
    /// Lossless: `Fig7Config` carries no seed or thread budget, so the spec
    /// gets seed 0 and no execution block. The canonical family is Fig. 7(a).
    fn from(config: Fig7Config) -> Self {
        ScenarioSpec {
            schema: SPEC_SCHEMA.to_owned(),
            name: Family::Fig7a.output_stem().to_owned(),
            seed: 0,
            experiment: ExperimentSpec::Fig7a {
                asymptotic_bits: config.asymptotic_bits,
                grid: config.grid,
                fixed_failure_probability: config.fixed_failure_probability,
                size_bits: config.size_bits,
                symphony_near_neighbors: config.symphony_near_neighbors,
                symphony_shortcuts: config.symphony_shortcuts,
            },
            execution: None,
        }
    }
}

impl TryFrom<&ScenarioSpec> for Fig7Config {
    type Error = SpecError;

    /// Accepts either Fig. 7 panel (both carry the full configuration).
    fn try_from(spec: &ScenarioSpec) -> Result<Self, SpecError> {
        match &spec.experiment {
            ExperimentSpec::Fig7a {
                asymptotic_bits,
                grid,
                fixed_failure_probability,
                size_bits,
                symphony_near_neighbors,
                symphony_shortcuts,
            }
            | ExperimentSpec::Fig7b {
                asymptotic_bits,
                grid,
                fixed_failure_probability,
                size_bits,
                symphony_near_neighbors,
                symphony_shortcuts,
            } => Ok(Fig7Config {
                asymptotic_bits: *asymptotic_bits,
                grid: grid.clone(),
                fixed_failure_probability: *fixed_failure_probability,
                size_bits: size_bits.clone(),
                symphony_near_neighbors: *symphony_near_neighbors,
                symphony_shortcuts: *symphony_shortcuts,
            }),
            other => Err(SpecError::Invalid(format!(
                "expected a fig7-family spec, found {}",
                other.family()
            ))),
        }
    }
}

impl From<SparsePopulationConfig> for ScenarioSpec {
    /// Lossless: seed and threads move to the spec's root fields.
    fn from(config: SparsePopulationConfig) -> Self {
        ScenarioSpec {
            schema: SPEC_SCHEMA.to_owned(),
            name: Family::SparsePopulation.output_stem().to_owned(),
            seed: config.seed,
            experiment: ExperimentSpec::SparsePopulation {
                bits: config.bits,
                occupied: config.occupied,
                include_full_baseline: config.include_full_baseline,
                pairs: config.pairs,
                grid: config.grid,
            },
            execution: Some(ExecutionSpec {
                threads: config.threads,
                backend: Backend::Materialized,
            }),
        }
    }
}

impl TryFrom<&ScenarioSpec> for SparsePopulationConfig {
    type Error = SpecError;

    fn try_from(spec: &ScenarioSpec) -> Result<Self, SpecError> {
        match &spec.experiment {
            ExperimentSpec::SparsePopulation {
                bits,
                occupied,
                include_full_baseline,
                pairs,
                grid,
            } => Ok(SparsePopulationConfig {
                bits: *bits,
                occupied: *occupied,
                include_full_baseline: *include_full_baseline,
                pairs: *pairs,
                seed: spec.seed,
                grid: grid.clone(),
                threads: spec.threads(),
            }),
            other => Err(SpecError::Invalid(format!(
                "expected a sparse_population spec, found {}",
                other.family()
            ))),
        }
    }
}

impl From<LiveChurnGridConfig> for ScenarioSpec {
    /// Lossless: seed and threads move to the spec's root fields.
    fn from(config: LiveChurnGridConfig) -> Self {
        ScenarioSpec {
            schema: SPEC_SCHEMA.to_owned(),
            name: Family::LiveChurn.output_stem().to_owned(),
            seed: config.seed,
            experiment: ExperimentSpec::LiveChurn {
                bits: config.bits,
                session_times: config.session_times,
                lookup_rates: config.lookup_rates,
                mean_downtime: config.mean_downtime,
                duration: config.duration,
                warmup: config.warmup,
                replicas: config.replicas,
            },
            execution: Some(ExecutionSpec {
                threads: config.threads,
                backend: Backend::Materialized,
            }),
        }
    }
}

impl TryFrom<&ScenarioSpec> for LiveChurnGridConfig {
    type Error = SpecError;

    fn try_from(spec: &ScenarioSpec) -> Result<Self, SpecError> {
        match &spec.experiment {
            ExperimentSpec::LiveChurn {
                bits,
                session_times,
                lookup_rates,
                mean_downtime,
                duration,
                warmup,
                replicas,
            } => Ok(LiveChurnGridConfig {
                bits: *bits,
                session_times: session_times.clone(),
                lookup_rates: lookup_rates.clone(),
                mean_downtime: *mean_downtime,
                duration: *duration,
                warmup: *warmup,
                replicas: *replicas,
                threads: spec.threads(),
                seed: spec.seed,
            }),
            other => Err(SpecError::Invalid(format!(
                "expected a live_churn spec, found {}",
                other.family()
            ))),
        }
    }
}

impl From<FailureCampaignConfig> for ScenarioSpec {
    /// Lossless: seed and threads move to the spec's root fields.
    fn from(config: FailureCampaignConfig) -> Self {
        ScenarioSpec {
            schema: SPEC_SCHEMA.to_owned(),
            name: Family::FailureCampaign.output_stem().to_owned(),
            seed: config.seed,
            experiment: ExperimentSpec::FailureCampaign {
                bits: config.bits,
                geometries: config.geometries,
                plans: config.plans,
                failed_fractions: config.failed_fractions,
                pairs: config.pairs,
                patterns: config.patterns,
            },
            execution: Some(ExecutionSpec {
                threads: config.threads,
                backend: Backend::Materialized,
            }),
        }
    }
}

impl TryFrom<&ScenarioSpec> for FailureCampaignConfig {
    type Error = SpecError;

    fn try_from(spec: &ScenarioSpec) -> Result<Self, SpecError> {
        match &spec.experiment {
            ExperimentSpec::FailureCampaign {
                bits,
                geometries,
                plans,
                failed_fractions,
                pairs,
                patterns,
            } => Ok(FailureCampaignConfig {
                bits: *bits,
                geometries: geometries.clone(),
                plans: plans.clone(),
                failed_fractions: failed_fractions.clone(),
                pairs: *pairs,
                patterns: *patterns,
                threads: spec.threads(),
                seed: spec.seed,
            }),
            other => Err(SpecError::Invalid(format!(
                "expected a failure_campaigns spec, found {}",
                other.family()
            ))),
        }
    }
}

impl From<ImplicitScaleConfig> for ScenarioSpec {
    /// Lossless: seed and threads move to the spec's root fields; the
    /// execution block records the implicit backend the family always uses.
    fn from(config: ImplicitScaleConfig) -> Self {
        ScenarioSpec {
            schema: SPEC_SCHEMA.to_owned(),
            name: Family::ImplicitScale.output_stem().to_owned(),
            seed: config.seed,
            experiment: ExperimentSpec::ImplicitScale {
                geometry: config.geometry,
                bits_list: config.bits_list,
                failure_probability: config.failure_probability,
                pairs: config.pairs,
            },
            execution: Some(ExecutionSpec {
                threads: config.threads,
                backend: Backend::Implicit,
            }),
        }
    }
}

impl TryFrom<&ScenarioSpec> for ImplicitScaleConfig {
    type Error = SpecError;

    fn try_from(spec: &ScenarioSpec) -> Result<Self, SpecError> {
        match &spec.experiment {
            ExperimentSpec::ImplicitScale {
                geometry,
                bits_list,
                failure_probability,
                pairs,
            } => Ok(ImplicitScaleConfig {
                geometry: geometry.clone(),
                bits_list: bits_list.clone(),
                failure_probability: *failure_probability,
                pairs: *pairs,
                seed: spec.seed,
                threads: spec.threads(),
            }),
            other => Err(SpecError::Invalid(format!(
                "expected an implicit_scale spec, found {}",
                other.family()
            ))),
        }
    }
}

impl TryFrom<&ScenarioSpec> for StaticResilienceConfig {
    type Error = SpecError;

    /// The sweep *base* configuration of a static-resilience spec: `q = 0`
    /// (the grid is swept separately), with the measurement-root seed
    /// (`SeedSequence` child 1 of the spec seed — child 0 seeds overlay
    /// construction, matching [`run_spec`]).
    fn try_from(spec: &ScenarioSpec) -> Result<Self, SpecError> {
        match &spec.experiment {
            ExperimentSpec::StaticResilience { pairs, trials, .. } => {
                Ok(StaticResilienceConfig::new(0.0)?
                    .with_pairs(*pairs)
                    .with_trials(*trials)
                    .with_seed(SeedSequence::new(spec.seed).child(1))
                    .with_threads(spec.threads()))
            }
            other => Err(SpecError::Invalid(format!(
                "expected a static_resilience spec, found {}",
                other.family()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors from parsing, validating or running a spec.
#[derive(Debug)]
pub enum SpecError {
    /// The JSON text could not be parsed into a spec.
    Parse(String),
    /// The spec is well-formed JSON but semantically invalid.
    Invalid(String),
    /// Filesystem I/O failed.
    Io(String),
    /// Analytical evaluation failed.
    Rcm(RcmError),
    /// Overlay construction failed.
    Overlay(OverlayError),
    /// Simulation failed.
    Sim(SimError),
    /// A Markov chain could not be built or solved.
    Chain(ChainError),
    /// The Fig. 6 harness failed.
    Fig6(Fig6Error),
    /// The sparse-population harness failed.
    Sparse(SparsePopulationError),
    /// The Markov-validation harness failed.
    Validation(ValidationError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(message) => write!(f, "spec parse failed: {message}"),
            SpecError::Invalid(message) => write!(f, "invalid spec: {message}"),
            SpecError::Io(message) => write!(f, "spec I/O failed: {message}"),
            SpecError::Rcm(err) => write!(f, "analytical evaluation failed: {err}"),
            SpecError::Overlay(err) => write!(f, "overlay construction failed: {err}"),
            SpecError::Sim(err) => write!(f, "simulation failed: {err}"),
            SpecError::Chain(err) => write!(f, "chain evaluation failed: {err}"),
            SpecError::Fig6(err) => write!(f, "{err}"),
            SpecError::Sparse(err) => write!(f, "{err}"),
            SpecError::Validation(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<RcmError> for SpecError {
    fn from(err: RcmError) -> Self {
        SpecError::Rcm(err)
    }
}
impl From<OverlayError> for SpecError {
    fn from(err: OverlayError) -> Self {
        SpecError::Overlay(err)
    }
}
impl From<SimError> for SpecError {
    fn from(err: SimError) -> Self {
        SpecError::Sim(err)
    }
}
impl From<ChainError> for SpecError {
    fn from(err: ChainError) -> Self {
        SpecError::Chain(err)
    }
}
impl From<Fig6Error> for SpecError {
    fn from(err: Fig6Error) -> Self {
        SpecError::Fig6(err)
    }
}
impl From<SparsePopulationError> for SpecError {
    fn from(err: SparsePopulationError) -> Self {
        SpecError::Sparse(err)
    }
}
impl From<ValidationError> for SpecError {
    fn from(err: ValidationError) -> Self {
        SpecError::Validation(err)
    }
}
impl From<std::io::Error> for SpecError {
    fn from(err: std::io::Error) -> Self {
        SpecError::Io(err.to_string())
    }
}

// ---------------------------------------------------------------------------
// Reports and execution
// ---------------------------------------------------------------------------

/// The schema-versioned envelope every spec run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Report schema tag ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// The spec's name label.
    pub name: String,
    /// The spec's family name.
    pub family: String,
    /// The spec's canonical content hash (hex) — the cache key.
    pub spec_hash: String,
    /// The spec's root seed.
    pub seed: u64,
    /// The family-specific result payload.
    pub payload: Value,
}

/// Everything one spec run yields: the report envelope plus the
/// presentation the binaries print.
#[derive(Debug, Clone)]
pub struct SpecOutcome {
    /// The serializable report.
    pub report: ScenarioReport,
    /// One-line summary (what the binaries print first).
    pub headline: String,
    /// Fixed-width result table.
    pub table: String,
    /// Records for families whose binaries also emit CSV.
    pub csv_records: Option<Vec<SimulationRecord>>,
}

/// Executes a spec. `threads_override` (the `--threads` flag or a server's
/// budget) takes precedence over the spec's execution block; results are
/// identical either way — thread budgets only change wall-clock time.
///
/// # Errors
///
/// Returns [`SpecError`] if the spec is invalid or any harness fails.
pub fn run_spec(
    spec: &ScenarioSpec,
    threads_override: Option<usize>,
) -> Result<SpecOutcome, SpecError> {
    spec.validate()?;
    let threads = threads_override.unwrap_or_else(|| spec.threads()).max(1);
    let family = spec.family();
    let (payload, headline, table, csv_records) = match &spec.experiment {
        ExperimentSpec::Fig3 {
            failure_probability,
            trials,
        } => {
            let result = fig3::run(*failure_probability, *trials, spec.seed)?;
            let headline =
                format!("Fig. 3 worked example (d = 3 hypercube, q = {failure_probability})");
            let table = render_fig3_table(&result);
            (result.to_value(), headline, table, None)
        }
        ExperimentSpec::Fig6a { .. } => {
            let config = Fig6Config::try_from(spec)?.with_threads_override(threads);
            let records = fig6a(&config)?;
            let headline = format!(
                "Fig. 6(a): percent of failed paths, N = 2^{} (simulation at 2^{})",
                config.analytical_bits, config.simulation_bits
            );
            let table = render_records_table(&records);
            (records.to_value(), headline, table, Some(records))
        }
        ExperimentSpec::Fig6b { .. } => {
            let config = Fig6Config::try_from(spec)?.with_threads_override(threads);
            let records = fig6b(&config)?;
            let headline = format!(
                "Fig. 6(b): percent of failed paths for ring routing, N = 2^{}",
                config.analytical_bits
            );
            let table = render_records_table(&records);
            (records.to_value(), headline, table, Some(records))
        }
        ExperimentSpec::Fig7a { .. } => {
            let config = Fig7Config::try_from(spec)?;
            let records = fig7a(&config)?;
            let headline = format!(
                "Fig. 7(a): percent of failed paths in the asymptotic limit (N = 2^{})",
                config.asymptotic_bits
            );
            let table = render_records_table(&records);
            (records.to_value(), headline, table, Some(records))
        }
        ExperimentSpec::Fig7b { .. } => {
            let config = Fig7Config::try_from(spec)?;
            let points = fig7b(&config)?;
            let headline = format!(
                "Fig. 7(b): routability (%) vs system size at q = {}",
                config.fixed_failure_probability
            );
            let table = render_fig7b_table(&points);
            (points.to_value(), headline, table, None)
        }
        ExperimentSpec::ScalabilityTable {
            failure_probabilities,
        } => {
            let rows = scalability_table::run(failure_probabilities)?;
            let headline =
                "Scalability of DHT routing geometries under random failure (Section 5)".to_owned();
            let table = scalability_table::render(&rows);
            (rows.to_value(), headline, table, None)
        }
        ExperimentSpec::MarkovValidation { max_distance, grid } => {
            let rows = markov_validation::run(*max_distance, grid)?;
            let headline = "Closed-form p(h,q) vs Markov-chain absorption probability".to_owned();
            let table = render_validation_table(&rows);
            (rows.to_value(), headline, table, None)
        }
        ExperimentSpec::PercolationContrast {
            bits,
            failure_probability,
            roots,
        } => {
            let rows = percolation_contrast::run(*bits, *failure_probability, *roots, spec.seed)?;
            let headline = format!(
                "Connected vs reachable components at N = 2^{bits}, q = {failure_probability}"
            );
            let table = render_contrast_table(&rows);
            (rows.to_value(), headline, table, None)
        }
        ExperimentSpec::SymphonyAblation {
            bits_list,
            failure_probability,
            max_connections,
        } => {
            let cells = symphony_ablation::run(bits_list, *failure_probability, *max_connections)?;
            let headline =
                format!("Symphony routability (%) vs (k_n, k_s) at q = {failure_probability}");
            let table = render_ablation_table(&cells, bits_list, *max_connections);
            (cells.to_value(), headline, table, None)
        }
        ExperimentSpec::RingBoundGap { .. } => {
            let config = Fig6Config::try_from(spec)?.with_threads_override(threads);
            let points = ring_bound_gap::run(&config)?;
            let headline =
                "Chord bound slack (analytical failed % minus simulated failed %)".to_owned();
            let table = render_bound_gap_table(&points);
            (points.to_value(), headline, table, None)
        }
        ExperimentSpec::SparsePopulation { .. } => {
            let mut config = SparsePopulationConfig::try_from(spec)?;
            config.threads = threads;
            let records = sparse_population_resilience(&config)?;
            let headline = format!(
                "Sparse-population static resilience: 2^{} identifier space, {} occupied nodes ({:.0}% occupancy)",
                config.bits,
                config.occupied,
                100.0 * config.occupied as f64 / (1u64 << config.bits) as f64,
            );
            let table = render_sparse_table(&records);
            (records.to_value(), headline, table, None)
        }
        ExperimentSpec::LiveChurn { .. } => {
            let mut grid = LiveChurnGridConfig::try_from(spec)?;
            grid.threads = threads;
            let points = crate::live_churn::run_grid(&grid)?;
            let headline = format!(
                "Live churn: N = 2^{}, downtime E[D] = {}, horizon {} (warmup {}), {} replicas",
                grid.bits, grid.mean_downtime, grid.duration, grid.warmup, grid.replicas
            );
            let table = render_live_churn_table(&points);
            (points.to_value(), headline, table, None)
        }
        ExperimentSpec::FailureCampaign { .. } => {
            let mut config = FailureCampaignConfig::try_from(spec)?;
            config.threads = threads;
            let points = crate::failure_campaigns::run_grid(&config)?;
            let headline = format!(
                "Failure campaigns: N = 2^{}, {} geometries x {} plans x {} fractions",
                config.bits,
                config.geometries.len(),
                config.plans.len(),
                config.failed_fractions.len()
            );
            let table = render_failure_campaign_table(&points);
            (points.to_value(), headline, table, None)
        }
        ExperimentSpec::ImplicitScale { .. } => {
            let mut config = ImplicitScaleConfig::try_from(spec)?;
            config.threads = threads;
            let points = crate::implicit_scale::run(&config)?;
            let sizes = config
                .bits_list
                .iter()
                .map(|bits| format!("2^{bits}"))
                .collect::<Vec<_>>()
                .join(", ");
            let headline = format!(
                "Implicit-table static resilience: {} at q = {}, sizes {sizes}",
                config.geometry, config.failure_probability
            );
            let table = render_implicit_scale_table(&points);
            (points.to_value(), headline, table, None)
        }
        ExperimentSpec::StaticResilience {
            geometry,
            bits,
            grid,
            pairs,
            trials,
        } => {
            let overlay = match spec.backend() {
                Backend::Materialized => build_full_overlay(geometry, *bits, spec.seed)?,
                // Same construction stream (SeedSequence child 0) as the
                // materialized builders, so the backends agree bit for bit.
                Backend::Implicit => crate::implicit_scale::build_implicit_overlay(
                    geometry,
                    *bits,
                    SeedSequence::new(spec.seed).child(0),
                )?,
            };
            let report = static_resilience_report_with(
                geometry,
                *bits,
                grid,
                *pairs,
                *trials,
                spec.seed,
                threads,
                overlay.as_ref(),
                direct_chain_solve,
            )?;
            let headline = format!("Static resilience + scalability: {geometry} at N = 2^{bits}");
            let table = render_resilience_table(&report);
            (report.to_value(), headline, table, None)
        }
    };
    Ok(SpecOutcome {
        report: ScenarioReport {
            schema: REPORT_SCHEMA.to_owned(),
            name: spec.name.clone(),
            family: family.name().to_owned(),
            spec_hash: spec.content_hash_hex(),
            seed: spec.seed,
            payload,
        },
        headline,
        table,
        csv_records,
    })
}

impl Fig6Config {
    /// Replaces the thread budget (spec execution override).
    #[must_use]
    fn with_threads_override(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

// ---------------------------------------------------------------------------
// The static-resilience report family (the server's query shape)
// ---------------------------------------------------------------------------

/// One grid point of a [`StaticResilienceReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePoint {
    /// Failure probability of this point.
    pub failure_probability: f64,
    /// Closed-form routability (`None` if the system degenerates there).
    pub analytical_routability: Option<f64>,
    /// Closed-form failed-path percentage.
    pub analytical_failed_percent: Option<f64>,
    /// Markov-chain-predicted routability (`None` for symphony).
    pub chain_predicted_routability: Option<f64>,
    /// The measured result on the executable overlay.
    pub simulated: StaticResilienceResult,
}

/// The "N, geometry, q → resilience + scalability" report the server
/// materializes per query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticResilienceReport {
    /// Geometry name.
    pub geometry: String,
    /// Identifier length (`N = 2^bits`).
    pub bits: u32,
    /// One point per grid failure probability.
    pub points: Vec<ResiliencePoint>,
    /// The §5 scalability classification at the first positive grid `q`
    /// (or `q = 0.1` when the grid has none).
    pub scalability: ScalabilityReport,
}

/// Builds the fully populated overlay for a geometry name. Construction
/// randomness comes from `SeedSequence` child 0 of `seed` (child 1 is the
/// measurement root — see the module docs). Symphony uses the paper's basic
/// `(k_n, k_s) = (1, 1)` parameters.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] for unknown geometry names and
/// [`SpecError::Overlay`] if construction fails.
pub fn build_full_overlay(
    geometry: &str,
    bits: u32,
    seed: u64,
) -> Result<Box<dyn Overlay>, SpecError> {
    let mut rng = ChaCha8Rng::seed_from_u64(SeedSequence::new(seed).child(0));
    Ok(match geometry {
        "ring" => Box::new(ChordOverlay::build(bits, ChordVariant::Deterministic)?),
        "xor" => Box::new(KademliaOverlay::build(bits, &mut rng)?),
        "tree" => Box::new(PlaxtonOverlay::build(bits, &mut rng)?),
        "hypercube" => Box::new(CanOverlay::build(bits)?),
        "symphony" => Box::new(SymphonyOverlay::build(bits, 1, 1, &mut rng)?),
        other => {
            return Err(SpecError::Invalid(format!(
                "unknown geometry {other:?} (expected ring, xor, tree, hypercube or symphony)"
            )))
        }
    })
}

/// The analytical geometry model matching an overlay geometry name
/// (symphony at the paper's `(1, 1)`).
fn analytic_geometry(name: &str) -> Result<Geometry, SpecError> {
    Ok(match name {
        "ring" => Geometry::ring(),
        "xor" => Geometry::xor(),
        "tree" => Geometry::tree(),
        "hypercube" => Geometry::hypercube(),
        "symphony" => Geometry::symphony(1, 1)?,
        other => return Err(SpecError::Invalid(format!("unknown geometry {other:?}"))),
    })
}

/// The direct (uncached) chain solve [`run_spec`] uses; the report server
/// substitutes a [`dht_markov::ChainCache`]-backed closure instead.
pub fn direct_chain_solve(family: ChainFamily, h: u32, q: f64) -> Result<f64, ChainError> {
    let mut cacheless = dht_markov::ChainCache::new();
    cacheless.success_probability(family, h, q)
}

/// Materializes a [`StaticResilienceReport`]: closed forms, chain
/// predictions (through `solve`, so callers can inject a cache) and
/// measured resilience on `overlay` across the failure grid.
///
/// The overlay must match `geometry`/`bits`; callers that cache overlays
/// (the report server) pass the cached instance, everyone else builds one
/// with [`build_full_overlay`].
///
/// # Errors
///
/// Returns [`SpecError`] if any analytical, chain or simulation component
/// fails.
#[allow(clippy::too_many_arguments)]
pub fn static_resilience_report_with<F>(
    geometry: &str,
    bits: u32,
    grid: &[f64],
    pairs: u64,
    trials: u32,
    seed: u64,
    threads: usize,
    overlay: &dyn Overlay,
    mut solve: F,
) -> Result<StaticResilienceReport, SpecError>
where
    F: FnMut(ChainFamily, u32, f64) -> Result<f64, ChainError>,
{
    let model = analytic_geometry(geometry)?;
    let base = StaticResilienceConfig::new(0.0)?
        .with_pairs(pairs)
        .with_trials(trials)
        .with_seed(SeedSequence::new(seed).child(1))
        .with_threads(threads);
    let swept = sweep_failure_grid(overlay, &base, grid)?;
    let size = SystemSize::power_of_two(bits)?;
    let mut points = Vec::with_capacity(swept.len());
    for point in swept {
        let q = point.failure_probability;
        let analytical = match routability(&model, size, q) {
            Ok(report) => Some((report.routability, report.failed_path_percent)),
            Err(RcmError::DegenerateSystem { .. }) => None,
            Err(other) => return Err(other.into()),
        };
        let chain_predicted = chain_predicted_routability_with(geometry, bits, q, &mut solve)
            .map_err(SpecError::Chain)?;
        points.push(ResiliencePoint {
            failure_probability: q,
            analytical_routability: analytical.map(|(routable, _)| routable),
            analytical_failed_percent: analytical.map(|(_, failed)| failed),
            chain_predicted_routability: chain_predicted,
            simulated: point.result,
        });
    }
    let probe_q = grid.iter().copied().find(|&q| q > 0.0).unwrap_or(0.1);
    let scalability = classify(&model, probe_q)?;
    Ok(StaticResilienceReport {
        geometry: geometry.to_owned(),
        bits,
        points,
        scalability,
    })
}

// ---------------------------------------------------------------------------
// Table renderers (moved out of the per-family binaries)
// ---------------------------------------------------------------------------

fn render_fig3_table(result: &fig3::Fig3Result) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>22} {:>12}",
        "h", "n(h)", "Pr(S_h -> S_h+1)", "p(h,q)"
    );
    for row in &result.rows {
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>22.6} {:>12.6}",
            row.hops, row.nodes_at_distance, row.transition_success, row.cumulative_success
        );
    }
    let _ = writeln!(
        out,
        "\nanalytical p(3, q) = {:.6}   simulated = {:.6}   ({} trials)",
        result.analytical_p3, result.simulated_p3, result.trials
    );
    out
}

fn render_fig7b_table(points: &[Fig7bPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>14}",
        "geometry", "bits", "routability %"
    );
    for point in points {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>14.4}",
            point.geometry, point.bits, point.routability_percent
        );
    }
    out
}

fn render_validation_table(rows: &[ValidationRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>8} {:>14} {:>14}",
        "geometry", "max h", "points", "max |err|", "mean |err|"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>8} {:>14.3e} {:>14.3e}",
            row.geometry,
            row.max_distance,
            row.points,
            row.max_absolute_error,
            row.mean_absolute_error
        );
    }
    out
}

fn render_contrast_table(rows: &[ContrastRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>8}",
        "geometry", "connected frac", "reachable frac", "gap"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>14.4} {:>14.4} {:>8.4}",
            row.geometry,
            row.mean_connected_fraction,
            row.mean_reachable_fraction,
            row.gap()
        );
    }
    out
}

fn render_bound_gap_table(points: &[BoundGapPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>14} {:>10}",
        "q", "analytical %", "simulated %", "slack"
    );
    for point in points {
        let _ = writeln!(
            out,
            "{:>6.2} {:>14.2} {:>14.2} {:>10.2}",
            point.failure_probability,
            point.analytical_failed_percent,
            point.simulated_failed_percent,
            point.slack
        );
    }
    out
}

fn render_ablation_table(
    cells: &[AblationCell],
    bits_list: &[u32],
    max_connections: u32,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for &bits in bits_list {
        let _ = writeln!(out, "\nN = 2^{bits}");
        let _ = write!(out, "{:>6}", "kn\\ks");
        for ks in 1..=max_connections {
            let _ = write!(out, "{ks:>8}");
        }
        let _ = writeln!(out);
        for kn in 1..=max_connections {
            let _ = write!(out, "{kn:>6}");
            for ks in 1..=max_connections {
                let cell = cells
                    .iter()
                    .find(|c| c.bits == bits && c.near_neighbors == kn && c.shortcuts == ks);
                match cell {
                    Some(cell) => {
                        let _ = write!(out, "{:>8.2}", cell.routability_percent);
                    }
                    None => {
                        let _ = write!(out, "{:>8}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        if let Some((kn, ks)) = symphony_ablation::minimum_configuration(cells, bits, 95.0) {
            let _ = writeln!(
                out,
                "smallest configuration reaching 95%: k_n = {kn}, k_s = {ks}"
            );
        }
    }
    out
}

fn render_resilience_table(report: &StaticResilienceReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>12} {:>10}",
        "q", "analytic %", "chain %", "simulated %", "mean hops"
    );
    let percent =
        |value: Option<f64>| value.map_or_else(|| "-".to_owned(), |v| format!("{:.2}", 100.0 * v));
    for point in &report.points {
        let _ = writeln!(
            out,
            "{:>6.2} {:>12} {:>12} {:>12.2} {:>10.2}",
            point.failure_probability,
            percent(point.analytical_routability),
            percent(point.chain_predicted_routability),
            100.0 * point.simulated.routability,
            point.simulated.mean_hops,
        );
    }
    let _ = writeln!(
        out,
        "scalability: analytic {} / numeric {:?} (lim p = {:.4})",
        report.scalability.analytic,
        report.scalability.numeric,
        report.scalability.limiting_success_probability
    );
    out
}

// ---------------------------------------------------------------------------
// The shared binary front end
// ---------------------------------------------------------------------------

/// Runs one experiment binary: parses the uniform CLI, executes the spec
/// and writes the report. Every `src/bin/` target is a one-line call here.
///
/// # Errors
///
/// Returns any parse, I/O or harness error (binaries bubble it to `main`).
pub fn cli_main(family: Family) -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_cli(family, &args)
}

/// [`cli_main`] with explicit arguments (testable).
///
/// # Errors
///
/// See [`cli_main`].
pub fn run_cli(family: Family, args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut spec_path: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut smoke = false;
    let mut compact = false;
    let mut threads: Option<usize> = None;
    let mut positionals: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--spec" => {
                spec_path = Some(PathBuf::from(
                    iter.next().ok_or("--spec needs a file path")?,
                ));
            }
            "--out" => {
                out_dir = Some(PathBuf::from(iter.next().ok_or("--out needs a directory")?));
            }
            "--threads" => {
                threads = Some(iter.next().ok_or("--threads needs a count")?.parse()?);
            }
            "--smoke" => smoke = true,
            "--compact" => compact = true,
            "--help" | "-h" => {
                println!(
                    "usage: {} [--spec FILE] [--smoke] [--out DIR] [--compact] [--threads N]",
                    family.name()
                );
                return Ok(());
            }
            other => positionals.push(other.to_owned()),
        }
    }

    let mut spec = if let Some(path) = &spec_path {
        let text = std::fs::read_to_string(path)?;
        let spec = ScenarioSpec::from_json(&text)?;
        if spec.family() != family {
            return Err(format!(
                "spec {} is a {} scenario, but this binary runs {}",
                path.display(),
                spec.family(),
                family
            )
            .into());
        }
        spec
    } else {
        family.default_spec(smoke)
    };

    if !positionals.is_empty() {
        eprintln!(
            "warning: positional arguments are deprecated and will be removed; \
             pass --spec <file> instead (see the README's spec schema reference)"
        );
        apply_legacy_positionals(&mut spec, family, &positionals)?;
    }

    let outcome = run_spec(&spec, threads)?;
    println!("{}", outcome.headline);
    print!("{}", outcome.table);

    let writer =
        ReportWriter::new(out_dir.unwrap_or_else(default_output_dir)).with_mode(if compact {
            ReportMode::Compact
        } else {
            ReportMode::Pretty
        });
    let path = writer.write_report(&outcome.report)?;
    println!("wrote {}", path.display());
    if let Some(records) = &outcome.csv_records {
        let csv_path = writer.write_csv(records, &outcome.report.name)?;
        println!("wrote {}", csv_path.display());
    }
    Ok(())
}

/// Maps each binary's historical positional arguments onto the spec.
fn apply_legacy_positionals(
    spec: &mut ScenarioSpec,
    family: Family,
    positionals: &[String],
) -> Result<(), Box<dyn std::error::Error>> {
    match (family, &mut spec.experiment) {
        (
            Family::Fig3,
            ExperimentSpec::Fig3 {
                failure_probability,
                ..
            },
        ) => {
            if let Some(q) = positionals.first() {
                *failure_probability = q.parse()?;
            }
        }
        (
            Family::PercolationContrast,
            ExperimentSpec::PercolationContrast {
                bits,
                failure_probability,
                ..
            },
        ) => {
            if let Some(value) = positionals.first() {
                *bits = value.parse()?;
            }
            if let Some(value) = positionals.get(1) {
                *failure_probability = value.parse()?;
            }
        }
        (
            Family::SymphonyAblation,
            ExperimentSpec::SymphonyAblation {
                failure_probability,
                ..
            },
        ) => {
            if let Some(q) = positionals.first() {
                *failure_probability = q.parse()?;
            }
        }
        _ => {
            return Err(format!(
                "the {family} binary takes no positional arguments; use --spec <file>"
            )
            .into())
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_has_a_valid_default_spec_with_matching_family() {
        for family in FAMILIES {
            for smoke in [false, true] {
                let spec = family.default_spec(smoke);
                spec.validate().unwrap();
                assert_eq!(spec.family(), family, "{family}");
                assert_eq!(Family::from_name(family.name()), Some(family));
            }
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        for family in FAMILIES {
            let spec = family.default_spec(true);
            let json = spec.to_json_pretty();
            let back = ScenarioSpec::from_json(&json).unwrap();
            assert_eq!(back, spec, "{family}");
        }
    }

    #[test]
    fn hash_ignores_name_and_execution_but_not_parameters() {
        let spec = Family::Fig6a.default_spec(true);
        let mut renamed = spec.clone();
        renamed.name = "anything-else".to_owned();
        renamed.execution = Some(ExecutionSpec {
            threads: 64,
            backend: Backend::Implicit,
        });
        assert_eq!(spec.content_hash(), renamed.content_hash());

        let mut reseeded = spec.clone();
        reseeded.seed += 1;
        assert_ne!(spec.content_hash(), reseeded.content_hash());

        let mut regridded = spec.clone();
        if let ExperimentSpec::Fig6a { grid, .. } = &mut regridded.experiment {
            grid.push(0.85);
        }
        assert_ne!(spec.content_hash(), regridded.content_hash());
        assert_eq!(spec.content_hash_hex().len(), 16);
    }

    #[test]
    fn hash_is_stable_across_json_field_reordering() {
        let spec = Family::Fig3.default_spec(true);
        // Same spec, fields permuted by hand (and an execution block added).
        let reordered = format!(
            r#"{{
              "execution": {{"threads": 8}},
              "experiment": {{"Fig3": {{"trials": {trials}, "failure_probability": {q}}}}},
              "seed": {seed},
              "name": "renamed",
              "schema": "{schema}"
            }}"#,
            trials = 20_000,
            q = 0.3,
            seed = spec.seed,
            schema = SPEC_SCHEMA,
        );
        let parsed = ScenarioSpec::from_json(&reordered).unwrap();
        assert_eq!(parsed.content_hash(), spec.content_hash());
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut spec = Family::Fig3.default_spec(true);
        spec.schema = "dht-scenario/v0".to_owned();
        assert!(matches!(
            ScenarioSpec::from_json(&spec.to_json()),
            Err(SpecError::Invalid(_))
        ));
    }

    #[test]
    fn fig6_config_round_trips_losslessly() {
        for config in [Fig6Config::smoke(), Fig6Config::paper_scale()] {
            let spec: ScenarioSpec = config.clone().into();
            let back = Fig6Config::try_from(&spec).unwrap();
            assert_eq!(back, config);
        }
        // Fig6b/RingBoundGap specs convert to the same config shape.
        let spec = Family::RingBoundGap.default_spec(true);
        assert_eq!(Fig6Config::try_from(&spec).unwrap(), Fig6Config::smoke());
    }

    #[test]
    fn fig7_config_round_trips_losslessly() {
        for config in [Fig7Config::smoke(), Fig7Config::paper_scale()] {
            let spec: ScenarioSpec = config.clone().into();
            assert_eq!(Fig7Config::try_from(&spec).unwrap(), config);
        }
        let spec = Family::Fig7b.default_spec(true);
        assert_eq!(Fig7Config::try_from(&spec).unwrap(), Fig7Config::smoke());
    }

    #[test]
    fn sparse_and_live_churn_configs_round_trip_losslessly() {
        for config in [
            SparsePopulationConfig::smoke(),
            SparsePopulationConfig::paper_scale(),
        ] {
            let spec: ScenarioSpec = config.clone().into();
            assert_eq!(SparsePopulationConfig::try_from(&spec).unwrap(), config);
        }
        for config in [
            LiveChurnGridConfig::smoke(),
            LiveChurnGridConfig::paper_scale(),
        ] {
            let spec: ScenarioSpec = config.clone().into();
            assert_eq!(LiveChurnGridConfig::try_from(&spec).unwrap(), config);
        }
        for config in [
            FailureCampaignConfig::smoke(),
            FailureCampaignConfig::paper_scale(),
        ] {
            let spec: ScenarioSpec = config.clone().into();
            assert_eq!(FailureCampaignConfig::try_from(&spec).unwrap(), config);
        }
    }

    #[test]
    fn mismatched_conversions_are_rejected() {
        let spec = Family::Fig3.default_spec(true);
        assert!(Fig6Config::try_from(&spec).is_err());
        assert!(Fig7Config::try_from(&spec).is_err());
        assert!(SparsePopulationConfig::try_from(&spec).is_err());
        assert!(LiveChurnGridConfig::try_from(&spec).is_err());
        assert!(FailureCampaignConfig::try_from(&spec).is_err());
        assert!(StaticResilienceConfig::try_from(&spec).is_err());
    }

    #[test]
    fn static_resilience_base_config_uses_the_measurement_child_seed() {
        let spec = ScenarioSpec::static_resilience("ring", 8, 0.2, 500, 1, 77);
        let base = StaticResilienceConfig::try_from(&spec).unwrap();
        assert_eq!(base.seed(), SeedSequence::new(77).child(1));
        assert_eq!(base.pairs(), 500);
        assert_eq!(base.failure_probability(), 0.0);
    }

    #[test]
    fn run_spec_scalability_table_produces_a_report_envelope() {
        let spec = Family::ScalabilityTable.default_spec(true);
        let outcome = run_spec(&spec, None).unwrap();
        assert_eq!(outcome.report.schema, REPORT_SCHEMA);
        assert_eq!(outcome.report.family, "scalability_table");
        assert_eq!(outcome.report.spec_hash, spec.content_hash_hex());
        assert!(outcome.table.contains("ring"));
        assert!(outcome.csv_records.is_none());
        assert!(matches!(outcome.report.payload, Value::Array(_)));
    }

    #[test]
    fn run_spec_fig3_matches_the_direct_harness() {
        let spec = ScenarioSpec::new(
            "fig3-test",
            5,
            ExperimentSpec::Fig3 {
                failure_probability: 0.2,
                trials: 2_000,
            },
        );
        let outcome = run_spec(&spec, None).unwrap();
        let direct = fig3::run(0.2, 2_000, 5).unwrap();
        assert_eq!(outcome.report.payload, direct.to_value());
    }

    #[test]
    fn run_spec_static_resilience_reports_all_three_views() {
        let spec = ScenarioSpec::static_resilience("ring", 8, 0.3, 800, 1, 11);
        let outcome = run_spec(&spec, None).unwrap();
        let report: StaticResilienceReport =
            Deserialize::from_value(&outcome.report.payload).unwrap();
        assert_eq!(report.points.len(), 1);
        let point = &report.points[0];
        assert!(point.analytical_routability.is_some());
        assert!(point.chain_predicted_routability.is_some());
        assert!(point.simulated.routability > 0.3);
        assert_eq!(report.scalability.geometry, "ring");
    }

    #[test]
    fn run_spec_is_thread_count_invariant() {
        let spec = ScenarioSpec::static_resilience("xor", 8, 0.2, 600, 1, 3);
        let one = run_spec(&spec, Some(1)).unwrap();
        let four = run_spec(&spec, Some(4)).unwrap();
        assert_eq!(one.report, four.report);
        let json_one = serde_json::to_string(&one.report).unwrap();
        let json_four = serde_json::to_string(&four.report).unwrap();
        assert_eq!(json_one, json_four, "reports must be byte-identical");
    }

    #[test]
    fn build_full_overlay_covers_all_five_geometries() {
        for geometry in ["ring", "xor", "tree", "hypercube", "symphony"] {
            let overlay = build_full_overlay(geometry, 6, 1).unwrap();
            assert_eq!(overlay.geometry_name(), geometry);
        }
        assert!(build_full_overlay("moebius", 6, 1).is_err());
    }

    #[test]
    fn legacy_positionals_apply_only_to_their_families() {
        let mut spec = Family::Fig3.default_spec(true);
        apply_legacy_positionals(&mut spec, Family::Fig3, &["0.45".to_owned()]).unwrap();
        assert!(matches!(
            spec.experiment,
            ExperimentSpec::Fig3 {
                failure_probability,
                ..
            } if (failure_probability - 0.45).abs() < 1e-12
        ));
        let mut fig6 = Family::Fig6a.default_spec(true);
        assert!(apply_legacy_positionals(&mut fig6, Family::Fig6a, &["1".to_owned()]).is_err());
    }

    #[test]
    fn backend_serializes_lowercase_and_defaults_to_materialized() {
        let mut spec = Family::StaticResilience.default_spec(true);
        spec.execution = Some(ExecutionSpec {
            threads: 2,
            backend: Backend::Implicit,
        });
        let json = spec.to_json();
        assert!(json.contains("\"implicit\""), "{json}");
        assert_eq!(
            ScenarioSpec::from_json(&json).unwrap().backend(),
            Backend::Implicit
        );

        // Specs written before the field existed (no "backend" key) parse
        // as the materialized default.
        let legacy = format!(
            r#"{{"schema": "{SPEC_SCHEMA}", "name": "legacy", "seed": 1,
                "experiment": {{"ScalabilityTable": {{"failure_probabilities": [0.1]}}}},
                "execution": {{"threads": 2}}}}"#
        );
        let parsed = ScenarioSpec::from_json(&legacy).unwrap();
        assert_eq!(parsed.backend(), Backend::Materialized);
        assert_eq!(parsed.threads(), 2);

        let bogus = legacy.replace("\"threads\": 2", "\"threads\": 2, \"backend\": \"magic\"");
        assert!(matches!(
            ScenarioSpec::from_json(&bogus),
            Err(SpecError::Parse(_))
        ));
    }

    #[test]
    fn implicit_scale_config_round_trips_losslessly() {
        for config in [
            ImplicitScaleConfig::smoke(),
            ImplicitScaleConfig::paper_scale(),
        ] {
            let spec: ScenarioSpec = config.clone().into();
            assert_eq!(spec.backend(), Backend::Implicit);
            assert_eq!(ImplicitScaleConfig::try_from(&spec).unwrap(), config);
        }
        assert!(ImplicitScaleConfig::try_from(&Family::Fig3.default_spec(true)).is_err());
    }

    #[test]
    fn static_resilience_backends_produce_byte_identical_reports() {
        // Geometries whose construction draws randomness (xor) and whose
        // tables are closed-form (ring) both agree across the backends —
        // and the backend never enters the cache key.
        for geometry in ["ring", "xor"] {
            let mut spec = ScenarioSpec::static_resilience(geometry, 8, 0.25, 600, 1, 9);
            spec.execution = Some(ExecutionSpec {
                threads: 2,
                backend: Backend::Materialized,
            });
            let materialized = run_spec(&spec, None).unwrap();
            spec.execution = Some(ExecutionSpec {
                threads: 2,
                backend: Backend::Implicit,
            });
            let implicit = run_spec(&spec, None).unwrap();
            assert_eq!(
                serde_json::to_string(&materialized.report).unwrap(),
                serde_json::to_string(&implicit.report).unwrap(),
                "{geometry}: backends must be byte-identical"
            );
        }
    }

    #[test]
    fn run_spec_implicit_scale_reports_memory_accounting() {
        let mut config = ImplicitScaleConfig::smoke();
        config.bits_list = vec![10];
        config.pairs = 400;
        let spec: ScenarioSpec = config.into();
        let outcome = run_spec(&spec, None).unwrap();
        assert_eq!(outcome.report.family, "implicit_scale");
        assert!(outcome.headline.contains("2^10"));
        assert!(outcome.table.contains("mask bytes"));
        let points: Vec<crate::implicit_scale::ImplicitScalePoint> =
            Deserialize::from_value(&outcome.report.payload).unwrap();
        assert_eq!(points.len(), 1);
        assert!(points[0].overlay_resident_bytes < 1024);
    }
}
