//! Experiment harnesses that regenerate every table and figure of the RCM
//! paper.
//!
//! Each module corresponds to one artifact of the paper's evaluation and
//! returns plain data (vectors of [`dht_sim::SimulationRecord`] or small
//! result structs) so the same code drives the command-line binaries in
//! `src/bin/`, the Criterion benches in `dht-bench`, and the integration
//! tests.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig3`] | Fig. 1–3, the worked 8-node hypercube example |
//! | [`fig6`] | Fig. 6(a)/(b), analysis vs simulation at `N = 2^16` |
//! | [`fig7`] | Fig. 7(a)/(b), asymptotic behaviour |
//! | [`scalability_table`] | §5 scalable/unscalable classification |
//! | [`markov_validation`] | closed forms vs the Markov chains of Fig. 4, 5, 8 |
//! | [`live_churn`] | beyond the paper: continuous-time churn with incremental repair |
//! | [`failure_campaigns`] | beyond the paper: structured fault injection (correlated, adaptive, cascading) |
//! | [`percolation_contrast`] | §1 reachable vs connected components |
//! | [`symphony_ablation`] | §1/§3.5 remark: buying routability with more neighbours |
//! | [`ring_bound_gap`] | §4.3.3 lower-bound tightness (Fig. 6b discussion) |
//! | [`sparse_population`] | beyond the paper: resilience at `n < 2^d` occupancy |
//! | [`implicit_scale`] | beyond the paper: static resilience at `2^26`–`2^30` via implicit tables |
//!
//! Every harness takes an explicit seed and sizes, so results are
//! reproducible and the binaries can run a fast "smoke" configuration in CI
//! and the full paper-scale configuration when regenerating EXPERIMENTS.md.
//!
//! The [`spec`] module is the declarative front door over all of the above:
//! a serializable [`spec::ScenarioSpec`] describes any experiment (family,
//! parameters, root seed, thread budget), [`spec::run_spec`] executes it into
//! a schema-versioned [`spec::ScenarioReport`], and every binary in
//! `src/bin/` is a one-line [`spec::cli_main`] call accepting `--spec <file>`
//! uniformly. Reports hit disk through [`output::ReportWriter`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod failure_campaigns;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod implicit_scale;
pub mod live_churn;
pub mod markov_validation;
pub mod output;
pub mod percolation_contrast;
pub mod ring_bound_gap;
pub mod scalability_table;
pub mod sparse_population;
pub mod spec;
pub mod symphony_ablation;

pub use output::{default_output_dir, render_records_table, ReportMode, ReportWriter};
pub use spec::{
    run_spec, Backend, ExecutionSpec, ExperimentSpec, Family, ScenarioReport, ScenarioSpec,
    SpecError, SpecOutcome, REPORT_SCHEMA, SPEC_SCHEMA,
};
