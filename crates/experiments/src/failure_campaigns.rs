//! Experiment: **failure campaigns** — the five geometries under structured
//! fault injection ([`dht_overlay::faults`]), with graceful-degradation
//! reporting.
//!
//! The paper's static-resilience measurements fail nodes independently and
//! uniformly; this harness sweeps the same overlays across *structured*
//! [`FailurePlan`]s — correlated identifier spans, bucket-aligned subtrees,
//! an adaptive in-degree adversary and epidemic cascades — at matched failed
//! fractions, so the cost of realistic fault geometry is read directly
//! against the uniform baseline. Each grid point reports the delivered and
//! dropped fractions, hop statistics, the stuck-depth distribution of
//! dropped messages ([`dht_sim::StuckDepthHistogram`]) and the alive-graph
//! giant-component fraction from `dht-percolation` — the
//! connectivity-vs-routability contrast of the paper, now per fault shape.

use crate::spec::{build_full_overlay, SpecError};
use dht_overlay::{FailurePlan, Overlay};
use dht_percolation::connected_components;
use dht_sim::{CampaignTally, SeedSequence, TrialEngine};
use serde::{Deserialize, Serialize};

/// One measured grid point: a geometry under one plan at one target failed
/// fraction, averaged over the configured number of failure patterns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureCampaignPoint {
    /// Geometry name (`ring`, `xor`, `tree`, `hypercube`, `symphony`).
    pub geometry: String,
    /// Identifier-space bits (the population is full, `N = 2^bits`).
    pub bits: u32,
    /// Plan kind (`uniform`, `segment_correlated`, `prefix_subtree`,
    /// `adaptive_adversary`, `cascade`).
    pub plan: String,
    /// Target failed (or, for cascades, seeding) fraction of the sweep.
    pub target_fraction: f64,
    /// Mean realized failed fraction over the patterns (exact for the
    /// budgeted plans, stochastic for uniform, above target for cascades).
    pub realized_failed_fraction: f64,
    /// Delivered fraction over all measured pairs.
    pub delivered_fraction: f64,
    /// Dropped fraction over all measured pairs.
    pub dropped_fraction: f64,
    /// Mean hop count over delivered messages.
    pub mean_hops: f64,
    /// Mean hop depth at which dropped messages got stuck.
    pub stuck_depth_mean: f64,
    /// Deepest stuck depth observed (0 when nothing dropped).
    pub stuck_depth_max: u32,
    /// Mean giant-component fraction of the alive overlay graph — the
    /// connectivity ceiling the delivered fraction degrades against.
    pub giant_component_fraction: f64,
    /// Pairs routed in total across the measured patterns.
    pub attempted: u64,
    /// Failure patterns with at least two survivors (only these route).
    pub patterns_measured: u32,
}

/// The geometry × plan × failed-fraction grid a [`run_grid`] call sweeps.
///
/// The plans are *templates*: their structural parameters (segments, prefix
/// length, rounds, propagation) are taken as-is, while their fraction knob
/// is re-targeted to each value of `failed_fractions` via
/// [`FailurePlan::with_fraction`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureCampaignConfig {
    /// Identifier-space bits (full population).
    pub bits: u32,
    /// Geometries to sweep.
    pub geometries: Vec<String>,
    /// Plan templates to sweep (fractions overridden by the grid).
    pub plans: Vec<FailurePlan>,
    /// Target failed fractions to sweep each plan across.
    pub failed_fractions: Vec<f64>,
    /// Source/destination pairs routed per failure pattern.
    pub pairs: u64,
    /// Independent failure patterns per grid point.
    pub patterns: u32,
    /// Worker-thread budget (results are thread-count invariant).
    pub threads: usize,
    /// Master seed; each grid point derives its own child streams.
    pub seed: u64,
}

impl FailureCampaignConfig {
    /// The CI-sized configuration: ring and XOR at `N = 2^8`, all five
    /// plan shapes, two failed fractions.
    #[must_use]
    pub fn smoke() -> Self {
        FailureCampaignConfig {
            bits: 8,
            geometries: vec!["ring".to_owned(), "xor".to_owned()],
            plans: default_plan_templates(),
            failed_fractions: vec![0.2, 0.4],
            pairs: 1_500,
            patterns: 2,
            threads: 2,
            seed: 2006,
        }
    }

    /// The paper-scale configuration: all five geometries at `N = 2^12`,
    /// a five-point failed-fraction axis, Fig. 6's pair budget.
    #[must_use]
    pub fn paper_scale() -> Self {
        FailureCampaignConfig {
            bits: 12,
            geometries: GEOMETRIES.iter().map(|&g| g.to_owned()).collect(),
            plans: default_plan_templates(),
            failed_fractions: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            pairs: 20_000,
            patterns: 3,
            threads: 8,
            seed: 2006,
        }
    }

    /// Checks every knob before a sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.geometries.is_empty() {
            return Err(SpecError::Invalid(
                "failure campaign needs at least one geometry".to_owned(),
            ));
        }
        if self.plans.is_empty() {
            return Err(SpecError::Invalid(
                "failure campaign needs at least one plan".to_owned(),
            ));
        }
        for plan in &self.plans {
            plan.validate()?;
        }
        if self.failed_fractions.is_empty() {
            return Err(SpecError::Invalid(
                "failure campaign needs at least one failed fraction".to_owned(),
            ));
        }
        for &fraction in &self.failed_fractions {
            if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
                return Err(SpecError::Invalid(format!(
                    "failed fraction must be in [0, 1], got {fraction}"
                )));
            }
        }
        if self.pairs == 0 {
            return Err(SpecError::Invalid(
                "failure campaign needs a positive pair budget".to_owned(),
            ));
        }
        if self.patterns == 0 {
            return Err(SpecError::Invalid(
                "failure campaign needs at least one pattern".to_owned(),
            ));
        }
        Ok(())
    }
}

/// The five plan templates swept by the default configurations — one of
/// each shape, structural parameters at their catalogue values (fractions
/// are grid inputs and irrelevant here).
#[must_use]
pub fn default_plan_templates() -> Vec<FailurePlan> {
    vec![
        FailurePlan::Uniform { fraction: 0.0 },
        FailurePlan::SegmentCorrelated {
            fraction: 0.0,
            segments: 8,
        },
        FailurePlan::PrefixSubtree {
            fraction: 0.0,
            prefix_bits: 4,
        },
        FailurePlan::AdaptiveAdversary {
            fraction: 0.0,
            rounds: 4,
        },
        FailurePlan::Cascade {
            seed_fraction: 0.0,
            propagation: 0.3,
        },
    ]
}

/// Runs one grid point: `plan` re-targeted at `fraction`, lowered
/// `config.patterns` times over `overlay`, each pattern routed and its
/// alive graph decomposed into components.
///
/// Pattern `t` lowers its mask from child `2t` and routes its pairs from
/// child `2t + 1` of a [`SeedSequence`] rooted at `seed`, so mask and
/// traffic streams never collide and every pattern is independent.
///
/// # Panics
///
/// Panics if the re-targeted plan is invalid (pre-validate via
/// [`FailureCampaignConfig::validate`]) or `overlay` does not match
/// `config.bits`.
#[must_use]
pub fn run_point(
    config: &FailureCampaignConfig,
    overlay: &dyn Overlay,
    plan: &FailurePlan,
    fraction: f64,
    seed: u64,
) -> FailureCampaignPoint {
    let plan = plan.with_fraction(fraction);
    let engine = TrialEngine::new(config.threads);
    let seeds = SeedSequence::new(seed);
    let mut merged = CampaignTally::default();
    let mut patterns_measured = 0u32;
    let mut realized_sum = 0.0;
    let mut giant_sum = 0.0;
    for pattern in 0..u64::from(config.patterns) {
        let mask = plan.lower(overlay, seeds.child(2 * pattern));
        realized_sum += mask.failed_count() as f64 / mask.population_size().max(1) as f64;
        giant_sum += connected_components(overlay, &mask).giant_component_fraction();
        if let Some(tally) =
            engine.run_campaign_trial(overlay, &mask, config.pairs, seeds.child(2 * pattern + 1))
        {
            merged.merge(&tally);
            patterns_measured += 1;
        }
    }
    let patterns = f64::from(config.patterns);
    let attempted = merged.trial.attempted;
    FailureCampaignPoint {
        geometry: overlay.geometry_name().to_owned(),
        bits: config.bits,
        plan: plan.name().to_owned(),
        target_fraction: fraction,
        realized_failed_fraction: realized_sum / patterns,
        delivered_fraction: merged.trial.routability(),
        dropped_fraction: if attempted == 0 {
            0.0
        } else {
            merged.trial.dropped as f64 / attempted as f64
        },
        mean_hops: merged.trial.hop_stats.mean(),
        stuck_depth_mean: merged.stuck_depth.mean_depth(),
        stuck_depth_max: merged.stuck_depth.max_depth().unwrap_or(0),
        giant_component_fraction: giant_sum / patterns,
        attempted,
        patterns_measured,
    }
}

/// The five geometries the paper-scale campaign sweeps.
pub const GEOMETRIES: [&str; 5] = ["ring", "xor", "tree", "hypercube", "symphony"];

/// Sweeps the full geometry × plan × failed-fraction grid.
///
/// Each geometry's overlay is built once from `config.seed` (child 0, the
/// repository-wide convention — see [`build_full_overlay`]), so every plan
/// and fraction attacks the *same* overlay instance and differences are
/// attributable to the fault structure alone. Grid point `k` (in sweep
/// order) is seeded with child `k + 1` of a [`SeedSequence`] rooted at
/// `config.seed`; child 0 stays reserved for overlay construction.
///
/// # Errors
///
/// Returns [`SpecError`] for invalid configurations or unknown geometries.
pub fn run_grid(config: &FailureCampaignConfig) -> Result<Vec<FailureCampaignPoint>, SpecError> {
    config.validate()?;
    let seeds = SeedSequence::new(config.seed);
    let mut points = Vec::new();
    let mut point_index = 0u64;
    for geometry in &config.geometries {
        let overlay = build_full_overlay(geometry, config.bits, config.seed)?;
        for plan in &config.plans {
            for &fraction in &config.failed_fractions {
                let seed = seeds.child(point_index + 1);
                points.push(run_point(config, overlay.as_ref(), plan, fraction, seed));
                point_index += 1;
            }
        }
    }
    Ok(points)
}

/// Renders grid points as the fixed-width table the binary prints.
#[must_use]
pub fn render_failure_campaign_table(points: &[FailureCampaignPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<19} {:>5} {:>6} {:>9} {:>9} {:>7} {:>6} {:>10} {:>6} {:>6}",
        "geometry",
        "plan",
        "bits",
        "q",
        "realized",
        "delivered",
        "dropped",
        "hops",
        "stuck_mean",
        "stuck+",
        "giant"
    );
    for point in points {
        let _ = writeln!(
            out,
            "{:<10} {:<19} {:>5} {:>6.2} {:>9.4} {:>9.4} {:>7.4} {:>6.2} {:>10.2} {:>6} {:>6.3}",
            point.geometry,
            point.plan,
            point.bits,
            point.target_fraction,
            point.realized_failed_fraction,
            point.delivered_fraction,
            point.dropped_fraction,
            point.mean_hops,
            point.stuck_depth_mean,
            point.stuck_depth_max,
            point.giant_component_fraction,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance-criterion scale: `N = 2^10`, one matched failed
    /// fraction, structured plans against the uniform baseline.
    fn ordering_config() -> FailureCampaignConfig {
        FailureCampaignConfig {
            bits: 10,
            geometries: vec!["ring".to_owned(), "xor".to_owned()],
            plans: vec![
                FailurePlan::Uniform { fraction: 0.0 },
                FailurePlan::SegmentCorrelated {
                    fraction: 0.0,
                    segments: 16,
                },
                FailurePlan::AdaptiveAdversary {
                    fraction: 0.0,
                    rounds: 4,
                },
            ],
            failed_fractions: vec![0.35],
            pairs: 6_000,
            patterns: 3,
            threads: 2,
            seed: 2006,
        }
    }

    #[test]
    fn adaptive_below_correlated_below_uniform_on_ring_and_xor() {
        // Tentpole acceptance, measured at one matched failed fraction on
        // both geometries. Deterministic engines make this exact: the
        // pinned seed reproduces these numbers bit-for-bit.
        //
        // On the ring the full severity chain holds: the in-degree-informed
        // adversary delivers strictly less than rack-style correlated
        // spans, which deliver strictly less than uniform random failure —
        // ring routes must traverse id space linearly, so dead arcs block
        // through-traffic, and the adversary's finger-aligned blocks block
        // it best.
        //
        // On XOR the adversary is again strictly worst, but the
        // correlated-vs-uniform leg *inverts*, and sweeps across
        // `q ∈ [0.05, 0.5]`, `segments ∈ [2, 64]` and `bits ∈ {10, 11}`
        // show the inversion is structural, not a tuning artifact: a
        // contiguous id-space span is a union of whole subtrees, so it
        // removes exactly the routes that led to the targets it also
        // removed, while uniform failure degrades every survivor's buckets.
        // The test pins that contrast — correlated failure is what ring
        // geometries fear and XOR geometries shrug off — instead of
        // papering over it.
        let config = ordering_config();
        let points = run_grid(&config).unwrap();
        let delivered = |geometry: &str, plan: &str| {
            points
                .iter()
                .find(|p| p.geometry == geometry && p.plan == plan)
                .unwrap()
                .delivered_fraction
        };
        for geometry in ["ring", "xor"] {
            let uniform = delivered(geometry, "uniform");
            let correlated = delivered(geometry, "segment_correlated");
            let adaptive = delivered(geometry, "adaptive_adversary");
            assert!(
                adaptive + 0.02 < correlated && adaptive + 0.02 < uniform,
                "{geometry}: adaptive {adaptive:.4} not strictly worst \
                 (correlated {correlated:.4}, uniform {uniform:.4})"
            );
        }
        let (ring_uniform, ring_correlated) = (
            delivered("ring", "uniform"),
            delivered("ring", "segment_correlated"),
        );
        assert!(
            ring_correlated + 0.02 < ring_uniform,
            "ring: correlated {ring_correlated:.4} < uniform {ring_uniform:.4} violated"
        );
        let (xor_uniform, xor_correlated) = (
            delivered("xor", "uniform"),
            delivered("xor", "segment_correlated"),
        );
        assert!(
            xor_uniform + 0.02 < xor_correlated,
            "xor: expected the structural inversion — uniform {xor_uniform:.4} \
             < correlated {xor_correlated:.4}"
        );
    }

    #[test]
    fn campaign_grids_are_invariant_under_thread_count() {
        let mut config = FailureCampaignConfig::smoke();
        config.threads = 1;
        let reference = run_grid(&config).unwrap();
        for threads in [2, 8] {
            config.threads = threads;
            assert_eq!(reference, run_grid(&config).unwrap(), "threads = {threads}");
        }
    }

    #[test]
    fn smoke_grid_covers_every_plan_and_reports_sane_metrics() {
        let config = FailureCampaignConfig::smoke();
        let points = run_grid(&config).unwrap();
        assert_eq!(
            points.len(),
            config.geometries.len() * config.plans.len() * config.failed_fractions.len()
        );
        for plan in &config.plans {
            assert!(points.iter().any(|p| p.plan == plan.name()));
        }
        for point in &points {
            assert!(
                point.patterns_measured > 0,
                "{}: nothing measured",
                point.plan
            );
            assert!((0.0..=1.0).contains(&point.delivered_fraction));
            assert!((0.0..=1.0).contains(&point.dropped_fraction));
            assert!((0.0..=1.0).contains(&point.realized_failed_fraction));
            assert!((0.0..=1.0).contains(&point.giant_component_fraction));
            assert!(
                point.attempted >= u64::from(point.patterns_measured) * config.pairs,
                "{}: pair budget not honoured",
                point.plan
            );
            // Budgeted plans realize `round(q·n)/n` exactly; uniform within
            // sampling noise; cascades exceed their seeding target.
            if point.plan == "segment_correlated" || point.plan == "adaptive_adversary" {
                let n = f64::from(1u32 << config.bits);
                assert!(
                    (point.realized_failed_fraction - point.target_fraction).abs()
                        <= 0.5 / n + 1e-12,
                    "{}: budget drifted",
                    point.plan
                );
            }
            if point.plan == "cascade" {
                assert!(point.realized_failed_fraction > point.target_fraction);
            }
        }
        let table = render_failure_campaign_table(&points);
        assert!(table.contains("adaptive_adversary") && table.contains("cascade"));
        let json = serde_json::to_string(&points).unwrap();
        let back: Vec<FailureCampaignPoint> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, points);
    }

    #[test]
    fn uniform_delivery_degrades_with_the_failed_fraction() {
        let config = FailureCampaignConfig::smoke();
        let points = run_grid(&config).unwrap();
        for geometry in &config.geometries {
            let uniform: Vec<&FailureCampaignPoint> = points
                .iter()
                .filter(|p| &p.geometry == geometry && p.plan == "uniform")
                .collect();
            assert_eq!(uniform.len(), 2);
            assert!(
                uniform[0].delivered_fraction > uniform[1].delivered_fraction,
                "{geometry}: delivery did not degrade from q=0.2 to q=0.4"
            );
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = FailureCampaignConfig::smoke();
        config.failed_fractions = vec![1.5];
        assert!(run_grid(&config).is_err());
        let mut config = FailureCampaignConfig::smoke();
        config.plans.clear();
        assert!(run_grid(&config).is_err());
        let mut config = FailureCampaignConfig::smoke();
        config.geometries = vec!["torus".to_owned()];
        assert!(run_grid(&config).is_err());
    }
}
