//! Static resilience beyond the materialized ceiling: the implicit backend
//! at `2^26`–`2^30` nodes.
//!
//! The materialized overlays stop at [`dht_overlay::MAX_OVERLAY_BITS`] bits
//! because every routing-table row lives in memory. This harness drives the
//! same measurement loop — sample a failure pattern, route survivor pairs
//! through [`dht_sim::TrialEngine`], tally — over
//! [`dht_overlay::ImplicitOverlay`]s, whose rows are regenerated from the
//! construction seed on demand. The resident set of a point is therefore the
//! failure mask (one bit per identifier) plus the per-worker row caches,
//! *independent of the edge count*: a `2^30`-node ring routes end to end
//! from roughly a 128 MiB footprint where the materialized build would need
//! hundreds of gigabytes. Each [`ImplicitScalePoint`] records both measured
//! routability and the byte accounting that proves the claim.
//!
//! Seed convention (matching the static-resilience family): `SeedSequence`
//! child 0 of the root seed is the overlay construction stream, child 1 the
//! measurement root; point `k` splits the measurement root into mask stream
//! `2k` and pair stream `2k + 1`.

use dht_overlay::{ChordVariant, FailureMask, ImplicitOverlay, Overlay, OverlayError};
use dht_sim::{SeedSequence, TrialEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration of one implicit-scale sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplicitScaleConfig {
    /// Geometry name (`ring`, `xor`, `tree`, `hypercube`, `symphony`).
    pub geometry: String,
    /// Identifier lengths to sweep (full populations, `N = 2^bits`).
    pub bits_list: Vec<u32>,
    /// Node failure probability applied at every size.
    pub failure_probability: f64,
    /// Survivor pairs routed per size.
    pub pairs: u64,
    /// Root seed.
    pub seed: u64,
    /// Worker-thread budget.
    pub threads: usize,
}

impl ImplicitScaleConfig {
    /// The CI-friendly configuration: sizes a debug build routes in seconds.
    #[must_use]
    pub fn smoke() -> Self {
        ImplicitScaleConfig {
            geometry: "ring".to_owned(),
            bits_list: vec![14, 16],
            failure_probability: 0.1,
            pairs: 2_000,
            seed: 2006,
            threads: 4,
        }
    }

    /// The headline configuration: `2^26`–`2^30`, all beyond the
    /// materialized ceiling.
    #[must_use]
    pub fn paper_scale() -> Self {
        ImplicitScaleConfig {
            geometry: "ring".to_owned(),
            bits_list: vec![26, 28, 30],
            failure_probability: 0.1,
            pairs: 100_000,
            seed: 2006,
            threads: 8,
        }
    }
}

/// One measured size of an implicit-scale sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImplicitScalePoint {
    /// Geometry name.
    pub geometry: String,
    /// Identifier length (`N = 2^bits`).
    pub bits: u32,
    /// Population size `2^bits`.
    pub node_count: u64,
    /// Applied failure probability.
    pub failure_probability: f64,
    /// Survivor pairs routed.
    pub pairs: u64,
    /// Delivered percentage.
    pub routability_percent: f64,
    /// Mean hops over delivered messages.
    pub mean_hops: f64,
    /// Largest observed hop count.
    pub max_hops: u32,
    /// Bytes of routing state the overlay keeps resident (constant for the
    /// implicit backend).
    pub overlay_resident_bytes: u64,
    /// Bytes of the failure-mask bitset (the dominant resident structure).
    pub mask_resident_bytes: u64,
    /// Conceptual directed edges the materialized backend would store.
    pub implied_edges: u64,
}

/// Builds the implicit overlay for a geometry name, replaying the shared
/// construction stream seeded by `stream_seed` — the generative twin of
/// [`crate::spec::build_full_overlay`] (same geometry names, same Symphony
/// `(1, 1)` parameters, same stream seed convention), so the two backends
/// produce bit-identical routing wherever both can run.
///
/// # Errors
///
/// Returns [`OverlayError::InvalidParameter`] for unknown geometry names and
/// any [`OverlayError`] the backend raises (e.g. `bits` beyond
/// [`dht_overlay::MAX_IMPLICIT_OVERLAY_BITS`]).
pub fn build_implicit_overlay(
    geometry: &str,
    bits: u32,
    stream_seed: u64,
) -> Result<Box<dyn Overlay>, OverlayError> {
    Ok(match geometry {
        "ring" => Box::new(ImplicitOverlay::ring(
            bits,
            ChordVariant::Deterministic,
            stream_seed,
        )?),
        "xor" => Box::new(ImplicitOverlay::xor(bits, stream_seed)?),
        "tree" => Box::new(ImplicitOverlay::tree(bits, stream_seed)?),
        "hypercube" => Box::new(ImplicitOverlay::hypercube(bits)?),
        "symphony" => Box::new(ImplicitOverlay::symphony(bits, 1, 1, stream_seed)?),
        other => {
            return Err(OverlayError::InvalidParameter {
                message: format!(
                    "unknown geometry {other:?} (expected ring, xor, tree, hypercube or symphony)"
                ),
            })
        }
    })
}

/// Runs the sweep: one implicit overlay and one measured trial per size.
///
/// # Errors
///
/// Returns [`OverlayError`] on construction failures or when a sampled
/// failure pattern leaves fewer than two survivors.
pub fn run(config: &ImplicitScaleConfig) -> Result<Vec<ImplicitScalePoint>, OverlayError> {
    let seeds = SeedSequence::new(config.seed);
    let stream_seed = seeds.child(0);
    let measurement = SeedSequence::new(seeds.child(1));
    let engine = TrialEngine::new(config.threads);
    let mut points = Vec::with_capacity(config.bits_list.len());
    for (index, &bits) in config.bits_list.iter().enumerate() {
        let overlay = build_implicit_overlay(&config.geometry, bits, stream_seed)?;
        let mut mask_rng = ChaCha8Rng::seed_from_u64(measurement.child(2 * index as u64));
        let mask = FailureMask::sample(
            overlay.key_space(),
            config.failure_probability,
            &mut mask_rng,
        );
        let pair_seed = measurement.child(2 * index as u64 + 1);
        let tally = engine
            .run_trial(overlay.as_ref(), &mask, config.pairs, pair_seed)
            .ok_or_else(|| OverlayError::InvalidParameter {
                message: format!(
                    "failure probability {} leaves fewer than two survivors at 2^{bits}",
                    config.failure_probability
                ),
            })?;
        points.push(ImplicitScalePoint {
            geometry: config.geometry.clone(),
            bits,
            node_count: overlay.node_count(),
            failure_probability: config.failure_probability,
            pairs: tally.attempted,
            routability_percent: 100.0 * tally.routability(),
            mean_hops: tally.hop_stats.mean(),
            max_hops: tally.max_hops,
            overlay_resident_bytes: overlay.resident_bytes() as u64,
            mask_resident_bytes: std::mem::size_of_val(mask.words()) as u64,
            implied_edges: overlay.edge_count(),
        });
    }
    Ok(points)
}

/// Fixed-width presentation of a sweep (what the binary prints).
#[must_use]
pub fn render_implicit_scale_table(points: &[ImplicitScalePoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>12} {:>10} {:>9} {:>16} {:>16}",
        "bits", "nodes", "routable %", "mean hops", "max hops", "overlay bytes", "mask bytes"
    );
    for point in points {
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>12.2} {:>10.2} {:>9} {:>16} {:>16}",
            point.bits,
            point.node_count,
            point.routability_percent,
            point.mean_hops,
            point.max_hops,
            point.overlay_resident_bytes,
            point.mask_resident_bytes,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_overlay::{ChordOverlay, KademliaOverlay, PlaxtonOverlay, SymphonyOverlay};

    #[test]
    fn builder_covers_all_five_geometries_and_rejects_unknowns() {
        for geometry in ["ring", "xor", "tree", "hypercube", "symphony"] {
            let overlay = build_implicit_overlay(geometry, 8, 7).unwrap();
            assert_eq!(overlay.geometry_name(), geometry);
            assert!(overlay.implicit_kernel().is_some());
        }
        assert!(build_implicit_overlay("moebius", 8, 7).is_err());
    }

    /// The builder's stream-seed convention matches the materialized
    /// builders used by `build_full_overlay` — same seed, same tables.
    #[test]
    fn builder_twins_the_materialized_construction() {
        let seed = 99;
        let implicit = ImplicitOverlay::xor(8, seed).unwrap();
        let materialized = KademliaOverlay::build(8, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        let space = implicit.key_space();
        for node in space.iter_ids() {
            assert_eq!(implicit.table_of(node), materialized.neighbors(node));
        }
        let implicit = ImplicitOverlay::tree(8, seed).unwrap();
        let materialized = PlaxtonOverlay::build(8, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        for node in space.iter_ids() {
            assert_eq!(implicit.table_of(node), materialized.neighbors(node));
        }
        let implicit = ImplicitOverlay::ring(8, ChordVariant::Deterministic, seed).unwrap();
        let materialized = ChordOverlay::build(8, ChordVariant::Deterministic).unwrap();
        for node in space.iter_ids() {
            assert_eq!(implicit.table_of(node), materialized.neighbors(node));
        }
    }

    #[test]
    fn smoke_sweep_routes_and_accounts_memory() {
        let config = ImplicitScaleConfig {
            bits_list: vec![10, 12],
            pairs: 500,
            ..ImplicitScaleConfig::smoke()
        };
        let points = run(&config).unwrap();
        assert_eq!(points.len(), 2);
        for point in &points {
            assert_eq!(point.pairs, 500);
            assert!(point.routability_percent > 50.0);
            // The implicit overlay's resident state never scales with N.
            assert!(point.overlay_resident_bytes < 1024);
            assert_eq!(point.mask_resident_bytes, (1u64 << point.bits) / 8);
        }
        assert!(points[1].implied_edges > points[0].implied_edges);
        let table = render_implicit_scale_table(&points);
        assert!(table.contains("mask bytes"));
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let mut config = ImplicitScaleConfig::smoke();
        config.bits_list = vec![10];
        config.pairs = 1_000;
        config.threads = 1;
        let one = run(&config).unwrap();
        config.threads = 8;
        assert_eq!(one, run(&config).unwrap());
    }

    #[test]
    fn symphony_materialized_twin_matches() {
        let seed = 55;
        let implicit = ImplicitOverlay::symphony(7, 1, 1, seed).unwrap();
        let materialized =
            SymphonyOverlay::build(7, 1, 1, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        let space = implicit.key_space();
        for node in space.iter_ids() {
            assert_eq!(implicit.table_of(node), materialized.neighbors(node));
        }
    }
}
