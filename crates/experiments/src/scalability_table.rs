//! Experiment E7 — the §5 scalability classification table.

use dht_mathkit::SeriesVerdict;
use dht_rcm_core::{classify, Geometry, RcmError, RoutingGeometry, ScalabilityClass};
use serde::{Deserialize, Serialize};

/// One row of the scalability table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityRow {
    /// Geometry name.
    pub geometry: String,
    /// DHT system the geometry models.
    pub system: String,
    /// The paper's analytical verdict (§5).
    pub analytic: ScalabilityClass,
    /// The numerical Knopp-series verdict at each probed failure probability.
    pub numeric: Vec<(f64, SeriesVerdict)>,
    /// Whether analysis and numerics agree at every probed point.
    pub consistent: bool,
    /// Limiting success probability `lim_{h→∞} p(h, q)` at the first probed
    /// failure probability (0 for unscalable geometries).
    pub limiting_success_probability: f64,
}

/// Builds the scalability table for the five paper geometries at the given
/// failure probabilities.
///
/// # Errors
///
/// Returns [`RcmError`] if a probe value is outside `[0, 1)`.
pub fn run(failure_probabilities: &[f64]) -> Result<Vec<ScalabilityRow>, RcmError> {
    let geometries = vec![
        Geometry::tree(),
        Geometry::hypercube(),
        Geometry::xor(),
        Geometry::ring(),
        Geometry::symphony(1, 1)?,
    ];
    let mut rows = Vec::with_capacity(geometries.len());
    for geometry in geometries {
        let mut numeric = Vec::new();
        let mut consistent = true;
        let mut limiting = 0.0;
        for (index, &q) in failure_probabilities.iter().enumerate() {
            let report = classify(&geometry, q)?;
            consistent &= report.consistent;
            if index == 0 {
                limiting = report.limiting_success_probability;
            }
            numeric.push((q, report.numeric));
        }
        rows.push(ScalabilityRow {
            geometry: geometry.name().to_owned(),
            system: geometry.system().to_owned(),
            analytic: geometry.analytic_scalability(),
            numeric,
            consistent,
            limiting_success_probability: limiting,
        });
    }
    Ok(rows)
}

/// Renders the table as text (what the binary prints).
#[must_use]
pub fn render(rows: &[ScalabilityRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:<12} {:<12} {:>10}",
        "geometry", "system", "analytic", "numeric", "lim p(h,q)"
    );
    for row in rows {
        let numeric_summary = if row
            .numeric
            .iter()
            .all(|(_, v)| *v == SeriesVerdict::Converges)
        {
            "converges"
        } else if row
            .numeric
            .iter()
            .all(|(_, v)| *v == SeriesVerdict::Diverges)
        {
            "diverges"
        } else {
            "mixed"
        };
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:<12} {:<12} {:>10.4}",
            row.geometry,
            row.system,
            row.analytic,
            numeric_summary,
            row.limiting_success_probability
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reproduces_the_paper_verdicts() {
        let rows = run(&[0.1, 0.3]).unwrap();
        assert_eq!(rows.len(), 5);
        let verdict = |name: &str| rows.iter().find(|r| r.geometry == name).unwrap();
        assert_eq!(verdict("tree").analytic, ScalabilityClass::Unscalable);
        assert_eq!(verdict("symphony").analytic, ScalabilityClass::Unscalable);
        assert_eq!(verdict("hypercube").analytic, ScalabilityClass::Scalable);
        assert_eq!(verdict("xor").analytic, ScalabilityClass::Scalable);
        assert_eq!(verdict("ring").analytic, ScalabilityClass::Scalable);
        assert!(rows.iter().all(|row| row.consistent));
    }

    #[test]
    fn scalable_geometries_have_positive_limits() {
        let rows = run(&[0.1]).unwrap();
        for row in &rows {
            match row.analytic {
                ScalabilityClass::Scalable => assert!(row.limiting_success_probability > 0.5),
                ScalabilityClass::Unscalable => {
                    assert_eq!(row.limiting_success_probability, 0.0);
                }
            }
        }
    }

    #[test]
    fn rendered_table_mentions_every_geometry() {
        let rows = run(&[0.2]).unwrap();
        let text = render(&rows);
        for name in ["tree", "hypercube", "xor", "ring", "symphony"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn invalid_probe_values_are_rejected() {
        assert!(run(&[0.5, 1.0]).is_err());
    }
}
