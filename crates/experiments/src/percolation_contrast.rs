//! Experiment E9 — the §1 contrast between connectivity and routability.
//!
//! Percolation theory bounds what any protocol could reach (the connected
//! component); the routing protocol reaches only its *reachable component*.
//! This harness measures both on the same overlay and failure pattern and
//! reports the gap, which is small for the robust geometries and large for
//! the tree.

use dht_overlay::{
    CanOverlay, FailureMask, KademliaOverlay, Overlay, OverlayError, PlaxtonOverlay,
};
use dht_percolation::{connected_components, reachable_component};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Result of the contrast for one geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContrastRow {
    /// Geometry name.
    pub geometry: String,
    /// Identifier length.
    pub bits: u32,
    /// Failure probability applied.
    pub failure_probability: f64,
    /// Number of surviving roots examined.
    pub roots_examined: u32,
    /// Mean connected-component size (including the root) over the examined
    /// roots, as a fraction of the surviving population.
    pub mean_connected_fraction: f64,
    /// Mean reachable-component size (excluding the root) over the examined
    /// roots, as a fraction of the other surviving nodes.
    pub mean_reachable_fraction: f64,
}

impl ContrastRow {
    /// Connectivity-to-routability gap, in fractions of the population.
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.mean_connected_fraction - self.mean_reachable_fraction
    }
}

/// Runs the contrast experiment on the tree, XOR and hypercube overlays.
///
/// # Errors
///
/// Propagates [`OverlayError`] from overlay construction.
pub fn run(bits: u32, q: f64, roots: u32, seed: u64) -> Result<Vec<ContrastRow>, OverlayError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let overlays: Vec<(&'static str, Box<dyn Overlay>)> = vec![
        ("tree", Box::new(PlaxtonOverlay::build(bits, &mut rng)?)),
        ("xor", Box::new(KademliaOverlay::build(bits, &mut rng)?)),
        ("hypercube", Box::new(CanOverlay::build(bits)?)),
    ];
    let mut rows = Vec::with_capacity(overlays.len());
    for (name, overlay) in &overlays {
        let mut mask_rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1));
        let mask = FailureMask::sample(overlay.key_space(), q, &mut mask_rng);
        let components = connected_components(overlay.as_ref(), &mask);
        let alive = mask.alive_count();
        let mut connected_total = 0.0;
        let mut reachable_total = 0.0;
        let mut examined = 0u32;
        for root in mask
            .alive_nodes()
            .step_by((alive as usize / roots as usize).max(1))
        {
            if examined >= roots {
                break;
            }
            let component = components.component_size(root).unwrap_or(0);
            let reachable = reachable_component(overlay.as_ref(), root, &mask).len() as u64;
            connected_total += component as f64 / alive as f64;
            reachable_total += reachable as f64 / alive.saturating_sub(1).max(1) as f64;
            examined += 1;
        }
        rows.push(ContrastRow {
            geometry: (*name).to_owned(),
            bits,
            failure_probability: q,
            roots_examined: examined,
            mean_connected_fraction: connected_total / f64::from(examined.max(1)),
            mean_reachable_fraction: reachable_total / f64::from(examined.max(1)),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachable_never_exceeds_connected() {
        let rows = run(9, 0.3, 10, 3).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.mean_reachable_fraction <= row.mean_connected_fraction + 0.02,
                "{}: reachable {} vs connected {}",
                row.geometry,
                row.mean_reachable_fraction,
                row.mean_connected_fraction
            );
            assert_eq!(row.roots_examined, 10);
        }
    }

    #[test]
    fn tree_shows_the_largest_gap() {
        // The tree stays well connected as a graph but cannot route around
        // failures, so its connectivity/routability gap dwarfs the others'.
        let rows = run(9, 0.3, 15, 7).unwrap();
        let gap = |name: &str| rows.iter().find(|r| r.geometry == name).unwrap().gap();
        assert!(gap("tree") > gap("xor"));
        assert!(gap("tree") > gap("hypercube"));
        assert!(gap("tree") > 0.2, "tree gap = {}", gap("tree"));
    }

    #[test]
    fn no_failures_means_no_gap() {
        let rows = run(8, 0.0, 5, 1).unwrap();
        for row in &rows {
            assert!((row.mean_connected_fraction - 1.0).abs() < 1e-9);
            assert!((row.mean_reachable_fraction - 1.0).abs() < 1e-9);
            assert!(row.gap().abs() < 1e-9);
        }
    }
}
