//! Experiments E5/E6 — Fig. 7: asymptotic behaviour of the five geometries.
//!
//! Fig. 7(a) evaluates the analytical failed-path percentage at `N = 2^100`
//! across the failure-probability axis; Fig. 7(b) fixes `q = 0.1` and sweeps
//! the system size, exposing the scalable/unscalable split of §5. Both are
//! purely analytical (no simulation is possible at those sizes — the paper's
//! curves are analytical too).

use dht_rcm_core::{routability, Geometry, RcmError, RoutingGeometry, SystemSize};
use dht_sim::SimulationRecord;
use serde::{Deserialize, Serialize};

/// Configuration of the Fig. 7 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Config {
    /// Identifier length for the asymptotic panel (the paper uses 100).
    pub asymptotic_bits: u32,
    /// Failure-probability grid for Fig. 7(a).
    pub grid: Vec<f64>,
    /// Failure probability for Fig. 7(b) (the paper uses 0.1).
    pub fixed_failure_probability: f64,
    /// Identifier lengths for the Fig. 7(b) size sweep.
    pub size_bits: Vec<u32>,
    /// Symphony parameters (the paper uses `k_n = k_s = 1`).
    pub symphony_near_neighbors: u32,
    /// Symphony shortcut count.
    pub symphony_shortcuts: u32,
}

impl Fig7Config {
    /// The paper-scale configuration: `N = 2^100` for panel (a) and
    /// `N = 2^10 … 2^34` (roughly `10^3 … 10^10`) for panel (b).
    #[must_use]
    pub fn paper_scale() -> Self {
        Fig7Config {
            asymptotic_bits: 100,
            grid: dht_mathkit::percent_grid(90, 5),
            fixed_failure_probability: 0.1,
            size_bits: (10..=34).step_by(2).collect(),
            symphony_near_neighbors: 1,
            symphony_shortcuts: 1,
        }
    }

    /// A reduced configuration for tests and benches.
    #[must_use]
    pub fn smoke() -> Self {
        Fig7Config {
            asymptotic_bits: 100,
            grid: dht_mathkit::percent_grid(80, 20),
            fixed_failure_probability: 0.1,
            size_bits: vec![10, 16, 22, 28, 34],
            symphony_near_neighbors: 1,
            symphony_shortcuts: 1,
        }
    }

    fn geometries(&self) -> Result<Vec<Geometry>, RcmError> {
        Ok(vec![
            Geometry::tree(),
            Geometry::hypercube(),
            Geometry::xor(),
            Geometry::ring(),
            Geometry::symphony(self.symphony_near_neighbors, self.symphony_shortcuts)?,
        ])
    }
}

/// Runs Fig. 7(a): failed-path percentage vs failure probability at the
/// asymptotic size. Grid points where the system degenerates are skipped.
///
/// # Errors
///
/// Returns [`RcmError`] for invalid configuration parameters.
pub fn fig7a(config: &Fig7Config) -> Result<Vec<SimulationRecord>, RcmError> {
    let size = SystemSize::power_of_two(config.asymptotic_bits)?;
    let mut records = Vec::new();
    for geometry in config.geometries()? {
        for &q in &config.grid {
            match routability(&geometry, size, q) {
                Ok(report) => records.push(SimulationRecord::analytical(
                    "fig7a",
                    geometry.name(),
                    config.asymptotic_bits,
                    q,
                    report.failed_path_percent,
                )),
                Err(RcmError::DegenerateSystem { .. }) => continue,
                Err(other) => return Err(other),
            }
        }
    }
    Ok(records)
}

/// One point of the Fig. 7(b) routability-vs-size sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7bPoint {
    /// Geometry name.
    pub geometry: String,
    /// Identifier length (system size is `2^bits`).
    pub bits: u32,
    /// Routability (in percent, the paper's Fig. 7b y-axis).
    pub routability_percent: f64,
}

/// Runs Fig. 7(b): routability vs system size at a fixed failure
/// probability.
///
/// # Errors
///
/// Returns [`RcmError`] for invalid configuration parameters.
pub fn fig7b(config: &Fig7Config) -> Result<Vec<Fig7bPoint>, RcmError> {
    let q = config.fixed_failure_probability;
    let mut points = Vec::new();
    for geometry in config.geometries()? {
        for &bits in &config.size_bits {
            let size = SystemSize::power_of_two(bits)?;
            match routability(&geometry, size, q) {
                Ok(report) => points.push(Fig7bPoint {
                    geometry: geometry.name().to_owned(),
                    bits,
                    routability_percent: 100.0 * report.routability,
                }),
                Err(RcmError::DegenerateSystem { .. }) => continue,
                Err(other) => return Err(other),
            }
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_separates_scalable_from_unscalable_geometries() {
        let config = Fig7Config::smoke();
        let records = fig7a(&config).unwrap();
        // At q = 20% and N = 2^100, tree and Symphony have lost essentially
        // every path while the scalable three keep most of them.
        let failed = |name: &str| {
            records
                .iter()
                .find(|r| r.geometry == name && (r.failure_probability - 0.2).abs() < 1e-9)
                .and_then(|r| r.analytical_failed_percent)
                .unwrap()
        };
        assert!(failed("tree") > 99.0);
        assert!(failed("symphony") > 99.0);
        assert!(failed("hypercube") < 30.0);
        assert!(failed("xor") < 30.0);
        assert!(failed("ring") < 30.0);
    }

    #[test]
    fn fig7a_step_like_curves_for_unscalable_geometries() {
        // The paper notes the tree and Symphony curves at N = 2^100 are close
        // to a step function: essentially zero failed paths at q = 0 and
        // essentially all paths failed for any q > 0.
        let config = Fig7Config::smoke();
        let records = fig7a(&config).unwrap();
        for name in ["tree", "symphony"] {
            let at_zero = records
                .iter()
                .find(|r| r.geometry == name && r.failure_probability == 0.0)
                .and_then(|r| r.analytical_failed_percent)
                .unwrap();
            assert!(at_zero < 1e-6, "{name} at q=0: {at_zero}");
        }
    }

    #[test]
    fn fig7b_shows_decay_only_for_unscalable_geometries() {
        let config = Fig7Config::smoke();
        let points = fig7b(&config).unwrap();
        let series = |name: &str| -> Vec<f64> {
            points
                .iter()
                .filter(|p| p.geometry == name)
                .map(|p| p.routability_percent)
                .collect()
        };
        for name in ["tree", "symphony"] {
            let values = series(name);
            assert!(
                values.last().unwrap() < &(values.first().unwrap() * 0.5),
                "{name} should decay: {values:?}"
            );
        }
        for name in ["hypercube", "xor", "ring"] {
            let values = series(name);
            assert!(
                values.last().unwrap() > &90.0,
                "{name} should stay routable: {values:?}"
            );
            assert!(
                (values.first().unwrap() - values.last().unwrap()).abs() < 3.0,
                "{name} should stay flat: {values:?}"
            );
        }
    }

    #[test]
    fn fig7_record_counts_match_configuration() {
        let config = Fig7Config::smoke();
        let a = fig7a(&config).unwrap();
        assert_eq!(a.len(), 5 * config.grid.len());
        let b = fig7b(&config).unwrap();
        assert_eq!(b.len(), 5 * config.size_bits.len());
    }
}
