//! Experiment E10 — buying routability with more Symphony neighbours.
//!
//! The paper stresses (§1, §3.5) that although basic Symphony routing is
//! unscalable, a deployment can always provision enough near neighbours and
//! shortcuts to hit an acceptable routability at its expected maximum size.
//! This ablation quantifies that trade-off analytically: routability at a
//! fixed size and failure probability as a function of `(k_n, k_s)`.

use dht_rcm_core::{routability, RcmError, SymphonyGeometry, SystemSize};
use serde::{Deserialize, Serialize};

/// One cell of the ablation grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationCell {
    /// Number of near neighbours `k_n`.
    pub near_neighbors: u32,
    /// Number of shortcuts `k_s`.
    pub shortcuts: u32,
    /// Identifier length.
    pub bits: u32,
    /// Failure probability.
    pub failure_probability: f64,
    /// Analytical routability (percent).
    pub routability_percent: f64,
}

/// Sweeps `(k_n, k_s)` over `1..=max_connections` at the given sizes and
/// failure probability.
///
/// # Errors
///
/// Returns [`RcmError`] for invalid parameters; degenerate points are
/// skipped.
pub fn run(bits_list: &[u32], q: f64, max_connections: u32) -> Result<Vec<AblationCell>, RcmError> {
    let mut cells = Vec::new();
    for &bits in bits_list {
        let size = SystemSize::power_of_two(bits)?;
        for near in 1..=max_connections {
            for shortcuts in 1..=max_connections {
                let geometry = SymphonyGeometry::new(near, shortcuts)?;
                match routability(&geometry, size, q) {
                    Ok(report) => cells.push(AblationCell {
                        near_neighbors: near,
                        shortcuts,
                        bits,
                        failure_probability: q,
                        routability_percent: 100.0 * report.routability,
                    }),
                    Err(RcmError::DegenerateSystem { .. }) => continue,
                    Err(other) => return Err(other),
                }
            }
        }
    }
    Ok(cells)
}

/// The smallest `(k_n, k_s)` (by total connection count, then by `k_s`) that
/// reaches `target_routability_percent` at the given size, if any.
#[must_use]
pub fn minimum_configuration(
    cells: &[AblationCell],
    bits: u32,
    target_routability_percent: f64,
) -> Option<(u32, u32)> {
    cells
        .iter()
        .filter(|c| c.bits == bits && c.routability_percent >= target_routability_percent)
        .min_by_key(|c| (c.near_neighbors + c.shortcuts, c.shortcuts))
        .map(|c| (c.near_neighbors, c.shortcuts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routability_increases_with_either_connection_count() {
        let cells = run(&[16], 0.4, 4).unwrap();
        let value = |kn: u32, ks: u32| {
            cells
                .iter()
                .find(|c| c.near_neighbors == kn && c.shortcuts == ks)
                .unwrap()
                .routability_percent
        };
        assert!(value(1, 2) > value(1, 1));
        assert!(value(2, 1) > value(1, 1));
        assert!(value(4, 4) > value(2, 2));
    }

    #[test]
    fn bigger_systems_need_more_connections_for_the_same_routability() {
        // The unscalability in action: the configuration that suffices at
        // 2^12 no longer suffices at 2^20.
        let cells = run(&[12, 20], 0.2, 6).unwrap();
        let small = minimum_configuration(&cells, 12, 90.0).expect("reachable at 2^12");
        let large = minimum_configuration(&cells, 20, 90.0).expect("reachable at 2^20");
        assert!(
            large.0 + large.1 >= small.0 + small.1,
            "2^20 config {large:?} should need at least as many connections as 2^12 config {small:?}"
        );
    }

    #[test]
    fn grid_covers_every_combination() {
        let cells = run(&[12], 0.1, 3).unwrap();
        assert_eq!(cells.len(), 9);
    }

    #[test]
    fn minimum_configuration_returns_none_when_unreachable() {
        let cells = run(&[20], 0.5, 1).unwrap();
        assert_eq!(minimum_configuration(&cells, 20, 99.9), None);
    }
}
