//! Determinism contract of the live-churn discrete-event engine: for a
//! fixed configuration the merged [`LiveChurnTally`] — counters, hop
//! statistics, dead-time integral and the folded overlay state digests —
//! must be **bit-identical** across thread counts 1, 2 and 8 and across
//! repeated same-seed runs, in both frozen and repair mode and for every
//! geometry with a live family. Distinct seeds must diverge, otherwise the
//! digest is vacuous.

use dht_id::{KeySpace, Population};
use dht_overlay::can::CanStrategy;
use dht_overlay::chord::ChordStrategy;
use dht_overlay::kademlia::KademliaStrategy;
use dht_overlay::plaxton::PlaxtonStrategy;
use dht_overlay::symphony::SymphonyStrategy;
use dht_overlay::{ChordVariant, GeometryStrategy, LiveOverlay};
use dht_sim::{LifetimeDistribution, LiveChurnConfig, LiveChurnExperiment, LiveChurnTally};

/// A small but non-trivial run: several replicas so the thread pool has
/// real work to shard, enough traffic that any divergence has somewhere to
/// show up.
fn config(seed: u64, repair: bool) -> LiveChurnConfig {
    LiveChurnConfig::new(
        LifetimeDistribution::exponential(2.0).unwrap(),
        LifetimeDistribution::pareto(2.5, 0.3).unwrap(),
        10.0,
        60.0,
    )
    .unwrap()
    .with_warmup(3.0)
    .with_repair(repair)
    .with_replicas(6)
    .with_seed(seed)
}

fn run<S: GeometryStrategy + Clone>(
    config: LiveChurnConfig,
    threads: usize,
    strategy: S,
) -> LiveChurnTally {
    let space = KeySpace::new(6).unwrap();
    LiveChurnExperiment::new(config.with_threads(threads)).run(move |master_seed| {
        LiveOverlay::build(Population::full(space), strategy.clone(), master_seed)
            .expect("geometry supports live churn")
    })
}

fn assert_thread_invariance<S: GeometryStrategy + Clone>(strategy: S, repair: bool) {
    let reference = run(config(41, repair), 1, strategy.clone());
    assert!(reference.events > 0 && reference.attempted > 0);
    for threads in [2, 8] {
        let tally = run(config(41, repair), threads, strategy.clone());
        assert_eq!(
            reference,
            tally,
            "{} tally diverged at {} threads (repair = {})",
            strategy.geometry_name(),
            threads,
            repair
        );
    }
}

#[test]
fn ring_tallies_are_thread_count_invariant() {
    assert_thread_invariance(ChordStrategy::new(ChordVariant::Randomized), true);
    assert_thread_invariance(ChordStrategy::new(ChordVariant::Deterministic), false);
}

#[test]
fn symphony_tallies_are_thread_count_invariant() {
    assert_thread_invariance(SymphonyStrategy::new(2, 2), true);
}

#[test]
fn xor_tallies_are_thread_count_invariant() {
    assert_thread_invariance(KademliaStrategy, true);
    assert_thread_invariance(KademliaStrategy, false);
}

#[test]
fn tree_tallies_are_thread_count_invariant() {
    assert_thread_invariance(PlaxtonStrategy, true);
}

#[test]
fn hypercube_tallies_are_thread_count_invariant() {
    assert_thread_invariance(CanStrategy, true);
}

#[test]
fn same_seed_runs_are_bit_identical() {
    for repair in [false, true] {
        let first = run(config(7, repair), 3, KademliaStrategy);
        let second = run(config(7, repair), 3, KademliaStrategy);
        assert_eq!(first, second, "same-seed runs diverged (repair = {repair})");
    }
}

#[test]
fn distinct_seeds_diverge() {
    let a = run(
        config(1, true),
        2,
        ChordStrategy::new(ChordVariant::Randomized),
    );
    let b = run(
        config(2, true),
        2,
        ChordStrategy::new(ChordVariant::Randomized),
    );
    assert_ne!(
        a.state_digest, b.state_digest,
        "distinct seeds must produce distinct end states"
    );
    assert_ne!(a, b);
}
