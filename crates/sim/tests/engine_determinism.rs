//! Property tests: trial-engine results are invariant under thread count.
//!
//! The sharded [`TrialEngine`] promises that parallelism is purely a
//! wall-clock optimisation — the merged tally (including its floating-point
//! hop statistics) is a pure function of the configuration. These properties
//! drive random overlays, failure patterns, budgets and shard sizes through
//! 1, 2, 3 and 8 threads and require full structural equality, and repeat
//! the check one level up for the experiments built on the engine.

use dht_id::{KeySpace, Population};
use dht_overlay::{ChordOverlay, ChordVariant, FailureMask, KademliaOverlay, Overlay};
use dht_sim::{
    ChurnConfig, ChurnExperiment, StaticResilienceConfig, StaticResilienceExperiment, TrialEngine,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn trial_tallies_are_thread_invariant(
        bits in 5u32..9,
        seed in 0u64..1 << 20,
        q in 0.0f64..0.7,
        pairs in 1u64..6_000,
        pairs_per_shard in 1u64..2_048,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let overlay = KademliaOverlay::build(bits, &mut rng).unwrap();
        let mask = FailureMask::sample(overlay.key_space(), q, &mut rng);
        let reference = TrialEngine::new(1)
            .with_pairs_per_shard(pairs_per_shard)
            .run_trial(&overlay, &mask, pairs, seed ^ 0xC0FFEE);
        for threads in [2usize, 3, 8] {
            let tally = TrialEngine::new(threads)
                .with_pairs_per_shard(pairs_per_shard)
                .run_trial(&overlay, &mask, pairs, seed ^ 0xC0FFEE);
            prop_assert_eq!(&reference, &tally, "threads = {}", threads);
        }
        if let Some(tally) = reference {
            prop_assert_eq!(tally.attempted, pairs.max(1));
            prop_assert_eq!(
                tally.attempted,
                tally.delivered + tally.dropped + tally.hop_limited
            );
        }
    }

    #[test]
    fn static_resilience_is_thread_invariant_over_sparse_populations(
        bits in 6u32..10,
        seed in 0u64..1 << 20,
        q in 0.0f64..0.6,
    ) {
        let space = KeySpace::new(bits).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let population =
            Population::sample_uniform(space, (space.population() / 2).max(2), &mut rng).unwrap();
        let overlay =
            ChordOverlay::build_over(population, ChordVariant::Deterministic, &mut rng).unwrap();
        let config = StaticResilienceConfig::new(q)
            .unwrap()
            .with_pairs(3_000)
            .with_trials(2)
            .with_seed(seed);
        let single =
            StaticResilienceExperiment::new(config.with_threads(1)).run(&overlay);
        for threads in [3usize, 6] {
            let multi =
                StaticResilienceExperiment::new(config.with_threads(threads)).run(&overlay);
            prop_assert_eq!(&single, &multi, "threads = {}", threads);
        }
    }

    #[test]
    fn churn_timelines_are_thread_invariant(
        seed in 0u64..1 << 20,
        failure_rate in 0.0f64..0.4,
        recovery_rate in 0.0f64..0.9,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let overlay = KademliaOverlay::build(8, &mut rng).unwrap();
        let base = ChurnConfig::new(failure_rate, recovery_rate, 4)
            .unwrap()
            .with_pairs_per_round(1_500)
            .with_seed(seed);
        let single = ChurnExperiment::new(base.with_threads(1)).run(&overlay);
        let multi = ChurnExperiment::new(base.with_threads(5)).run(&overlay);
        prop_assert_eq!(single, multi);
    }
}
