//! Acceptance: the implicit backend routes full populations far beyond the
//! materialized ceiling through the unmodified [`TrialEngine`], from a
//! resident set of mask-plus-cache bytes — *not* edge bytes.
//!
//! The budget assertions are deliberately fixed numbers, not ratios: the
//! point of the implicit backend is that routing state stops scaling with
//! `N`, so the same few hundred kilobytes must cover `2^26` and `2^30`
//! alike while the materialized equivalent would need tens of gigabytes.

use dht_overlay::{ChordVariant, FailureMask, ImplicitOverlay, Overlay};
use dht_sim::TrialEngine;

/// Mask-plus-cache resident budget for overlay routing state, independent
/// of `N`: the generator structs are a few hundred bytes and a full row
/// cache stays under half a mebibyte for every geometry at every size.
const OVERLAY_STATE_BUDGET: usize = 512 * 1024;

#[test]
fn implicit_backend_at_2e26_stays_inside_the_resident_budget() {
    let overlay = ImplicitOverlay::ring(26, ChordVariant::Deterministic, 7).unwrap();
    let kernel = overlay.routing_kernel();
    let cache = kernel.row_cache();

    // Everything the routing path keeps resident besides the mask bitset:
    // the generator state and one worker's row cache.
    let resident = overlay.resident_bytes() + cache.resident_bytes();
    assert!(
        resident < OVERLAY_STATE_BUDGET,
        "resident {resident} bytes exceeds the {OVERLAY_STATE_BUDGET}-byte budget"
    );

    // The mask dominates (one bit per identifier): 8 MiB at 2^26.
    let mask = FailureMask::none(overlay.key_space());
    let mask_bytes = std::mem::size_of_val(mask.words());
    assert_eq!(mask_bytes, 8 << 20);
    assert!(resident < mask_bytes, "overlay state must trail the mask");

    // What the materialized backend would have to hold instead: one
    // identifier per directed edge — hundreds of times the whole budget.
    let edge_bytes = overlay.edge_count() * std::mem::size_of::<u64>() as u64;
    assert!(edge_bytes > 1 << 33, "2^26 x 25 fingers x 8 B > 8 GiB");
}

#[test]
fn trial_engine_routes_2e28_end_to_end_through_the_implicit_kernel() {
    let overlay = ImplicitOverlay::ring(28, ChordVariant::Deterministic, 7).unwrap();
    assert!(overlay.kernel().is_none(), "no materialized plan exists");
    assert!(overlay.implicit_kernel().is_some());

    let mask = FailureMask::none(overlay.key_space());
    let engine = TrialEngine::new(4);
    let tally = engine
        .run_trial(&overlay, &mask, 64, 11)
        .expect("a full population has survivors");
    assert_eq!(tally.attempted, 64);
    assert_eq!(tally.delivered, 64, "an intact ring always delivers");
    assert!(
        tally.max_hops <= 28,
        "greedy fingers cross 2^28 in at most `bits` hops, got {}",
        tally.max_hops
    );

    // Thread count still never changes the numbers, even off-ceiling.
    assert_eq!(
        Some(tally),
        TrialEngine::new(1).run_trial(&overlay, &mask, 64, 11)
    );

    // The routing state that backed all of this stays inside the budget.
    let resident = overlay.resident_bytes() + overlay.routing_kernel().row_cache().resident_bytes();
    assert!(resident < OVERLAY_STATE_BUDGET);
}

#[test]
#[ignore = "2^30 allocates a 128 MiB mask plus a 128 MiB sampler index; run with --ignored"]
fn trial_engine_routes_2e30_from_a_128_mib_mask() {
    let overlay = ImplicitOverlay::ring(30, ChordVariant::Deterministic, 7).unwrap();
    let mask = FailureMask::none(overlay.key_space());
    assert_eq!(std::mem::size_of_val(mask.words()), 128 << 20);
    let tally = TrialEngine::new(8)
        .run_trial(&overlay, &mask, 64, 11)
        .expect("a full population has survivors");
    assert_eq!(tally.delivered, 64);
    assert!(tally.max_hops <= 30);
    let resident = overlay.resident_bytes() + overlay.routing_kernel().row_cache().resident_bytes();
    assert!(resident < OVERLAY_STATE_BUDGET);
}
