//! Targeted (non-uniform) failure patterns.
//!
//! The paper's model fails nodes independently and uniformly; real outages are
//! often correlated — a rack, an AS, or a contiguous region of the identifier
//! space disappearing at once. These generators produce such patterns so the
//! static-resilience harness can quantify how much worse correlated failures
//! are than the iid model for each geometry. They extend the paper (no figure
//! depends on them) and are exercised by tests and the bench suite only.

use dht_id::{KeySpace, Population};
use dht_overlay::FailureMask;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A non-uniform failure pattern generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TargetedFailure {
    /// Fail every node in a contiguous clockwise arc of the identifier ring.
    ///
    /// Ring-structured geometries (Chord, Symphony) lose an entire
    /// neighbourhood, while prefix geometries lose a subtree.
    ContiguousArc {
        /// Fraction of the identifier space to fail, in `[0, 1]`.
        fraction: f64,
    },
    /// Fail every node sharing a given most-significant-bit prefix.
    ///
    /// Models the loss of one branch of the Plaxton tree (e.g. one data
    /// centre owning a prefix).
    Prefix {
        /// Number of prefix bits that define the failed region.
        bits: u32,
        /// The failed prefix value (only the lowest `bits` bits are used).
        value: u64,
    },
    /// Fail each node with a probability proportional to how many low-order
    /// zero bits its identifier has — a stand-in for "infrastructure" nodes
    /// (round identifiers are disproportionately targeted).
    WeightedByTrailingZeros {
        /// Baseline failure probability for nodes with no trailing zeros.
        base_probability: f64,
        /// Additional probability per trailing zero bit (capped at one).
        per_zero_increment: f64,
    },
}

impl TargetedFailure {
    /// Generates the failure mask for this pattern over a fully populated
    /// `space`.
    ///
    /// # Panics
    ///
    /// Panics if a fraction or probability parameter lies outside `[0, 1]`,
    /// or if a prefix length exceeds the identifier length.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, space: KeySpace, rng: &mut R) -> FailureMask {
        self.sample_over(&Population::full(space), rng)
    }

    /// Generates the failure mask for this pattern over the occupied
    /// identifiers of `population`.
    ///
    /// Only occupied identifiers hit by the pattern count as failures;
    /// unoccupied identifiers read as failed in the mask regardless (there is
    /// no node there), matching [`FailureMask::sample_over`]. Over a full
    /// population this is identical to [`TargetedFailure::sample`].
    ///
    /// # Panics
    ///
    /// Panics if a fraction or probability parameter lies outside `[0, 1]`,
    /// or if a prefix length exceeds the identifier length.
    #[must_use]
    pub fn sample_over<R: Rng + ?Sized>(
        &self,
        population: &Population,
        rng: &mut R,
    ) -> FailureMask {
        let space = population.space();
        let mut mask = FailureMask::none_over(population);
        match *self {
            TargetedFailure::ContiguousArc { fraction } => {
                assert!(
                    (0.0..=1.0).contains(&fraction),
                    "arc fraction must lie in [0, 1]"
                );
                // The arc is a fraction of the identifier space (not of the
                // occupied count), so correlated outages keep their
                // geometric meaning at any occupancy.
                let id_population = space.population();
                let length = (fraction * id_population as f64).round() as u64;
                let start = rng.gen_range(0..id_population);
                for offset in 0..length {
                    // Failing an unoccupied identifier is a counted no-op.
                    mask.fail_node(space.wrap(start.wrapping_add(offset)));
                }
            }
            TargetedFailure::Prefix { bits, value } => {
                assert!(
                    bits <= space.bits(),
                    "prefix length {bits} exceeds identifier length {}",
                    space.bits()
                );
                let shift = space.bits() - bits;
                let prefix = if bits == 0 {
                    0
                } else {
                    value & ((1u64 << bits) - 1)
                };
                for node in population.iter_nodes() {
                    // A zero-bit prefix matches everyone.
                    if bits == 0 || (node.value() >> shift) == prefix {
                        mask.fail_node(node);
                    }
                }
            }
            TargetedFailure::WeightedByTrailingZeros {
                base_probability,
                per_zero_increment,
            } => {
                assert!(
                    (0.0..=1.0).contains(&base_probability),
                    "base probability must lie in [0, 1]"
                );
                assert!(
                    (0.0..=1.0).contains(&per_zero_increment),
                    "per-zero increment must lie in [0, 1]"
                );
                for node in population.iter_nodes() {
                    let zeros = if node.value() == 0 {
                        space.bits()
                    } else {
                        node.value().trailing_zeros().min(space.bits())
                    };
                    let probability =
                        (base_probability + per_zero_increment * f64::from(zeros)).min(1.0);
                    if rng.gen_bool(probability) {
                        mask.fail_node(node);
                    }
                }
            }
        }
        mask
    }

    /// The expected failed fraction of the pattern (exact for the arc and
    /// prefix patterns, an upper-bounded estimate for the weighted one).
    #[must_use]
    pub fn expected_failed_fraction(&self, space: KeySpace) -> f64 {
        match *self {
            TargetedFailure::ContiguousArc { fraction } => fraction,
            TargetedFailure::Prefix { bits, .. } => 0.5f64.powi(bits.min(space.bits()) as i32),
            TargetedFailure::WeightedByTrailingZeros {
                base_probability,
                per_zero_increment,
            } => {
                // A random identifier has on average one trailing zero
                // (Σ k 2^{-k-1} = 1), so the mean failure probability is close
                // to base + increment.
                (base_probability + per_zero_increment).min(1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_resilience::StaticResilienceExperiment;
    use crate::StaticResilienceConfig;
    use dht_overlay::{route, ChordOverlay, ChordVariant, Overlay};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space(bits: u32) -> KeySpace {
        KeySpace::new(bits).unwrap()
    }

    #[test]
    fn arc_failure_covers_the_requested_fraction() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mask = TargetedFailure::ContiguousArc { fraction: 0.25 }.sample(space(10), &mut rng);
        assert_eq!(mask.failed_count(), 256);
        // The failed nodes form one contiguous clockwise run.
        let failed: Vec<u64> = space(10)
            .iter_ids()
            .filter(|n| mask.is_failed(*n))
            .map(|n| n.value())
            .collect();
        let breaks = failed.windows(2).filter(|w| w[1] != w[0] + 1).count();
        assert!(
            breaks <= 1,
            "an arc wraps at most once, found {breaks} breaks"
        );
    }

    #[test]
    fn prefix_failure_kills_exactly_one_subtree() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let pattern = TargetedFailure::Prefix {
            bits: 3,
            value: 0b101,
        };
        let mask = pattern.sample(space(10), &mut rng);
        assert_eq!(mask.failed_count(), 128);
        assert!((pattern.expected_failed_fraction(space(10)) - 0.125).abs() < 1e-12);
        for node in space(10).iter_ids() {
            let in_subtree = node.value() >> 7 == 0b101;
            assert_eq!(mask.is_failed(node), in_subtree);
        }
    }

    #[test]
    fn weighted_failure_prefers_round_identifiers() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let pattern = TargetedFailure::WeightedByTrailingZeros {
            base_probability: 0.05,
            per_zero_increment: 0.2,
        };
        let mask = pattern.sample(space(12), &mut rng);
        let failed_even = space(12)
            .iter_ids()
            .filter(|n| n.value() % 2 == 0 && mask.is_failed(*n))
            .count() as f64;
        let failed_odd = space(12)
            .iter_ids()
            .filter(|n| n.value() % 2 == 1 && mask.is_failed(*n))
            .count() as f64;
        assert!(
            failed_even > failed_odd * 1.5,
            "even identifiers should fail more often: {failed_even} vs {failed_odd}"
        );
    }

    #[test]
    fn contiguous_arc_pattern_supports_end_to_end_measurement() {
        // A Chord route to a destination inside the failed arc is hopeless,
        // and routes ending just after the arc lose their predecessors; the
        // same failed mass spread iid is much less damaging.
        let overlay = ChordOverlay::build(10, ChordVariant::Deterministic).unwrap();
        let sp = overlay.key_space();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let arc_mask = TargetedFailure::ContiguousArc { fraction: 0.3 }.sample(sp, &mut rng);
        let iid = StaticResilienceExperiment::new(
            StaticResilienceConfig::new(0.3)
                .unwrap()
                .with_pairs(4_000)
                .with_seed(9),
        )
        .run(&overlay);

        let mut delivered = 0u64;
        let mut attempted = 0u64;
        let mut pair_rng = ChaCha8Rng::seed_from_u64(11);
        while attempted < 4_000 {
            let source = sp.random_id(&mut pair_rng);
            let target = sp.random_id(&mut pair_rng);
            if source == target || arc_mask.is_failed(source) || arc_mask.is_failed(target) {
                continue;
            }
            attempted += 1;
            if route(&overlay, source, target, &arc_mask).is_delivered() {
                delivered += 1;
            }
        }
        let arc_routability = delivered as f64 / attempted as f64;
        // Both patterns remove ~30% of nodes; among the surviving pairs the
        // arc pattern must not be dramatically *better* than iid, and in
        // practice both stay highly routable because survivors' fingers only
        // rarely land inside the arc end-to-end.
        assert!(arc_routability <= 1.0);
        assert!(
            arc_routability >= iid.routability - 0.3,
            "arc {arc_routability} vs iid {}",
            iid.routability
        );
    }

    #[test]
    fn sample_over_sparse_population_only_counts_occupied_failures() {
        let s = space(10);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let population = Population::sample_uniform(s, 256, &mut rng).unwrap();
        let mask =
            TargetedFailure::ContiguousArc { fraction: 0.5 }.sample_over(&population, &mut rng);
        assert_eq!(mask.population_size(), 256);
        // Roughly half the occupied nodes sit inside the arc.
        assert!((64..=192).contains(&mask.failed_count()));
        // Unoccupied identifiers read as failed and never appear alive.
        for node in mask.alive_nodes() {
            assert!(population.contains(node));
        }
        // The prefix pattern kills exactly the occupied members of the
        // subtree.
        let mask = TargetedFailure::Prefix { bits: 1, value: 1 }.sample_over(&population, &mut rng);
        let expected = population.iter_nodes().filter(|n| n.value() >= 512).count() as u64;
        assert_eq!(mask.failed_count(), expected);
    }

    #[test]
    fn sample_over_full_population_matches_sample() {
        let s = space(8);
        let pattern = TargetedFailure::WeightedByTrailingZeros {
            base_probability: 0.1,
            per_zero_increment: 0.15,
        };
        let direct = pattern.sample(s, &mut ChaCha8Rng::seed_from_u64(3));
        let via_population =
            pattern.sample_over(&Population::full(s), &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(direct, via_population);
    }

    #[test]
    #[should_panic(expected = "arc fraction")]
    fn rejects_invalid_fraction() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = TargetedFailure::ContiguousArc { fraction: 1.5 }.sample(space(4), &mut rng);
    }
}
