//! Campaign tallies: the trial engine's graceful-degradation view.
//!
//! Fault-injection campaigns (`dht_overlay::faults`) ask more of a trial
//! than the delivered fraction: *where* do messages die when they die? A
//! [`CampaignTally`] extends the ordinary [`TrialTally`] with a
//! [`StuckDepthHistogram`] — how many hops each dropped message had already
//! made when no alive neighbour offered progress. Shallow stuck depths mean
//! sources are isolated outright; deep ones mean messages burrow most of the
//! way in before hitting the failure structure, wasting work — the
//! difference between a clean outage and expensive brown-out behaviour.
//!
//! [`TrialEngine::run_campaign_trial`] drives the identical sharded loop as
//! [`TrialEngine::run_trial`] — same shard grid, same per-shard RNG streams,
//! same shard-order fold — so campaign tallies inherit the engine's
//! thread-count-invariance contract, and the embedded [`TrialTally`] is
//! bit-identical to what `run_trial` reports for the same inputs.

use crate::engine::{BatchScratch, ShardTally, TrialEngine, TrialTally};
use crate::pair_sampler::PairSampler;
use dht_overlay::{
    default_route_hop_limit, route_prevalidated, FailureMask, Overlay, RouteOutcome,
};
use serde::{Deserialize, Serialize};

/// Distribution of hop depths at which dropped messages got stuck.
///
/// `counts[d]` is the number of dropped messages whose route made exactly
/// `d` hops before greedy forwarding found no alive progressing neighbour
/// (`d = 0`: the source itself was already stuck). Histograms merge by
/// element-wise addition, so per-shard instances fold associatively.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckDepthHistogram {
    counts: Vec<u64>,
}

impl StuckDepthHistogram {
    /// Records one dropped message stuck after `depth` hops.
    pub fn record(&mut self, depth: u32) {
        let slot = depth as usize;
        if self.counts.len() <= slot {
            self.counts.resize(slot + 1, 0);
        }
        self.counts[slot] += 1;
    }

    /// Folds `other` into this histogram (element-wise addition).
    pub fn merge(&mut self, other: &StuckDepthHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, count) in self.counts.iter_mut().zip(&other.counts) {
            *slot += count;
        }
    }

    /// Dropped messages recorded in total.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of drops stuck at exactly `depth` hops.
    #[must_use]
    pub fn count_at(&self, depth: u32) -> u64 {
        self.counts.get(depth as usize).copied().unwrap_or(0)
    }

    /// The per-depth counts, index = stuck depth (empty when nothing
    /// dropped; trailing entries are always non-zero).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Deepest recorded stuck depth, `None` when nothing dropped.
    #[must_use]
    pub fn max_depth(&self) -> Option<u32> {
        if self.counts.is_empty() {
            None
        } else {
            #[allow(clippy::cast_possible_truncation)]
            Some(self.counts.len() as u32 - 1)
        }
    }

    /// Mean stuck depth over all recorded drops, 0 when nothing dropped.
    #[must_use]
    pub fn mean_depth(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(depth, &count)| depth as f64 * count as f64)
            .sum();
        weighted / total as f64
    }
}

/// A [`TrialTally`] plus graceful-degradation metrics, produced by
/// [`TrialEngine::run_campaign_trial`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignTally {
    /// The ordinary outcome tally — bit-identical to what
    /// [`TrialEngine::run_trial`] reports for the same inputs.
    pub trial: TrialTally,
    /// Hop depths at which dropped messages got stuck.
    pub stuck_depth: StuckDepthHistogram,
}

impl CampaignTally {
    /// Records one route outcome, tracking stuck depth for drops.
    pub fn record(&mut self, outcome: RouteOutcome) {
        self.trial.record(outcome);
        if let RouteOutcome::Dropped { hops, .. } = outcome {
            self.stuck_depth.record(hops);
        }
    }

    /// Folds `other` into this tally (shard order, like the engine).
    pub fn merge(&mut self, other: &CampaignTally) {
        self.trial.merge(&other.trial);
        self.stuck_depth.merge(&other.stuck_depth);
    }
}

impl ShardTally for CampaignTally {
    fn fold(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl TrialEngine {
    /// [`TrialEngine::run_trial`] with campaign metrics: routes the same
    /// pairs through the same shard grid and RNG streams, but folds each
    /// outcome into a [`CampaignTally`] so drops also record their stuck
    /// depth. `None` when fewer than two nodes survive.
    ///
    /// The embedded [`CampaignTally::trial`] is bit-identical to the tally
    /// `run_trial` returns for the same `(overlay, mask, pairs, pair_seed,
    /// pairs_per_shard)`, for any thread count — the campaign view is pure
    /// observation, never perturbation.
    pub fn run_campaign_trial<O>(
        &self,
        overlay: &O,
        mask: &FailureMask,
        pairs: u64,
        pair_seed: u64,
    ) -> Option<CampaignTally>
    where
        O: Overlay + ?Sized,
    {
        let sampler = PairSampler::new(mask)?;
        let space = mask.key_space();
        assert_eq!(
            space.bits(),
            overlay.key_space().bits(),
            "mask is from a different key space than the overlay"
        );
        let hop_limit = default_route_hop_limit(overlay);
        let tally = match overlay.kernel() {
            Some(kernel) => {
                let lowered = kernel.compile_mask(mask);
                let words = lowered.words();
                self.run_shards(
                    pairs,
                    pair_seed,
                    BatchScratch::new,
                    |budget, rng, tally: &mut CampaignTally, scratch: &mut BatchScratch| {
                        scratch.route_shard(kernel, words, &sampler, budget, hop_limit, rng);
                        // Draw order, exactly like the plain trial path.
                        for &outcome in &scratch.outcomes {
                            tally.record(outcome);
                        }
                    },
                )
            }
            None => self.run_shards(
                pairs,
                pair_seed,
                || (),
                |budget, rng, tally: &mut CampaignTally, ()| {
                    for _ in 0..budget {
                        let (source, target) = sampler.sample_values(rng);
                        tally.record(route_prevalidated(
                            overlay,
                            space.wrap(source),
                            space.wrap(target),
                            mask,
                            hop_limit,
                        ));
                    }
                },
            ),
        };
        Some(tally)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_id::KeySpace;
    use dht_overlay::{ChordOverlay, ChordVariant, FailurePlan, KademliaOverlay};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn histogram_records_and_merges_elementwise() {
        let mut a = StuckDepthHistogram::default();
        a.record(0);
        a.record(2);
        a.record(2);
        let mut b = StuckDepthHistogram::default();
        b.record(2);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.count_at(0), 1);
        assert_eq!(a.count_at(2), 3);
        assert_eq!(a.count_at(5), 1);
        assert_eq!(a.max_depth(), Some(5));
        assert!((a.mean_depth() - 11.0 / 5.0).abs() < 1e-12);
        assert_eq!(StuckDepthHistogram::default().max_depth(), None);
        assert_eq!(StuckDepthHistogram::default().mean_depth(), 0.0);
    }

    #[test]
    fn campaign_trial_embeds_the_exact_plain_tally() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let overlay = KademliaOverlay::build(9, &mut rng).unwrap();
        let plan = FailurePlan::SegmentCorrelated {
            fraction: 0.35,
            segments: 6,
        };
        let mask = plan.lower(&overlay, 77);
        let engine = TrialEngine::new(3);
        let campaign = engine
            .run_campaign_trial(&overlay, &mask, 6_000, 13)
            .unwrap();
        let plain = engine.run_trial(&overlay, &mask, 6_000, 13).unwrap();
        assert_eq!(campaign.trial, plain);
        assert_eq!(campaign.stuck_depth.total(), plain.dropped);
    }

    #[test]
    fn campaign_tallies_are_invariant_under_thread_count() {
        let overlay = ChordOverlay::build(9, ChordVariant::Deterministic).unwrap();
        let plan = FailurePlan::AdaptiveAdversary {
            fraction: 0.3,
            rounds: 4,
        };
        let mask = plan.lower(&overlay, 3);
        let reference = TrialEngine::new(1).run_campaign_trial(&overlay, &mask, 8_000, 21);
        for threads in [2, 8] {
            let tally = TrialEngine::new(threads).run_campaign_trial(&overlay, &mask, 8_000, 21);
            assert_eq!(reference, tally, "threads = {threads}");
        }
    }

    #[test]
    fn stuck_depths_stay_below_the_hop_limit() {
        let overlay = ChordOverlay::build(8, ChordVariant::Deterministic).unwrap();
        let mask = FailurePlan::Cascade {
            seed_fraction: 0.2,
            propagation: 0.4,
        }
        .lower(&overlay, 9);
        let tally = TrialEngine::new(2)
            .run_campaign_trial(&overlay, &mask, 4_000, 1)
            .unwrap();
        assert!(tally.trial.dropped > 0, "cascade at 20% seeds drops");
        let limit = dht_overlay::default_route_hop_limit(&overlay);
        assert!(tally.stuck_depth.max_depth().unwrap() < limit);
    }

    #[test]
    fn campaign_tallies_round_trip_through_json() {
        let space = KeySpace::new(4).unwrap();
        let mut tally = CampaignTally::default();
        tally.record(RouteOutcome::Delivered { hops: 3 });
        tally.record(RouteOutcome::Dropped {
            hops: 2,
            stuck_at: space.wrap(7),
        });
        let json = serde_json::to_string(&tally).unwrap();
        let back: CampaignTally = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tally);
    }
}
