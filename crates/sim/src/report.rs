//! Machine-readable experiment records and CSV output.

use crate::config::SimError;
use crate::static_resilience::StaticResilienceResult;
use serde::{Deserialize, Serialize};
use std::io::Write;

/// One row of an experiment report: an analytical prediction, a simulated
/// measurement, or both, at one `(geometry, N, q)` point.
///
/// The experiment binaries in `dht-experiments` emit these records as JSON
/// and CSV so EXPERIMENTS.md and downstream plots can be regenerated without
/// re-running anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationRecord {
    /// Experiment identifier (e.g. `"fig6a"`).
    pub experiment: String,
    /// Geometry name (e.g. `"xor"`).
    pub geometry: String,
    /// Identifier length `d` (system size is `2^d`).
    pub bits: u32,
    /// Node failure probability.
    pub failure_probability: f64,
    /// Analytical failed-path percentage, when available.
    pub analytical_failed_percent: Option<f64>,
    /// Simulated failed-path percentage, when available.
    pub simulated_failed_percent: Option<f64>,
    /// Half-width of the 95% confidence interval on the simulated value (in
    /// percentage points), when available.
    pub simulated_confidence_half_width: Option<f64>,
}

impl SimulationRecord {
    /// Creates a record holding only an analytical prediction.
    #[must_use]
    pub fn analytical(
        experiment: impl Into<String>,
        geometry: impl Into<String>,
        bits: u32,
        q: f64,
        failed_percent: f64,
    ) -> Self {
        SimulationRecord {
            experiment: experiment.into(),
            geometry: geometry.into(),
            bits,
            failure_probability: q,
            analytical_failed_percent: Some(failed_percent),
            simulated_failed_percent: None,
            simulated_confidence_half_width: None,
        }
    }

    /// Attaches a simulated measurement to the record.
    #[must_use]
    pub fn with_simulation(mut self, result: &StaticResilienceResult) -> Self {
        self.simulated_failed_percent = Some(result.failed_path_percent);
        self.simulated_confidence_half_width = Some(result.confidence.half_width() * 100.0);
        self
    }

    /// Absolute difference between the analytical and simulated failed-path
    /// percentages, when both are present.
    #[must_use]
    pub fn absolute_gap(&self) -> Option<f64> {
        match (
            self.analytical_failed_percent,
            self.simulated_failed_percent,
        ) {
            (Some(a), Some(s)) => Some((a - s).abs()),
            _ => None,
        }
    }
}

/// Writes records as CSV with a header row.
///
/// # Errors
///
/// Returns [`SimError::Io`] if writing fails.
///
/// # Example
///
/// ```rust
/// use dht_sim::{write_csv, SimulationRecord};
///
/// let records = vec![SimulationRecord::analytical("fig6a", "xor", 16, 0.3, 24.7)];
/// let mut out = Vec::new();
/// write_csv(&records, &mut out)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.starts_with("experiment,geometry,bits,"));
/// assert!(text.contains("fig6a,xor,16,"));
/// # Ok::<(), dht_sim::SimError>(())
/// ```
pub fn write_csv<W: Write>(records: &[SimulationRecord], writer: &mut W) -> Result<(), SimError> {
    writeln!(
        writer,
        "experiment,geometry,bits,failure_probability,analytical_failed_percent,simulated_failed_percent,simulated_confidence_half_width"
    )?;
    for record in records {
        writeln!(
            writer,
            "{},{},{},{},{},{},{}",
            record.experiment,
            record.geometry,
            record.bits,
            record.failure_probability,
            format_optional(record.analytical_failed_percent),
            format_optional(record.simulated_failed_percent),
            format_optional(record.simulated_confidence_half_width),
        )?;
    }
    Ok(())
}

fn format_optional(value: Option<f64>) -> String {
    value.map_or_else(String::new, |v| format!("{v:.6}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_mathkit::stats::ConfidenceInterval;

    fn fake_result(failed_percent: f64) -> StaticResilienceResult {
        StaticResilienceResult {
            geometry: "xor".into(),
            bits: 16,
            failure_probability: 0.3,
            occupied_nodes: 1 << 16,
            trials: 1,
            pairs_attempted: 1000,
            pairs_delivered: 753,
            routability: 1.0 - failed_percent / 100.0,
            failed_path_percent: failed_percent,
            confidence: ConfidenceInterval {
                mean: 0.753,
                lower: 0.726,
                upper: 0.779,
                level: 0.95,
            },
            mean_hops: 8.1,
            max_hops: 14,
            surviving_fraction: 0.7,
        }
    }

    #[test]
    fn analytical_record_has_no_simulation_fields() {
        let record = SimulationRecord::analytical("fig7a", "tree", 100, 0.1, 99.9);
        assert_eq!(record.analytical_failed_percent, Some(99.9));
        assert_eq!(record.simulated_failed_percent, None);
        assert_eq!(record.absolute_gap(), None);
    }

    #[test]
    fn attaching_a_simulation_fills_the_gap() {
        let record = SimulationRecord::analytical("fig6a", "xor", 16, 0.3, 24.7)
            .with_simulation(&fake_result(24.0));
        assert_eq!(record.simulated_failed_percent, Some(24.0));
        assert!((record.absolute_gap().unwrap() - 0.7).abs() < 1e-9);
        assert!(record.simulated_confidence_half_width.unwrap() > 0.0);
    }

    #[test]
    fn csv_has_one_line_per_record_plus_header() {
        let records = vec![
            SimulationRecord::analytical("fig6a", "tree", 16, 0.1, 65.0),
            SimulationRecord::analytical("fig6a", "xor", 16, 0.1, 3.2)
                .with_simulation(&fake_result(3.4)),
        ];
        let mut out = Vec::new();
        write_csv(&records, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("fig6a,tree,16,0.1,65"));
        assert!(lines[2].contains(",3.4"));
    }

    #[test]
    fn records_round_trip_through_json() {
        let record = SimulationRecord::analytical("fig6b", "ring", 16, 0.2, 10.0)
            .with_simulation(&fake_result(8.0));
        let json = serde_json::to_string(&record).unwrap();
        let back: SimulationRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(record, back);
    }
}
