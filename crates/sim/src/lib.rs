//! Static-resilience and churn simulation harness for DHT overlays.
//!
//! The analytical crate (`dht-rcm-core`) predicts routability from closed
//! forms; this crate *measures* it on the executable overlays of
//! `dht-overlay`, reproducing the simulation methodology behind the data
//! points of Fig. 6 of the paper (originally due to Gummadi et al.):
//!
//! 1. build the overlay over a fully populated identifier space;
//! 2. fail every node independently with probability `q` and freeze the
//!    routing tables;
//! 3. sample source/destination pairs among the survivors and route greedily
//!    with no backtracking;
//! 4. report the delivered fraction with a confidence interval.
//!
//! The harness is deterministic: every experiment derives its randomness from
//! an explicit seed, so any reported number can be regenerated bit-for-bit.
//! Parallelism never weakens that guarantee — the sharded [`TrialEngine`]
//! partitions every pair budget into fixed logical shards with their own RNG
//! streams and merges tallies in shard order, so measurements are identical
//! for any worker-thread count.
//!
//! # Example
//!
//! ```rust
//! use dht_overlay::KademliaOverlay;
//! use dht_sim::{StaticResilienceConfig, StaticResilienceExperiment};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let overlay = KademliaOverlay::build(10, &mut rng)?;
//! let config = StaticResilienceConfig::new(0.2)?.with_pairs(2_000).with_seed(11);
//! let result = StaticResilienceExperiment::new(config).run(&overlay);
//! assert!(result.routability > 0.7 && result.routability <= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod churn;
pub mod config;
pub mod engine;
pub mod events;
pub mod pair_sampler;
pub mod report;
pub mod rng;
pub mod static_resilience;
pub mod sweep;
pub mod targeted;

pub use campaign::{CampaignTally, StuckDepthHistogram};
pub use churn::{ChurnConfig, ChurnExperiment, ChurnRound};
pub use config::{SimError, StaticResilienceConfig};
pub use engine::{TrialEngine, TrialTally, DEFAULT_PAIRS_PER_SHARD};
pub use events::{
    CalendarQueue, LifetimeDistribution, LiveChurnConfig, LiveChurnExperiment, LiveChurnTally,
};
pub use pair_sampler::PairSampler;
pub use report::{write_csv, SimulationRecord};
pub use rng::SeedSequence;
pub use static_resilience::{StaticResilienceExperiment, StaticResilienceResult};
pub use sweep::{sweep_failure_grid, FailureSweepPoint};
pub use targeted::TargetedFailure;
